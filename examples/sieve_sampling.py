#!/usr/bin/env python3
"""Sieve-style kernel sampling: simulate a fraction of a multi-kernel
workload and estimate the full runtime (Naderan-Tahan et al., cited by
the paper for its MLPerf traces).

Run:  python examples/sieve_sampling.py [benchmark]   (default: unet)

The plan stratifies kernels by execution signature, simulates one
representative per stratum, and weights the results back up.  The
estimate is compared against simulating the whole workload.
"""

import sys
import time

from repro import GPUConfig, build_trace, get_benchmark, simulate
from repro.trace import sieve_sample
from repro.trace.kernel import WorkloadTrace


def simulate_kernels_individually(config, workload, indices):
    """Simulate selected kernels as standalone launches, returning cycles."""
    cycles = {}
    for index in indices:
        solo = WorkloadTrace(
            name=f"{workload.name}-k{index}",
            kernels=[workload.kernels[index]],
            metadata=workload.metadata,
        )
        cycles[index] = simulate(config, solo).cycles
    return cycles


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "unet"
    spec = get_benchmark(abbr)
    config = GPUConfig.paper_system(16)
    trace = build_trace(spec, capacity_scale=config.capacity_scale)
    print(f"{abbr}: {len(trace.kernels)} kernels, "
          f"{trace.count_accesses()} accesses total")

    plan = sieve_sample(trace, max_strata=2)
    print(f"sieve plan: {len(plan.representatives)} representatives, "
          f"work reduction {plan.reduction_factor:.1f}x, "
          f"stratum weights {[f'{w:.2f}' for w in plan.weights]}")

    start = time.perf_counter()
    rep_cycles = simulate_kernels_individually(
        config, trace, plan.representatives
    )
    sampled_time = time.perf_counter() - start
    estimate = plan.estimate_cycles(rep_cycles)

    start = time.perf_counter()
    trace_full = build_trace(spec, capacity_scale=config.capacity_scale)
    full = simulate(config, trace_full)
    full_time = time.perf_counter() - start

    error = abs(estimate - full.cycles) / full.cycles
    print(f"estimated cycles: {estimate:,.0f}  (simulated {sampled_time:.1f}s)")
    print(f"actual cycles:    {full.cycles:,.0f}  (simulated {full_time:.1f}s)")
    print(f"estimation error: {100 * error:.1f}%   "
          f"simulation speedup: {full_time / max(sampled_time, 1e-9):.1f}x")


if __name__ == "__main__":
    main()

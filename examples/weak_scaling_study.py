#!/usr/bin/env python3
"""Weak-scaling study (Figures 6 and 7): inputs grow with system size.

Run:  python examples/weak_scaling_study.py [benchmark ...]
      (defaults to va and bfs — one linear, one sub-linear)

Under weak scaling the workload's working set scales with the machine, so
no miss-rate cliff can occur and the predictor needs no miss-rate curve —
only the two scale-model IPCs.  Because the scale models also run *small
inputs*, prediction is much cheaper than simulating the target: the
simulation-time speedup is reported at the end (the paper's Figure 7).
"""

import sys

from repro.core import ScaleModelPredictor, ScaleModelProfile
from repro.core.baselines import make_predictor
from repro.gpu import GPUConfig, simulate
from repro.workloads import WEAK_SCALING, build_trace

SIZES = (8, 16, 32, 64, 128)
BASE = 8


def study(abbr: str) -> None:
    spec = WEAK_SCALING[abbr]
    print(f"\n=== {spec.name} ({abbr}) — weak scaling, expected "
          f"{spec.weak_scaling.value}")

    results = {}
    for sms in SIZES:
        config = GPUConfig.paper_system(sms)
        trace = build_trace(
            spec, work_scale=sms / BASE, capacity_scale=config.capacity_scale
        )
        results[sms] = simulate(config, trace)
        r = results[sms]
        print(f"  {sms:3d} SMs (input x{sms // BASE:2d}): IPC {r.ipc:8.1f}  "
              f"sim time {r.wall_time_s:5.2f}s")

    profile = ScaleModelProfile(
        workload=abbr, sizes=(8, 16),
        ipcs=(results[8].ipc, results[16].ipc),
        f_mem=results[16].memory_stall_fraction,
        curve=None,  # not needed under weak scaling
    )
    predictor = ScaleModelPredictor(profile)
    print(f"  correction factor C = {profile.correction_factor():.3f}")
    print(f"  {'target':>8s} {'scale-model':>12s} {'proportional':>13s} "
          f"{'actual':>9s} {'sm error':>9s}")
    for target in (32, 64, 128):
        sm = predictor.predict(target).ipc
        prop = make_predictor("proportional").fit(
            profile.sizes, profile.ipcs
        ).predict(target)
        actual = results[target].ipc
        err = abs(sm - actual) / actual
        print(f"  {target:6d}SM {sm:12.1f} {prop:13.1f} {actual:9.1f} "
              f"{100 * err:8.1f}%")

    # Figure 7: simulation-time speedup of predicting instead of simulating.
    scale_cost = results[8].wall_time_s + results[16].wall_time_s
    print("  simulation speedup vs simulating the target directly:")
    for target in (32, 64, 128):
        speedup = results[target].wall_time_s / scale_cost
        print(f"    {target:3d} SMs: {speedup:4.1f}x")


def main() -> None:
    for abbr in (sys.argv[1:] or ["va", "bfs"]):
        study(abbr)


if __name__ == "__main__":
    main()

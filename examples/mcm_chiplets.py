#!/usr/bin/env python3
"""Multi-chiplet GPU case study (Section VII-D, Figure 8).

Run:  python examples/mcm_chiplets.py [benchmark]   (default: va)

Predicts a 16-chiplet (1,024-SM) MCM GPU's performance from 4- and
8-chiplet scale models, using weak scaling (work proportional to chiplet
count).  The same per-workload predictor handles chiplet counts exactly
as it handles SM counts.
"""

import sys
import time

from repro.core import ScaleModelPredictor, ScaleModelProfile
from repro.core.baselines import make_predictor
from repro.gpu import McmConfig, simulate_mcm
from repro.workloads import WEAK_SCALING, build_trace

CHIPLETS = (4, 8, 16)


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "va"
    spec = WEAK_SCALING[abbr]
    target = McmConfig.paper_target()
    print("Table V target system:")
    for key, value in target.describe().items():
        print(f"  {key:18s} {value}")

    results = {}
    for chiplets in CHIPLETS:
        config = target.scaled(chiplets)
        trace = build_trace(
            spec,
            work_scale=float(chiplets),
            capacity_scale=config.chiplet.capacity_scale,
        )
        start = time.perf_counter()
        results[chiplets] = simulate_mcm(config, trace)
        r = results[chiplets]
        print(f"\n  {chiplets:2d} chiplets ({config.total_sms} SMs): "
              f"IPC {r.ipc:8.1f}  remote accesses "
              f"{100 * r.extra['remote_fraction']:.0f}%  "
              f"({time.perf_counter() - start:.1f}s)")

    profile = ScaleModelProfile(
        workload=abbr, sizes=(4, 8),
        ipcs=(results[4].ipc, results[8].ipc),
        f_mem=results[8].memory_stall_fraction,
    )
    predictor = ScaleModelPredictor(profile)
    actual = results[16].ipc
    print(f"\n  16-chiplet prediction vs actual IPC {actual:.1f}:")
    for method in ("scale-model", "proportional", "linear", "power-law",
                   "logarithmic"):
        if method == "scale-model":
            pred = predictor.predict(16).ipc
        else:
            pred = make_predictor(method).fit(
                profile.sizes, profile.ipcs
            ).predict(16)
        err = abs(pred - actual) / actual
        print(f"    {method:14s} {pred:9.1f}  error {100 * err:5.1f}%")


if __name__ == "__main__":
    main()

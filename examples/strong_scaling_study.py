#!/usr/bin/env python3
"""Strong-scaling study: reproduce one benchmark's row of Figures 1/2/5.

Run:  python examples/strong_scaling_study.py [benchmark ...]
      (defaults to one benchmark per scaling class: dct bfs pf)

For each benchmark this simulates every paper system size (8-128 SMs),
collects the miss-rate curve, classifies the scaling behaviour, and shows
how each prediction method tracks the real curve.
"""

import sys

from repro.analysis.ascii_plot import plot_series
from repro.analysis.classify import classify_scaling
from repro.analysis.runner import CachedRunner
from repro.core import ScaleModelPredictor, ScaleModelProfile
from repro.core.baselines import make_predictor
from repro.mrc import analyze_regions
from repro.workloads import STRONG_SCALING

SIZES = (8, 16, 32, 64, 128)


def study(abbr: str, runner: CachedRunner) -> None:
    spec = STRONG_SCALING[abbr]
    print(f"\n=== {spec.name} ({abbr}) — suite {spec.suite}, "
          f"footprint {spec.footprint_mb:g} MB")

    real = {}
    for sms in SIZES:
        result = runner.simulate(spec, sms)
        real[sms] = result.ipc
        print(f"  {sms:3d} SMs: IPC {result.ipc:8.1f}   MPKI {result.mpki:5.2f}   "
              f"f_mem {result.memory_stall_fraction:.2f}")

    measured = classify_scaling([real[s] for s in SIZES], SIZES)
    print(f"  classification: measured {measured.value!r}, "
          f"paper says {spec.scaling.value!r}")

    curve = runner.miss_rate_curve(spec)
    analysis = analyze_regions(curve)
    print("  MRC:", "  ".join(f"{mb:g}MB={m:.2f}" for mb, m in curve.as_rows()))
    if analysis.has_cliff:
        low, high = analysis.cliff_capacities
        print(f"  cliff between {low / 2**20:.2f} MB and {high / 2**20:.2f} MB")
    else:
        print("  no miss-rate cliff (pre-cliff regime everywhere)")

    profile = ScaleModelProfile(
        workload=abbr, sizes=(8, 16),
        ipcs=(real[8], real[16]),
        f_mem=runner.simulate(spec, 16).memory_stall_fraction,
        curve=curve,
    )
    predictor = ScaleModelPredictor(profile)
    series = {"real": [real[s] for s in SIZES]}
    scale_model = {8: real[8], 16: real[16]}
    for target in (32, 64, 128):
        scale_model[target] = predictor.predict(target).ipc
    series["scale-model"] = [scale_model[s] for s in SIZES]
    for name in ("proportional", "power-law"):
        fitted = make_predictor(name).fit(profile.sizes, profile.ipcs)
        series[name] = [fitted.predict(s) for s in SIZES]
    print(plot_series([float(s) for s in SIZES], series,
                      title=f"{abbr}: real vs predicted IPC", x_label="#SMs"))

    actual = real[128]
    for name, values in series.items():
        if name == "real":
            continue
        err = abs(values[-1] - actual) / actual
        print(f"  {name:12s} @128 SMs: {values[-1]:8.1f}  error {100 * err:5.1f}%")


def main() -> None:
    benchmarks = sys.argv[1:] or ["dct", "bfs", "pf"]
    runner = CachedRunner()
    for abbr in benchmarks:
        study(abbr, runner)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Why does a workload scale the way it does — and how robust is its
prediction?

Run:  python examples/bounds_and_sensitivity.py [benchmark]  (default: dct)

Combines two companion tools around the scale-model predictor:

* the analytical bound model (`repro.analytical`) names the workload's
  bottleneck at each system size, explaining its scaling class;
* the sensitivity report (`repro.core.sensitivity`) shows how much
  measurement error in each predictor input (scale-model IPCs, f_mem)
  the prediction can tolerate.
"""

import sys

from repro.analytical import analyze, stats_from_result
from repro.analysis.runner import CachedRunner
from repro.analysis.tables import render_table
from repro.core import ScaleModelProfile
from repro.core.sensitivity import region_stability, sensitivity_report
from repro.gpu import GPUConfig
from repro.workloads import STRONG_SCALING


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "dct"
    spec = STRONG_SCALING[abbr]
    runner = CachedRunner()

    print(f"=== {spec.name} ({abbr})\n")
    print("Analytical bottleneck per system size:")
    rows = []
    for sms in (8, 16, 64, 128):
        result = runner.simulate(spec, sms)
        estimate = analyze(GPUConfig.paper_system(sms),
                           stats_from_result(result))
        rows.append([
            f"{sms} SMs",
            f"{result.ipc:.0f}",
            f"{estimate.ipc:.0f}",
            estimate.bottleneck,
        ])
    print(render_table(["system", "simulated IPC", "analytical IPC",
                        "bottleneck"], rows))

    sims = {n: runner.simulate(spec, n) for n in (8, 16)}
    curve = runner.miss_rate_curve(spec)
    profile = ScaleModelProfile(
        abbr, (8, 16), (sims[8].ipc, sims[16].ipc),
        f_mem=sims[16].memory_stall_fraction, curve=curve,
    )
    report = sensitivity_report(profile, 128)
    print(f"\nPrediction sensitivity at the 128-SM target "
          f"(base prediction {report.base_ipc:.0f} IPC):")
    print(render_table(["input", "perturbation", "prediction change"],
                       report.as_rows()))

    print("\nCliff-structure stability under per-point MPKI noise:")
    for noise, stable in region_stability(curve).items():
        print(f"  ±{noise:.0%}: {'stable' if stable else 'UNSTABLE'}")


if __name__ == "__main__":
    main()

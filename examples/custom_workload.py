#!/usr/bin/env python3
"""Bring your own workload: build a trace with the library's pattern
primitives and run the full scale-model workflow on it.

Run:  python examples/custom_workload.py

The example models a hypothetical "attention-like" kernel: a shared
key/value working set of 10 MB read by every CTA (reusable, cliff
candidate) plus heavy per-element compute.  The predictor anticipates the
cache cliff at the 32-SM point (8.5 MB LLC holds most of it) without
simulating anything larger than 16 SMs.
"""

import numpy as np

from repro import GPUConfig, collect_miss_rate_curve, simulate
from repro.core import ScaleModelPredictor, ScaleModelProfile
from repro.mrc import analyze_regions
from repro.trace import patterns
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace
from repro.units import MB

WARPS_PER_CTA = 4
ACCESSES_PER_WARP = 6
COMPUTE_PER_ACCESS = 12.0


def build_attention_like(capacity_scale: float) -> WorkloadTrace:
    kv_lines = int(10 * MB * capacity_scale / 128)  # 10 MB shared KV cache

    def build_cta(cta_id: int) -> CTATrace:
        rng = np.random.default_rng(cta_id)
        warps = []
        for w in range(WARPS_PER_CTA):
            gidx = cta_id * WARPS_PER_CTA + w
            lines = patterns.cyclic_sweep(
                0, kv_lines, ACCESSES_PER_WARP, offset=gidx * ACCESSES_PER_WARP
            )
            compute = patterns.interleave_compute(
                ACCESSES_PER_WARP, COMPUTE_PER_ACCESS, rng
            )
            warps.append(
                WarpTrace(compute.tolist(), lines.tolist(),
                          start_offset=float(rng.integers(0, 900)))
            )
        return CTATrace(cta_id, warps)

    kernel = KernelTrace("attention", num_ctas=8192, threads_per_cta=128,
                         build_cta=build_cta)
    workload = WorkloadTrace("attn", [kernel])
    workload.metadata["warm_region"] = (0, kv_lines)  # steady-state warm-up
    return workload


def main() -> None:
    ipcs, f_mem = {}, None
    for sms in (8, 16):
        config = GPUConfig.paper_system(sms)
        result = simulate(config, build_attention_like(config.capacity_scale))
        ipcs[sms] = result.ipc
        f_mem = result.memory_stall_fraction
        print(f"scale model {sms:2d} SMs: IPC {result.ipc:7.1f} "
              f"f_mem {f_mem:.2f} MPKI {result.mpki:.2f}")

    base = GPUConfig.paper_baseline()
    curve = collect_miss_rate_curve(build_attention_like(base.capacity_scale),
                                    config=base)
    print("MRC:", "  ".join(f"{mb:g}MB={m:.2f}" for mb, m in curve.as_rows()))
    analysis = analyze_regions(curve)
    if analysis.has_cliff:
        low, high = analysis.cliff_capacities
        print(f"cliff detected between {low / MB:.2f} and {high / MB:.2f} MB")

    profile = ScaleModelProfile(
        workload="attn", sizes=(8, 16), ipcs=(ipcs[8], ipcs[16]),
        f_mem=f_mem, curve=curve,
    )
    predictor = ScaleModelPredictor(profile)
    print("\npredictions:")
    for target in (32, 64, 128):
        result = predictor.predict(target)
        print(f"  {target:3d} SMs: IPC {result.ipc:8.1f}  [{result.region.value}]")

    # Verify the most interesting point — right after the cliff.
    config = GPUConfig.paper_system(32)
    actual = simulate(config, build_attention_like(config.capacity_scale))
    predicted = predictor.predict(32).ipc
    err = abs(predicted - actual.ipc) / actual.ipc
    print(f"\n32-SM check: predicted {predicted:.1f} vs actual {actual.ipc:.1f} "
          f"({100 * err:.1f}% error)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: predict a 128-SM GPU's performance from 8- and 16-SM
scale models, without ever simulating the target... then simulate the
target anyway to check the prediction.

Run:  python examples/quickstart.py  [benchmark]   (default: dct)

Steps (the workflow of Figure 3 in the paper):
  1. simulate the two scale models (detailed timing),
  2. collect the miss-rate curve (functional, one cheap pass),
  3. feed both to the scale-model predictor (Eqs. 1-4),
  4. compare against proportional scaling and the regression baselines.
"""

import sys
import time

from repro import GPUConfig, build_trace, collect_miss_rate_curve, get_benchmark, simulate
from repro.core import METHOD_NAMES, ScaleModelPredictor, ScaleModelProfile
from repro.core.baselines import make_predictor


def main() -> None:
    abbr = sys.argv[1] if len(sys.argv) > 1 else "dct"
    spec = get_benchmark(abbr)
    print(f"=== {spec.name} ({abbr}) — paper scaling class: {spec.scaling.value}")

    # 1. Simulate the scale models (8 and 16 SMs).
    results = {}
    for sms in (8, 16):
        config = GPUConfig.paper_system(sms)
        trace = build_trace(spec, capacity_scale=config.capacity_scale)
        start = time.perf_counter()
        results[sms] = simulate(config, trace)
        print(f"  scale model {sms:2d} SMs: IPC = {results[sms].ipc:7.1f}  "
              f"f_mem = {results[sms].memory_stall_fraction:.2f}  "
              f"({time.perf_counter() - start:.1f}s)")

    # 2. Collect the miss-rate curve (one functional pass, all capacities).
    trace = build_trace(spec)
    curve = collect_miss_rate_curve(trace)
    points = ", ".join(f"{mb:g}MB:{m:.2f}" for mb, m in curve.as_rows())
    print(f"  miss-rate curve (MPKI): {points}")

    # 3. Predict the 128-SM target.
    profile = ScaleModelProfile(
        workload=abbr,
        sizes=(8, 16),
        ipcs=(results[8].ipc, results[16].ipc),
        f_mem=results[16].memory_stall_fraction,
        curve=curve,
    )
    predictor = ScaleModelPredictor(profile)
    prediction = predictor.predict(128)
    print(f"  scale-model prediction for 128 SMs: IPC = {prediction.ipc:.1f} "
          f"({prediction.region.value} region, C = {prediction.correction_factor:.3f})")

    # 4. Ground truth plus the baselines the paper compares against.
    config = GPUConfig.paper_system(128)
    actual = simulate(config, build_trace(spec, capacity_scale=config.capacity_scale))
    print(f"  actual 128-SM IPC: {actual.ipc:.1f}")
    print(f"\n  {'method':14s} {'predicted':>10s} {'error':>8s}")
    for method in METHOD_NAMES:
        if method == "scale-model":
            value = prediction.ipc
        else:
            value = make_predictor(method).fit(profile.sizes, profile.ipcs).predict(128)
        err = abs(value - actual.ipc) / actual.ipc
        print(f"  {method:14s} {value:10.1f} {100 * err:7.1f}%")


if __name__ == "__main__":
    main()

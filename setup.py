"""Setup shim for environments without PEP 517 build isolation.

Canonical metadata lives in pyproject.toml; the console scripts are
mirrored here because ``setup.py develop`` (used on hosts where pip cannot
fetch build dependencies) does not read ``[project.scripts]``.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "gpu-scale-model = repro.core.cli:main",
            "gpu-scale-experiments = repro.analysis.cli:main",
        ]
    }
)

#!/usr/bin/env python3
"""Bounded seeded fuzz sweep for CI: random workloads through the
verify oracles (paranoia run, determinism differential, cold-vs-resume
replay), with greedy shrinking of anything that fails.

  python scripts/fuzz_verify.py                  # default seed range
  python scripts/fuzz_verify.py --seeds 0:64
  python scripts/fuzz_verify.py --seeds 7,11,13 --time-budget 30

Everything is deterministic per seed, so a red case reproduces from the
one number printed in the report.  Exit 0 when every case survives,
1 otherwise (shrunk failing cases listed), 2 on bad arguments.
"""

from __future__ import annotations

import argparse
import sys

from repro.resilience import apply_memory_limit, install_shutdown_handlers
from repro.verify.fuzz import run_fuzz

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_ERROR = 2

#: CI default: fixed, small, fast (~seconds per case on one core).
DEFAULT_SEEDS = "0:24"


def parse_seeds(text: str):
    """``a:b`` (half-open range) or ``s1,s2,...`` (explicit list)."""
    text = text.strip()
    if ":" in text:
        lo, _, hi = text.partition(":")
        start, stop = int(lo), int(hi)
        if stop <= start:
            raise ValueError(f"empty seed range {text!r}")
        return range(start, stop)
    return [int(part) for part in text.split(",") if part.strip()]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", default=DEFAULT_SEEDS,
                        help="seed range 'a:b' or list 's1,s2,...' "
                             "(default: %(default)s)")
    parser.add_argument("--time-budget", type=float, default=120.0,
                        help="stop starting new cases after this many "
                             "seconds (default %(default)s; 0 = "
                             "unlimited)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report the raw failing case instead of "
                             "shrinking it (faster on red)")
    args = parser.parse_args(argv)

    try:
        seeds = parse_seeds(args.seeds)
    except ValueError as error:
        print(f"error: bad --seeds: {error}", file=sys.stderr)
        return EXIT_ERROR

    install_shutdown_handlers().reset()
    apply_memory_limit()

    budget = args.time_budget if args.time_budget > 0 else None
    report = run_fuzz(
        seeds, time_budget_s=budget, shrink_failures=not args.no_shrink
    )
    skipped = len(seeds) - report.cases_run
    print(
        f"fuzz: {report.cases_run} case(s) in {report.elapsed_s:.1f}s, "
        f"{len(report.failures)} failure(s)"
        + (f", {skipped} seed(s) unrun (time budget)" if skipped else "")
    )
    if report.failures:
        for failure in report.failures:
            print(f"\nFAIL seed {failure.case.seed}: {failure.error}",
                  file=sys.stderr)
            print(f"  original: {failure.case.describe()}",
                  file=sys.stderr)
            print(f"  shrunk:   {failure.shrunk.describe()}",
                  file=sys.stderr)
        print(
            f"\nreproduce any case with its seed, e.g.:\n"
            f"  PYTHONPATH=src python -c \"from repro.verify.fuzz import "
            f"*; print(check_case(random_case("
            f"{report.failures[0].case.seed})))\"",
            file=sys.stderr,
        )
        return EXIT_FAILURES
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Chaos/soak harness: run small campaigns under seeded fault schedules.

Each trial builds a fresh result store, arms a randomized-but-seeded
``REPRO_FAULT_INJECT`` plan (run faults plus filesystem faults at the
store/checkpoint write seams), executes a small simulation matrix with
``keep_going``, clears the faults, drains whatever the failed flushes
kept pending, reruns the campaign to completion, and then asserts the
resilience invariants this repository promises:

1. **No completed result is lost** — every run the report counted ``ok``
   is present in a fresh load of the store, even when the flush that
   should have persisted it hit an injected ``ENOSPC``/partial write.
2. **Cache shards stay parseable** — the fresh load itself is the check:
   a torn append may cost one corrupt *line* (quarantined + salvaged),
   never a crash and never a neighbouring record.
3. **Every failure has a manifest entry** — each ``failed``/``timeout``/
   ``oom`` outcome appears in ``failures/<shard>.jsonl`` with its key.
4. **A resumed campaign converges** — after the faults clear, a rerun
   over the same store completes every run and the final payloads are
   bit-identical (``wall_time_s``, a host-time measurement, excluded)
   to a never-faulted reference campaign.
5. **Golden-ledger integrity** — the clean reference campaign is pinned
   into an ad-hoc golden ledger (``repro.verify.golden``) and the
   post-chaos store must pass the same digest audit CI's golden gate
   runs: fault schedules may cost retries, never silent corruption.

Seeded: ``--seed`` fixes the whole schedule, so a CI failure reproduces
locally with the same flags.  ``--quick`` (CI) runs 2 trials; the
default is 5.  Exits 0 when every invariant holds, 1 with diagnostics
otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile

from repro.analysis.faults import (
    FAULT_INJECT_ENV,
    OK,
    ExecutionPolicy,
    reset_io_faults,
)
from repro.analysis.parallel import ParallelRunner, RunRequest
from repro.analysis.simcache import ResultStore
from repro.resilience import reset_disk_guard
from repro.verify.golden import audit_store, pin_store
from repro.workloads import STRONG_SCALING

# Two cheap multi-kernel workloads at a reduced work scale keep one
# trial under ~10 s while still crossing kernel/checkpoint boundaries.
ABBRS = ("va", "btree")
SIZE = 8
WORK_SCALE = 0.25
SEEDS = (0, 1)


def matrix() -> list:
    return [
        RunRequest("sim", STRONG_SCALING[abbr], size=SIZE,
                   work_scale=WORK_SCALE, seed=seed)
        for abbr in ABBRS
        for seed in SEEDS
    ]


def fault_plan(rng: random.Random) -> str:
    """One seeded schedule: 1-3 directives over runs and write seams.

    Manifest/trace/metrics seams are deliberately not broken here — the
    "every failure has a manifest entry" invariant needs the manifest
    writable (dedicated tests cover those seams degrading gracefully).
    """
    candidates = [
        f"fail:sim|{rng.choice(ABBRS)}:1",       # fails once, retry wins
        f"fail:sim|{rng.choice(ABBRS)}",         # terminal failure
        "enospc:store:1",                        # one flush hits ENOSPC
        "partial-write:store:1",                 # one flush tears a line
        "enospc:checkpoint:1",                   # one snapshot lost
        "slow-io:store:0.01",                    # every flush is slow
    ]
    return ",".join(rng.sample(candidates, rng.randint(1, 3)))


def stripped(payload: dict) -> dict:
    record = dict(payload)
    record.pop("wall_time_s", None)
    return record


def run_campaign(root: str, jobs: int, plan: str = "") -> tuple:
    """One campaign over the matrix; returns (report, store stats)."""
    reset_io_faults()
    reset_disk_guard()
    if plan:
        os.environ[FAULT_INJECT_ENV] = plan
    else:
        os.environ.pop(FAULT_INJECT_ENV, None)
    store = ResultStore(os.path.join(root, "simcache"))
    runner = ParallelRunner(
        store, jobs=jobs,
        policy=ExecutionPolicy(max_retries=1, keep_going=True),
    )
    try:
        report = runner.run_batch_report(matrix())
    finally:
        os.environ.pop(FAULT_INJECT_ENV, None)
        reset_io_faults()
        # Drain what a faulted flush kept pending: the guard re-checks
        # (interval 0) and the disk is genuinely fine again.
        reset_disk_guard()
        store.flush()
    return report, store.stats()


def manifest_keys(root: str) -> set:
    keys = set()
    failures = os.path.join(root, "failures")
    if not os.path.isdir(failures):
        return keys
    for fname in sorted(os.listdir(failures)):
        if not fname.endswith(".jsonl"):
            continue
        with open(os.path.join(failures, fname)) as fh:
            for line in fh:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line: tolerated by contract
                if isinstance(record, dict) and record.get("status") != OK:
                    keys.add(record.get("key"))
    return keys


def run_trial(
    trial: int, rng: random.Random, reference: dict, ledger: dict
) -> list:
    """One chaos trial; returns a list of invariant violations."""
    problems = []
    root = tempfile.mkdtemp(prefix=f"chaos-soak-{trial}-")
    plan = fault_plan(rng)
    jobs = rng.choice((1, 2))
    print(f"[trial {trial}] jobs={jobs} plan={plan}")
    try:
        report, _ = run_campaign(root, jobs, plan)
        # 1 + 2: fresh load (parse check) and no completed result lost.
        reloaded = ResultStore(os.path.join(root, "simcache"))
        for outcome in report.outcomes:
            if outcome.status == OK and not reloaded.contains(outcome.key):
                problems.append(
                    f"trial {trial}: completed result {outcome.key} "
                    "missing from the reloaded store"
                )
        # 3: every terminal failure is in the manifest.
        recorded = manifest_keys(root)
        for outcome in report.manifest_outcomes:
            if outcome.key not in recorded:
                problems.append(
                    f"trial {trial}: {outcome.status} run {outcome.key} "
                    "has no failure-manifest entry"
                )
        # 4: the resumed campaign completes and converges.
        resumed, _ = run_campaign(root, jobs)
        bad = [o for o in resumed.outcomes if o.status != OK]
        if bad:
            problems.append(
                f"trial {trial}: resumed campaign left "
                f"{len(bad)} unfinished runs ({resumed.summary()})"
            )
        final = ResultStore(os.path.join(root, "simcache"))
        for request in matrix():
            payload = final._entries.get(request.key)
            if payload is None:
                problems.append(
                    f"trial {trial}: resumed store is missing {request.key}"
                )
            elif stripped(payload) != reference[request.key]:
                problems.append(
                    f"trial {trial}: resumed payload for {request.key} "
                    "diverges from the clean reference"
                )
        # 5: golden-ledger integrity — every converged payload must
        # digest identically to the clean reference's pin.  This is the
        # same audit the CI golden gate runs, aimed at a store that
        # lived through injected ENOSPC/torn writes/crashes.
        audit = audit_store(ledger, final)
        if not audit.ok:
            problems.append(
                f"trial {trial}: golden audit after faults failed "
                f"({audit.summary()})"
            )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=1234,
                        help="fixes the whole fault schedule")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: 2 trials")
    args = parser.parse_args(argv)
    trials = 2 if args.quick else args.trials
    # fsync durability is exercised by dedicated tests; here it only
    # slows the soak down.
    os.environ.setdefault("REPRO_NO_FSYNC", "1")
    # Interval 0: the disk guard re-checks on every call, so the forced
    # low state after an injected ENOSPC clears on the next flush.
    os.environ["REPRO_DISK_CHECK_INTERVAL"] = "0"

    ref_root = tempfile.mkdtemp(prefix="chaos-soak-ref-")
    try:
        reference_report, _ = run_campaign(ref_root, jobs=1)
        if reference_report.executed != len(matrix()):
            print("FAIL: clean reference campaign did not complete",
                  file=sys.stderr)
            return 1
        ref_store = ResultStore(os.path.join(ref_root, "simcache"))
        reference = {
            request.key: stripped(ref_store._entries[request.key])
            for request in matrix()
        }
        ledger = pin_store(
            ref_store,
            [request.key for request in matrix()],
            reason="chaos-soak clean reference campaign",
        )
    finally:
        shutil.rmtree(ref_root, ignore_errors=True)

    rng = random.Random(args.seed)
    problems = []
    for trial in range(trials):
        problems.extend(run_trial(trial, rng, reference, ledger))
    if problems:
        print(f"chaos soak: {len(problems)} invariant violation(s) over "
              f"{trials} trials (seed {args.seed})", file=sys.stderr)
        return 1
    print(f"chaos soak: all invariants held over {trials} trials "
          f"(seed {args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

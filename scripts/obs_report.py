#!/usr/bin/env python3
"""Summarize the observability artifacts of the last batch.

Reads the files ``--trace-out`` / ``--metrics-out`` produced (or a spill
directory a crashed run left behind) and prints:

* per-stage wall time — spans grouped by category and name, with count,
  total, mean and max duration;
* the cache-hit breakdown — runner hits/misses, store hits/misses and
  the hit rate;
* the flat metrics report (counters, gauges, histogram quantiles).

Usage::

    python scripts/obs_report.py --trace trace.json --metrics metrics.json
    python scripts/obs_report.py --spill trace.json.spill
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from typing import Dict, List, Optional

from repro.obs.export import metrics_report, read_spill_dir, validate_trace_events


def load_trace_events(path: Optional[str], spill: Optional[str]) -> List[dict]:
    """Events from a trace document and/or a spill directory, merged."""
    events: List[dict] = []
    if path:
        try:
            with open(path) as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read trace {path}: {error}", file=sys.stderr)
            return events
        problems = validate_trace_events(document)
        if problems:
            print(
                f"warning: {path} has {len(problems)} schema problems "
                f"(first: {problems[0]})",
                file=sys.stderr,
            )
        if isinstance(document, dict):
            events.extend(
                e for e in document.get("traceEvents", [])
                if isinstance(e, dict)
            )
    events.extend(read_spill_dir(spill))
    return events


def stage_table(events: List[dict]) -> str:
    """Per-stage wall time: complete spans grouped by (category, name)."""
    groups: Dict[tuple, List[float]] = defaultdict(list)
    for event in events:
        if event.get("ph") != "X":
            continue
        # Indexed span names (kernel[3]:fft) collapse into one stage.
        name = str(event.get("name", "?")).split("[")[0].split(":")[0]
        groups[(str(event.get("cat", "misc")), name)].append(
            float(event.get("dur", 0.0))
        )
    if not groups:
        return "(no complete spans)"
    header = (
        f"{'category':<12s} {'stage':<18s} {'spans':>7s} "
        f"{'total ms':>10s} {'mean ms':>10s} {'max ms':>10s}"
    )
    lines = [header, "-" * len(header)]
    ordered = sorted(
        groups.items(), key=lambda item: -sum(item[1])
    )
    for (cat, name), durs in ordered:
        total = sum(durs)
        lines.append(
            f"{cat:<12s} {name:<18s} {len(durs):>7d} "
            f"{total / 1e3:>10.2f} {total / len(durs) / 1e3:>10.3f} "
            f"{max(durs) / 1e3:>10.3f}"
        )
    return "\n".join(lines)


def cache_breakdown(counters: Dict[str, float]) -> str:
    """Hit/miss lines for every ``*hits``/``*misses`` counter pair."""
    lines = []
    for prefix in sorted(
        name[: -len("hits")]
        for name in counters
        if name.endswith("hits") and not name.endswith("l1_hits")
        and not name.endswith("llc_hits")
    ):
        hits = counters.get(prefix + "hits", 0)
        misses = counters.get(prefix + "misses", 0)
        total = hits + misses
        rate = 100.0 * hits / total if total else 0.0
        label = (prefix.rstrip(".") or "cache")
        lines.append(
            f"{label:<24s} {int(hits):>8d} hits {int(misses):>8d} misses "
            f"({rate:5.1f}% hit rate)"
        )
    return "\n".join(lines) or "(no cache counters recorded)"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", default=None,
                        help="Chrome trace_event JSON (--trace-out output)")
    parser.add_argument("--metrics", default=None,
                        help="metrics snapshot JSON (--metrics-out output)")
    parser.add_argument("--spill", default=None,
                        help="spill directory of an unfinished run "
                             "(<trace-out>.spill)")
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.spill):
        parser.error("nothing to report: pass --trace, --metrics or --spill")

    events = load_trace_events(args.trace, args.spill)
    if events:
        print("== per-stage wall time ==")
        print(stage_table(events))
        print()

    if args.metrics:
        try:
            with open(args.metrics) as fh:
                snapshot = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"error: cannot read metrics {args.metrics}: {error}",
                file=sys.stderr,
            )
            return 1
        print("== cache breakdown ==")
        print(cache_breakdown(snapshot.get("counters", {})))
        print()
        print("== metrics ==")
        print(metrics_report(snapshot))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Audit (or re-bless) the golden-result ledger for the quick tier.

Default mode recomputes every quick-tier run into a fresh temporary
cache and audits the payload digests against
``results/golden/ledger.json``:

  python scripts/verify_golden.py --check --jobs 4

Exit 0 when every digest matches; exit 1 listing each drifted or
absent entry otherwise.  Because the shipped ledger was blessed from a
serial run, a ``--jobs N`` audit doubles as the serial-vs-parallel
differential: scheduling-dependent nondeterminism shows up as drift.

Intentional model changes are re-blessed explicitly — never silently:

  python scripts/verify_golden.py --bless --reason "Eq.3 cliff fix"

Run either mode under ``REPRO_VERIFY=1`` (or with ``--verify``) and the
recomputation is also a full paranoia sweep of the tier.
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile

from repro.analysis.faults import ExecutionPolicy
from repro.analysis.runner import CachedRunner
from repro.exceptions import ReproError
from repro.obs import bootstrap
from repro.resilience import apply_memory_limit, install_shutdown_handlers
from repro.bench import matrix_for_tier
from repro.verify.golden import (
    DEFAULT_LEDGER_PATH,
    audit_store,
    build_ledger,
    load_ledger,
    save_ledger,
)
from repro.verify.runtime import arm_from_flag

EXIT_OK = 0
EXIT_DRIFT = 1
EXIT_ERROR = 2


def _make_runner(cache_dir: str, jobs: int) -> CachedRunner:
    return CachedRunner(
        os.path.join(cache_dir, "simcache"),
        jobs=jobs,
        policy=ExecutionPolicy(),
        checkpoint=None,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true",
                      help="recompute the tier and audit against the "
                           "ledger (the default)")
    mode.add_argument("--bless", action="store_true",
                      help="recompute the tier and overwrite the ledger; "
                           "requires --reason")
    parser.add_argument("--reason", default=None,
                        help="why the ledger is being re-blessed "
                             "(recorded in the ledger; required with "
                             "--bless)")
    parser.add_argument("--ledger", default=DEFAULT_LEDGER_PATH,
                        help="ledger path (default: %(default)s)")
    parser.add_argument("--tier", choices=("quick", "full"),
                        default="quick",
                        help="bench tier to pin (default quick)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the recomputation "
                             "(default 1; --jobs 4 against a serially "
                             "blessed ledger is the serial-vs-parallel "
                             "differential)")
    parser.add_argument("--cache-dir", default=None,
                        help="recomputation cache (default: fresh temp "
                             "dir, removed afterwards — audits must not "
                             "be served from stale results)")
    parser.add_argument("--verify", action="store_true",
                        help="paranoia mode during the recomputation "
                             "(equivalent to REPRO_VERIFY=1)")
    args = parser.parse_args(argv)

    if args.bless and not args.reason:
        parser.error("--bless requires --reason (say why the results "
                     "are allowed to change)")

    bootstrap(None, None, None)
    install_shutdown_handlers().reset()
    apply_memory_limit()
    arm_from_flag(args.verify)

    matrix = matrix_for_tier(args.tier)
    cache_dir = args.cache_dir
    temp_cache = cache_dir is None
    if temp_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-golden-")
    try:
        runner = _make_runner(cache_dir, args.jobs)
        if args.bless:
            document = build_ledger(matrix, runner, args.reason)
            runner.flush()
            save_ledger(document, args.ledger)
            print(
                f"blessed {args.ledger}: {len(document['entries'])} "
                f"entries ({matrix.tier} tier, seed {matrix.seed}) — "
                f"reason: {args.reason}"
            )
            return EXIT_OK

        ledger = load_ledger(args.ledger)
        if ledger.get("tier") != matrix.tier:
            raise ReproError(
                f"ledger pins the {ledger.get('tier')!r} tier but "
                f"--tier {matrix.tier} was requested; re-bless or pick "
                "the matching tier"
            )
        # Recompute through build_ledger's own run loop so audit and
        # bless exercise identical execution paths, then diff digests.
        build_ledger(matrix, runner, reason="(audit recomputation)")
        runner.flush()
        report = audit_store(ledger, runner.store)
        print(report.summary())
        if report.drifted:
            print("drifted entries (expected != recomputed):",
                  file=sys.stderr)
            for key, expected, actual in report.drifted:
                print(f"  - {key}: {expected} != {actual}",
                      file=sys.stderr)
        if report.absent:
            print("absent entries (in ledger, never recomputed):",
                  file=sys.stderr)
            for key in report.absent:
                print(f"  - {key}", file=sys.stderr)
        if not report.ok:
            print(
                "golden audit FAILED — if the change is intentional, "
                "re-bless with --bless --reason '...'", file=sys.stderr,
            )
            return EXIT_DRIFT
        print(f"golden audit ok vs {args.ledger} "
              f"(blessed {ledger.get('blessed_at')}: "
              f"{ledger.get('reason')})")
        return EXIT_OK
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    finally:
        if temp_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

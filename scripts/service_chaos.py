#!/usr/bin/env python3
"""Chaos harness for the prediction service: prove overload degrades, not corrupts.

Each phase boots a fresh ``scripts/serve.py`` subprocess with a seeded
fault plan (``REPRO_FAULT_INJECT``), drives real HTTP requests at it,
and asserts the service's one invariant: **every accepted request
terminates in a declared state** — ``completed``, ``failed``, ``shed``
or ``drained`` — and every refusal is explicit (429/503 with a reason),
never a hung connection or a silent drop.

Phases:

  baseline       no faults; cold completes, warm repeat is a cache hit
  worker-death   ``die`` directive: the poisoned config fails cleanly,
                 healthy configs keep completing, workers are recycled
  flaky-retry    ``fail:...:1``: one injected failure, the retry wins
  hang-shed      ``hang`` + a short deadline: 504 shed, the hung worker
                 is put down, the next request gets a fresh one
  io-pressure    ``enospc:store`` + ``slow-io:store``: responses keep
                 flowing while persistence degrades
  golden-integrity  whatever a store-faulted server *did* persist must
                 digest identically to a clean server's golden pin
                 (``repro.verify.golden``): faults may lose writes,
                 never corrupt them
  breaker        repeated deaths trip the per-config breaker: fast 503
                 with the streak in the body, healthy configs unaffected
  overload       queue depth 2, one worker: concurrent burst gets
                 explicit 429 + Retry-After, never unbounded queueing
  drain          SIGTERM mid-load: in-flight finishes (200), queued
                 drains (503 ``drained``), manifest records the
                 casualties, exit code is 75

Usage:
  PYTHONPATH=src python scripts/service_chaos.py --quick
  PYTHONPATH=src python scripts/service_chaos.py --seed 7

Exit codes: 0 all invariants held, 1 violations (listed on stderr).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SERVE = os.path.join(REPO_ROOT, "scripts", "serve.py")

#: Sub-second configs (size 8, work_scale 0.25) so phases stay snappy.
FAST_BENCHES = ("va", "dct", "sr")

TERMINAL = {"completed", "failed", "shed", "drained", "rejected"}

_BANNER = re.compile(r"listening on http://[^:]+:(\d+)")


class Violation(Exception):
    pass


class Phase:
    """One server lifetime: subprocess, port, store dir, collected output."""

    def __init__(self, name, env_extra=None, args=(), keep_store=None):
        self.name = name
        self.env_extra = dict(env_extra or {})
        self.args = list(args)
        self.tmp = keep_store or tempfile.mkdtemp(prefix=f"svc-chaos-{name}-")
        self.store = os.path.join(self.tmp, "results", "simcache")
        self.proc = None
        self.port = None

    def __enter__(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(REPO_ROOT, "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env["REPRO_NO_FSYNC"] = "1"
        env["REPRO_DISK_CHECK_INTERVAL"] = "0"
        env.pop("REPRO_FAULT_INJECT", None)
        env.update(self.env_extra)
        self.proc = subprocess.Popen(
            [sys.executable, SERVE, "--port", "0", "--store", self.store]
            + self.args,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        deadline = time.time() + 30
        while time.time() < deadline:
            line = self.proc.stdout.readline()
            if not line and self.proc.poll() is not None:
                raise Violation(f"[{self.name}] server died before listening")
            match = _BANNER.search(line or "")
            if match:
                self.port = int(match.group(1))
                return self
        raise Violation(f"[{self.name}] server never announced its port")

    def __exit__(self, exc_type, exc, tb):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()
        self.proc.stdout.read()
        return False

    def stop_and_wait(self, timeout=60):
        """SIGTERM and return the exit code (drain phase checks 75)."""
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def request(self, body, timeout=90, path="/predict", method="POST"):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(method, path, payload)
            resp = conn.getresponse()
            data = json.loads(resp.read() or b"{}")
            return resp.status, data, dict(resp.getheaders())
        finally:
            conn.close()

    def stats(self):
        return self.request(None, path="/statsz", method="GET")[1]


def body_for(bench, seed=0, deadline=None, work_scale=0.25):
    body = {
        "kind": "sim",
        "benchmark": bench,
        "size": 8,
        "work_scale": work_scale,
        "seed": seed,
    }
    if deadline is not None:
        body["deadline_s"] = deadline
    return body


def check(condition, message, violations):
    if not condition:
        violations.append(message)
        print(f"  VIOLATION: {message}", file=sys.stderr)


def check_terminal(status, data, label, violations):
    check(
        data.get("status") in TERMINAL,
        f"{label}: non-terminal response {status} {data}",
        violations,
    )


# --- phases ------------------------------------------------------------------

def phase_baseline(rng, quick, violations):
    with Phase("baseline") as phase:
        bench = rng.choice(FAST_BENCHES)
        status, data, _ = phase.request(body_for(bench))
        check(
            status == 200 and data["status"] == "completed" and not data["cached"],
            f"baseline cold: expected fresh 200, got {status} {data}",
            violations,
        )
        status, data, _ = phase.request(body_for(bench))
        check(
            status == 200 and data["cached"],
            f"baseline warm: expected cache hit, got {status} {data}",
            violations,
        )
        stats = phase.stats()
        check(
            stats["store"]["hits"] >= 1,
            "baseline: /statsz shows no store hit after a warm request",
            violations,
        )
    print("  phase baseline: ok")


def phase_worker_death(rng, quick, violations):
    poisoned = rng.choice(FAST_BENCHES)
    healthy = rng.choice([b for b in FAST_BENCHES if b != poisoned])
    env = {"REPRO_FAULT_INJECT": f"die:sim|{poisoned}"}
    with Phase("worker-death", env) as phase:
        status, data, _ = phase.request(body_for(poisoned))
        check(
            status == 500 and data["status"] == "failed",
            f"worker-death: poisoned config should fail 500, got {status} {data}",
            violations,
        )
        status, data, _ = phase.request(body_for(healthy))
        check(
            status == 200 and data["status"] == "completed",
            f"worker-death: healthy config should survive, got {status} {data}",
            violations,
        )
        stats = phase.stats()
        check(
            stats["workers"]["recycles"] >= 1,
            "worker-death: no worker recycle recorded after deaths",
            violations,
        )
    print("  phase worker-death: ok")


def phase_flaky_retry(rng, quick, violations):
    bench = rng.choice(FAST_BENCHES)
    env = {"REPRO_FAULT_INJECT": f"fail:sim|{bench}:1"}
    with Phase("flaky-retry", env) as phase:
        status, data, _ = phase.request(body_for(bench))
        check(
            status == 200 and data["status"] == "completed",
            f"flaky-retry: one injected failure should be retried away, "
            f"got {status} {data}",
            violations,
        )
    print("  phase flaky-retry: ok")


def phase_hang_shed(rng, quick, violations):
    bench = rng.choice(FAST_BENCHES)
    healthy = rng.choice([b for b in FAST_BENCHES if b != bench])
    env = {"REPRO_FAULT_INJECT": f"hang:sim|{bench}:120"}
    with Phase("hang-shed", env) as phase:
        started = time.time()
        status, data, _ = phase.request(body_for(bench, deadline=1.5))
        elapsed = time.time() - started
        check(
            status == 504 and data["status"] == "shed",
            f"hang-shed: hung run should shed 504, got {status} {data}",
            violations,
        )
        check(
            elapsed < 30,
            f"hang-shed: shed took {elapsed:.1f}s against a 1.5s deadline",
            violations,
        )
        status, data, _ = phase.request(body_for(healthy))
        check(
            status == 200 and data["status"] == "completed",
            f"hang-shed: fresh worker should serve the next request, "
            f"got {status} {data}",
            violations,
        )
        check(
            phase.stats()["workers"]["recycles"] >= 1,
            "hang-shed: the hung worker was never recycled",
            violations,
        )
    print("  phase hang-shed: ok")


def phase_io_pressure(rng, quick, violations):
    env = {"REPRO_FAULT_INJECT": "enospc:store:1,slow-io:store:0.02"}
    with Phase("io-pressure", env) as phase:
        for index in range(2 if quick else 4):
            bench = FAST_BENCHES[index % len(FAST_BENCHES)]
            status, data, _ = phase.request(body_for(bench, seed=index))
            check(
                status == 200 and data["status"] == "completed",
                f"io-pressure: request {index} should complete despite "
                f"store faults, got {status} {data}",
                violations,
            )
        status, data, _ = phase.request(None, path="/readyz", method="GET")
        check(
            status == 200,
            f"io-pressure: service not ready under io faults ({status})",
            violations,
        )
    print("  phase io-pressure: ok")


def phase_golden_integrity(rng, quick, violations):
    """Store faults may cost persistence, never silent corruption."""
    from repro.analysis.simcache import ResultStore
    from repro.verify.golden import audit_store, pin_store

    benches = [rng.choice(FAST_BENCHES) for _ in range(2 if quick else 3)]

    def drive(phase, label):
        for index, bench in enumerate(benches):
            status, data, _ = phase.request(body_for(bench, seed=300 + index))
            check(
                status == 200 and data["status"] == "completed",
                f"golden-integrity: {label} request {index} should "
                f"complete, got {status} {data}",
                violations,
            )

    with Phase("golden-ref") as ref_phase:
        drive(ref_phase, "clean")
    reference = ResultStore(ref_phase.store)
    if not reference._entries:
        check(False,
              "golden-integrity: clean server persisted nothing to pin",
              violations)
        shutil.rmtree(ref_phase.tmp, ignore_errors=True)
        return
    ledger = pin_store(
        reference, sorted(reference._entries),
        reason="service-chaos clean reference server",
    )
    env = {"REPRO_FAULT_INJECT": "enospc:store:1,partial-write:store:1"}
    with Phase("golden-faulted", env) as faulted_phase:
        drive(faulted_phase, "faulted")
    # require_all=False: an injected ENOSPC may legitimately have cost
    # a flush.  What *was* persisted must digest identically.
    audit = audit_store(
        ledger, ResultStore(faulted_phase.store), require_all=False
    )
    check(
        not audit.drifted,
        f"golden-integrity: post-fault payload(s) drifted from the "
        f"clean pin ({audit.summary()}): {audit.drifted}",
        violations,
    )
    shutil.rmtree(ref_phase.tmp, ignore_errors=True)
    shutil.rmtree(faulted_phase.tmp, ignore_errors=True)
    print("  phase golden-integrity: ok")


def phase_breaker(rng, quick, violations):
    bench = rng.choice(FAST_BENCHES)
    env = {
        "REPRO_FAULT_INJECT": f"die:sim|{bench}",
        "REPRO_BREAKER_THRESHOLD": "2",
    }
    with Phase("breaker", env) as phase:
        for attempt in range(2):
            status, data, _ = phase.request(body_for(bench))
            check(
                status == 500,
                f"breaker: failure {attempt} should be a 500, got {status}",
                violations,
            )
        status, data, _ = phase.request(body_for(bench))
        check(
            status == 503 and "breaker" in data.get("error", ""),
            f"breaker: third request should fast-fail 503 with breaker "
            f"context, got {status} {data}",
            violations,
        )
        check(
            phase.stats()["breaker"]["open_configs"] >= 1,
            "breaker: /statsz does not report the open breaker",
            violations,
        )
        healthy = rng.choice([b for b in FAST_BENCHES if b != bench])
        status, data, _ = phase.request(body_for(healthy))
        check(
            status == 200,
            f"breaker: healthy config must not be quarantined, got {status}",
            violations,
        )
    print("  phase breaker: ok")


def phase_overload(rng, quick, violations):
    args = ["--queue-depth", "2", "--workers-min", "1", "--workers-max", "1"]
    with Phase("overload", args=args) as phase:
        burst = 6 if quick else 10
        results = [None] * burst
        errors = []

        def fire(index):
            try:
                results[index] = phase.request(
                    body_for("va", seed=100 + index, work_scale=0.5),
                    timeout=120,
                )
            except Exception as error:  # noqa: BLE001 - harness boundary
                errors.append(f"overload request {index}: {error!r}")

        threads = [
            threading.Thread(target=fire, args=(index,))
            for index in range(burst)
        ]
        for thread in threads:
            thread.start()
            time.sleep(0.05)
        for thread in threads:
            thread.join()
        check(not errors, f"overload: transport errors {errors}", violations)
        statuses = [r[0] for r in results if r]
        rejected = [r for r in results if r and r[0] == 429]
        check(
            all(s in (200, 429, 504) for s in statuses),
            f"overload: unexpected statuses {statuses}",
            violations,
        )
        check(
            rejected,
            f"overload: a {burst}-deep burst against a 2-slot queue never "
            f"got a 429 (statuses: {statuses})",
            violations,
        )
        for status, data, headers in (r for r in results if r):
            check_terminal(status, data, "overload", violations)
            if status == 429:
                check(
                    "Retry-After" in headers,
                    "overload: 429 without a Retry-After header",
                    violations,
                )
    print("  phase overload: ok")


def phase_drain(rng, quick, violations):
    args = ["--workers-min", "1", "--workers-max", "1"]
    with Phase("drain", args=args) as phase:
        count = 3 if quick else 5
        results = [None] * count
        errors = []

        def fire(index):
            try:
                results[index] = phase.request(
                    body_for("sr", seed=200 + index, work_scale=0.5,
                             deadline=60),
                    timeout=120,
                )
            except Exception as error:  # noqa: BLE001 - harness boundary
                errors.append(f"drain request {index}: {error!r}")

        threads = [
            threading.Thread(target=fire, args=(index,))
            for index in range(count)
        ]
        for thread in threads:
            thread.start()
            time.sleep(0.1)
        time.sleep(0.5)  # let request 0 reach a worker
        code = phase.stop_and_wait()
        for thread in threads:
            thread.join()
        check(not errors, f"drain: transport errors {errors}", violations)
        check(code == 75, f"drain: exit code {code}, expected 75", violations)
        answered = [r for r in results if r]
        check(
            len(answered) == count,
            f"drain: {count - len(answered)} request(s) never answered",
            violations,
        )
        statuses = sorted(r[1].get("status") for r in answered)
        for status, data, _ in answered:
            check_terminal(status, data, "drain", violations)
        check(
            "completed" in statuses,
            f"drain: the in-flight run should finish, got {statuses}",
            violations,
        )
        check(
            "drained" in statuses,
            f"drain: queued runs should report drained, got {statuses}",
            violations,
        )
        manifest_root = os.path.join(
            os.path.dirname(phase.store), "failures"
        )
        interrupted = 0
        if os.path.isdir(manifest_root):
            for name in os.listdir(manifest_root):
                if not name.endswith(".jsonl"):
                    continue
                with open(os.path.join(manifest_root, name)) as handle:
                    for line in handle:
                        if not line.strip():
                            continue
                        record = json.loads(line)
                        if record.get("status") == "interrupted":
                            interrupted += 1
        drained_count = statuses.count("drained")
        check(
            interrupted >= drained_count,
            f"drain: {drained_count} drained job(s) but only {interrupted} "
            "interrupted manifest record(s) — a rerun could not find them",
            violations,
        )
    print("  phase drain: ok")


PHASES = (
    phase_baseline,
    phase_worker_death,
    phase_flaky_retry,
    phase_hang_shed,
    phase_io_pressure,
    phase_golden_integrity,
    phase_breaker,
    phase_overload,
    phase_drain,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="smaller bursts (CI tier)"
    )
    parser.add_argument(
        "--phase", action="append", default=None,
        help="run only the named phase(s), e.g. --phase drain",
    )
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    violations = []
    selected = PHASES
    if args.phase:
        wanted = {name.replace("-", "_") for name in args.phase}
        selected = [
            phase for phase in PHASES
            if phase.__name__.replace("phase_", "") in wanted
        ]
        if not selected:
            print(f"no phases match {sorted(wanted)}", file=sys.stderr)
            return 2
    started = time.time()
    for phase_fn in selected:
        name = phase_fn.__name__.replace("phase_", "")
        print(f"[chaos] phase {name} (seed {args.seed})", flush=True)
        try:
            phase_fn(rng, args.quick, violations)
        except Violation as error:
            violations.append(str(error))
            print(f"  VIOLATION: {error}", file=sys.stderr)
    elapsed = time.time() - started
    if violations:
        print(
            f"[chaos] FAILED: {len(violations)} violation(s) in "
            f"{elapsed:.1f}s",
            file=sys.stderr,
        )
        return 1
    print(f"[chaos] all {len(selected)} phase(s) held in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Load generator for the prediction service: the ``service`` bench family.

Boots an ephemeral server (or targets ``--url``), drives ``--clients``
concurrent closed-loop clients through a seeded mix of cache hits and
misses, and reports latency percentiles, shed rate and throughput:

  PYTHONPATH=src python scripts/service_load.py --quick
  PYTHONPATH=src python scripts/service_load.py --merge-into BENCH_7.json

``--merge-into`` grafts the measured block onto an existing
``BENCH_*.json`` artifact as its optional ``service`` family, which the
:mod:`repro.bench.compare` trajectory gate then holds to tolerances
(latency may grow 2.5x, throughput may halve, shed rate may rise 15
points) — enough slack for host noise, not for an accidentally serial
dispatch loop.

Every response must still be terminal (completed / shed / rejected);
a transport error or hung connection fails the run regardless of how
good the percentiles look.

Exit codes: 0 ok, 1 invariant violation or broken server, 2 bad usage.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_BANNER = re.compile(r"listening on http://([^:]+):(\d+)")

#: Fast, distinct configs for the miss side of the mix (sub-second each).
MISS_BENCHES = ("va", "dct", "sr")


def percentile(samples, fraction):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def start_server(store_root, extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.setdefault("REPRO_NO_FSYNC", "1")
    proc = subprocess.Popen(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "scripts", "serve.py"),
            "--port", "0",
            "--store", store_root,
        ]
        + list(extra_args),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError("server exited before listening")
        match = _BANNER.search(line or "")
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise RuntimeError("server never announced its port")


def run_load(host, port, clients, requests_per_client, seed, deadline_s):
    """Drive the mix; return (latencies_ms, status_counts, errors, wall_s)."""
    rng = random.Random(seed)
    plans = []
    for client_index in range(clients):
        plan = []
        for request_index in range(requests_per_client):
            if rng.random() < 0.5:
                # Hit side: a handful of shared keys the whole fleet
                # re-requests — exercises coalescing and the memo path.
                bench = MISS_BENCHES[rng.randrange(len(MISS_BENCHES))]
                run_seed = rng.randrange(3)
            else:
                # Miss side: a key unique to this (client, request) slot.
                bench = MISS_BENCHES[
                    (client_index + request_index) % len(MISS_BENCHES)
                ]
                run_seed = 1000 + client_index * 1000 + request_index
            plan.append(
                {
                    "kind": "sim",
                    "benchmark": bench,
                    "size": 8,
                    "work_scale": 0.25,
                    "seed": run_seed,
                    "deadline_s": deadline_s,
                }
            )
        plans.append(plan)

    latencies_ms = []
    status_counts = {}
    errors = []
    lock = threading.Lock()

    def client(plan):
        for body in plan:
            started = time.perf_counter()
            try:
                conn = http.client.HTTPConnection(host, port, timeout=120)
                try:
                    conn.request("POST", "/predict", json.dumps(body))
                    response = conn.getresponse()
                    payload = json.loads(response.read() or b"{}")
                    status = payload.get("status", f"http-{response.status}")
                finally:
                    conn.close()
            except Exception as error:  # noqa: BLE001 - harness boundary
                with lock:
                    errors.append(repr(error))
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                latencies_ms.append(elapsed_ms)
                status_counts[status] = status_counts.get(status, 0) + 1

    threads = [
        threading.Thread(target=client, args=(plan,)) for plan in plans
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    return latencies_ms, status_counts, errors, wall_s


def build_block(latencies_ms, status_counts, wall_s):
    total = sum(status_counts.values())
    shed = sum(
        count
        for status, count in status_counts.items()
        if status in ("shed", "rejected", "drained")
    )
    return {
        "p50_ms": round(percentile(latencies_ms, 0.50), 3),
        "p95_ms": round(percentile(latencies_ms, 0.95), 3),
        "p99_ms": round(percentile(latencies_ms, 0.99), 3),
        "mean_ms": round(statistics.fmean(latencies_ms), 3)
        if latencies_ms
        else 0.0,
        "throughput_rps": round(total / wall_s, 3) if wall_s > 0 else 0.0,
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "requests": total,
        "statuses": dict(sorted(status_counts.items())),
        "wall_s": round(wall_s, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default=None,
                        help="target an already-running server "
                        "(http://host:port) instead of booting one")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=6,
                        help="requests per client")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--deadline", type=float, default=60.0,
                        help="per-request deadline_s sent to the server")
    parser.add_argument("--quick", action="store_true",
                        help="4 clients x 3 requests (CI tier)")
    parser.add_argument("--merge-into", default=None,
                        help="graft the service block onto this "
                        "BENCH_*.json artifact")
    parser.add_argument("--out", default=None,
                        help="also write the raw block to this path")
    args = parser.parse_args(argv)

    clients = 4 if args.quick else args.clients
    requests_per_client = 3 if args.quick else args.requests

    proc = None
    tmp = None
    if args.url:
        match = re.match(r"https?://([^:/]+):(\d+)", args.url)
        if not match:
            print(f"--url must look like http://host:port, got {args.url!r}",
                  file=sys.stderr)
            return 2
        host, port = match.group(1), int(match.group(2))
    else:
        tmp = tempfile.mkdtemp(prefix="svc-load-")
        proc, host, port = start_server(
            os.path.join(tmp, "results", "simcache"),
            ["--workers-min", "2", "--workers-max", "4"],
        )

    try:
        latencies_ms, status_counts, errors, wall_s = run_load(
            host, port, clients, requests_per_client, args.seed,
            args.deadline,
        )
    finally:
        if proc is not None and proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            proc.stdout.read()

    if errors:
        print(f"[load] FAILED: {len(errors)} transport error(s): "
              f"{errors[:3]}", file=sys.stderr)
        return 1
    expected = clients * requests_per_client
    total = sum(status_counts.values())
    if total != expected:
        print(f"[load] FAILED: {expected} requests sent, {total} answered",
              file=sys.stderr)
        return 1
    unknown = [
        status for status in status_counts
        if status not in ("completed", "failed", "shed", "rejected", "drained")
    ]
    if unknown:
        print(f"[load] FAILED: non-terminal statuses {unknown} "
              f"(counts: {status_counts})", file=sys.stderr)
        return 1

    block = build_block(latencies_ms, status_counts, wall_s)
    print(json.dumps({"service": block}, indent=2, sort_keys=True))

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(block, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.merge_into:
        with open(args.merge_into) as handle:
            document = json.load(handle)
        document["service"] = {
            key: value
            for key, value in block.items()
            if key not in ("statuses",)
        }
        with open(args.merge_into, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"[load] merged service block into {args.merge_into}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Final verification sequence: full test suite, full benchmark harness
# (assertions + timings), and the deliverable output files.
set -u
cd "$(dirname "$0")/.."

echo "== tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== benchmark harness (assertions) =="
python -m pytest benchmarks/ -p no:cacheprovider 2>&1 | tee bench_assertions.txt | tail -2

echo "== benchmark harness (--benchmark-only) =="
python -m pytest benchmarks/ --benchmark-only -p no:cacheprovider 2>&1 | tee bench_output.txt | tail -4

#!/usr/bin/env python3
"""Checkpoint kill/resume smoke check (used by CI, runnable locally).

Kills a multi-kernel simulation right after its first kernel-boundary
snapshot becomes durable (via the ``die-at-kernel`` fault-injection
directive), retries it, and verifies that

* the retry resumed from the snapshot (store stats record it), and
* the resumed result is bit-identical to an uninterrupted run
  (``wall_time_s``, a host-time measurement, excluded).

Exits 0 on success, 1 with a diagnostic otherwise.  Arms
``REPRO_FAULT_INJECT=die-at-kernel:sim|btree:1`` itself unless the
environment already provides a plan.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import sys
import tempfile

from repro.analysis.faults import FAULT_INJECT_ENV, InjectedFaultError
from repro.analysis.runner import CachedRunner
from repro.checkpoint import CheckpointPolicy
from repro.workloads import STRONG_SCALING

# Strong-scaling btree at a reduced work scale: the cheapest catalog
# workload with more than one kernel, i.e. with a checkpoint boundary.
SPEC = STRONG_SCALING["btree"]
SIZE = 8
WORK_SCALE = 0.25


def payload(result) -> dict:
    record = dataclasses.asdict(result)
    record.pop("wall_time_s")
    return record


def main() -> int:
    os.environ.setdefault(FAULT_INJECT_ENV, "die-at-kernel:sim|btree:1")
    # Baseline without a checkpoint policy: the kill hook only arms
    # through a checkpointer, so this run is uninterrupted.
    baseline = payload(
        CachedRunner(None, checkpoint=None).simulate(
            SPEC, SIZE, work_scale=WORK_SCALE
        )
    )
    root = tempfile.mkdtemp(prefix="checkpoint-smoke-")
    try:
        runner = CachedRunner(
            None, checkpoint=CheckpointPolicy(root=root)
        )
        try:
            runner.simulate(SPEC, SIZE, work_scale=WORK_SCALE)
        except InjectedFaultError:
            print("run killed after its first kernel-boundary snapshot")
        else:
            print("FAIL: fault injection never fired")
            return 1
        resumed = payload(runner.simulate(SPEC, SIZE, work_scale=WORK_SCALE))
        stats = runner.stats()
        if stats["checkpoints_resumed"] != 1:
            print(f"FAIL: expected exactly 1 resume; stats={stats}")
            return 1
        if resumed != baseline:
            print("FAIL: resumed result differs from the uninterrupted run")
            return 1
        print(
            "resume OK: bit-identical result, "
            f"{stats['cycles_saved']:.0f} simulated cycles saved"
        )
        print(runner.execution_health())
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI smoke for the prediction service: boot, serve, drain, survive.

The minimum end-to-end story a deploy must tell, against a real
``scripts/serve.py`` subprocess over real HTTP:

1. the server announces its port and ``/readyz`` turns 200;
2. a cold ``/predict`` completes with a fresh run (``cached: false``);
3. the same request again is a cache hit — verified twice: the
   response says ``cached: true`` AND ``/statsz`` shows the store hit;
4. SIGTERM lands *while a request is in flight*: the client still gets
   its 200, the process exits 75 (EX_TEMPFAIL: drained, rerun to
   resume), and the in-flight result is durable in the store.

Usage:
  PYTHONPATH=src python scripts/service_smoke.py

Exit codes: 0 smoke passed, 1 any step failed.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_BANNER = re.compile(r"listening on http://([^:]+):(\d+)")

BODY = {
    "kind": "sim",
    "benchmark": "va",
    "size": 8,
    "work_scale": 0.25,
    "seed": 0,
    "deadline_s": 60,
}
#: Distinct config for the drain step so it cannot be a cache hit.
DRAIN_BODY = dict(BODY, benchmark="sr", work_scale=0.5, seed=1)


def fail(message: str) -> "NoReturn":  # noqa: F821 - py<3.11 spelling
    print(f"[service-smoke] FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def start_server(store_root: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env.setdefault("REPRO_NO_FSYNC", "1")
    proc = subprocess.Popen(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "scripts", "serve.py"),
            "--port", "0",
            "--store", store_root,
            "--workers-min", "1",
            "--workers-max", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            fail("server exited before listening")
        match = _BANNER.search(line or "")
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    fail("server never announced its port")


def request(host, port, body, path="/predict", method="POST", timeout=120):
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def main() -> int:
    tmp = tempfile.mkdtemp(prefix="service-smoke-")
    store_root = os.path.join(tmp, "results", "simcache")
    proc, host, port = start_server(store_root)
    print(f"[service-smoke] server up at {host}:{port} (pid {proc.pid})")
    try:
        # 1. readiness turns 200 within a bounded poll.
        deadline = time.time() + 15
        while True:
            try:
                status, _ = request(host, port, None, "/readyz", "GET",
                                    timeout=2)
                if status == 200:
                    break
            except OSError:
                pass
            if time.time() > deadline:
                fail("/readyz never turned 200")
            time.sleep(0.1)
        print("[service-smoke] ready")

        # 2. cold predict: a fresh run.
        status, data = request(host, port, BODY)
        if status != 200 or data.get("status") != "completed":
            fail(f"cold predict: expected 200 completed, got {status} {data}")
        if data.get("cached"):
            fail("cold predict claims to be a cache hit on an empty store")
        key = data["key"]
        print(f"[service-smoke] cold completed in {data['latency_ms']}ms")

        # 3. warm repeat: cached per the response AND per /statsz.
        hits_before = request(host, port, None, "/statsz", "GET")[1][
            "store"]["hits"]
        status, data = request(host, port, BODY)
        if status != 200 or not data.get("cached"):
            fail(f"warm predict: expected a cache hit, got {status} {data}")
        if data["key"] != key:
            fail(f"warm predict answered a different key: {data['key']}")
        hits_after = request(host, port, None, "/statsz", "GET")[1][
            "store"]["hits"]
        if hits_after <= hits_before:
            fail(
                f"/statsz store hits did not grow ({hits_before} -> "
                f"{hits_after}); the warm answer was not served by the store"
            )
        print(f"[service-smoke] warm hit ({hits_before} -> {hits_after})")

        # 4. SIGTERM mid-request: the in-flight run is answered and
        #    durable, and the exit code says "drained".
        result_box = {}

        def fire():
            result_box["response"] = request(host, port, DRAIN_BODY)

        client = threading.Thread(target=fire)
        client.start()
        time.sleep(0.7)  # into the run, before it completes
        proc.send_signal(signal.SIGTERM)
        client.join(timeout=120)
        if client.is_alive():
            fail("in-flight request never answered after SIGTERM")
        code = proc.wait(timeout=60)
        status, data = result_box["response"]
        if status != 200 or data.get("status") != "completed":
            fail(
                "in-flight request should complete through the drain, got "
                f"{status} {data}"
            )
        if code != 75:
            fail(f"drain exit code was {code}, expected 75")

        shard = os.path.join(store_root, "sr.jsonl")
        if not os.path.exists(shard):
            fail(f"drained result shard {shard} does not exist")
        keys = set()
        with open(shard) as handle:
            for line in handle:
                if line.strip():
                    keys.add(json.loads(line).get("key"))
        if data["key"] not in keys:
            fail(
                f"in-flight result {data['key']} not durable in {shard} "
                f"(found {sorted(keys)})"
            )
        print("[service-smoke] drain ok: 200 mid-SIGTERM, exit 75, "
              "result durable")
        print("[service-smoke] PASSED")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Calibration sweep: simulate benchmarks across system sizes and check
that each reproduces its published scaling class (Table II / Table IV).

Usage:
    python scripts/calibrate.py [abbr ...] [--weak] [--sizes 8,16,32,64,128]

Prints IPC at every size, doubling ratios, the measured class and the
expected class.  This is the tool used to tune generator parameters in
``repro/workloads/catalog.py``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.gpu import GPUConfig, simulate
from repro.workloads import STRONG_SCALING, WEAK_SCALING, build_trace
from repro.analysis.classify import classify_scaling


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*", help="abbrs (default: all)")
    parser.add_argument("--weak", action="store_true", help="weak scaling")
    parser.add_argument("--sizes", default="8,16,32,64,128")
    args = parser.parse_args(argv)

    table = WEAK_SCALING if args.weak else STRONG_SCALING
    names = args.benchmarks or list(table)
    sizes = [int(s) for s in args.sizes.split(",")]
    base = min(sizes)

    bad = 0
    for abbr in names:
        spec = table[abbr]
        ipcs = {}
        row = []
        for nsm in sizes:
            cfg = GPUConfig.paper_system(nsm)
            w = nsm / base if args.weak else 1.0
            wl = build_trace(spec, work_scale=w)
            t0 = time.perf_counter()
            r = simulate(cfg, wl)
            ipcs[nsm] = r.ipc
            row.append(
                f"{nsm}SM:{r.ipc:7.1f} f={r.memory_stall_fraction:.2f} "
                f"m={r.mpki:5.2f} ({time.perf_counter()-t0:.1f}s)"
            )
        ratios = [ipcs[b] / ipcs[a] for a, b in zip(sizes, sizes[1:])]
        measured = classify_scaling([ipcs[s] for s in sizes], sizes)
        expected = spec.weak_scaling if args.weak else spec.scaling
        ok = measured == expected
        bad += 0 if ok else 1
        flag = "OK " if ok else "BAD"
        print(f"[{flag}] {abbr:6s} expected={expected.value:12s} "
              f"measured={measured.value:12s} "
              f"ratios={['%.2f' % x for x in ratios]}")
        for line in row:
            print("        " + line)
    print(f"\n{bad} misclassified of {len(names)}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Prediction-accuracy calibration: per-benchmark, per-method errors for
the strong-scaling scenario (the Figure 4 experiment), using the cached
runner so repeated invocations only re-simulate what changed.

Usage: python scripts/accuracy.py [abbr ...] [--target 128] [--no-cache]
                                  [--jobs N] [--max-retries R]
                                  [--run-timeout S] [--keep-going]
                                  [--checkpoint-interval N]
                                  [--checkpoint-dir DIR] [--no-resume]
                                  [--trace-out T.json] [--metrics-out M.json]
                                  [--log-format human|json]
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.faults import ExecutionPolicy
from repro.analysis.parallel import RunRequest
from repro.analysis.runner import (
    CachedRunner,
    DEFAULT_CACHE,
    default_checkpoint_policy,
    default_jobs,
)
from repro.checkpoint import default_checkpoint_interval, parse_checkpoint_interval
from repro.core import METHOD_NAMES, ScaleModelPredictor, ScaleModelProfile
from repro.core.baselines import make_predictor
from repro.exceptions import ReproError, ShutdownRequested
from repro.obs import bootstrap
from repro.resilience import (
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    apply_memory_limit,
    install_shutdown_handlers,
    preflight_disk,
)
from repro.verify.runtime import arm_from_flag
from repro.workloads import STRONG_SCALING


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*")
    parser.add_argument("--targets", default="64,128")
    parser.add_argument("--scales", default="8,16")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--max-retries", type=int, default=None,
                        help="re-executions of a failed run (default 2)")
    parser.add_argument("--run-timeout", type=float, default=None,
                        help="per-run watchdog timeout in seconds")
    parser.add_argument("--keep-going", action="store_true",
                        help="skip benchmarks whose runs fail; exit 1 "
                             "with a failure summary")
    parser.add_argument("--retry-quarantined", action="store_true",
                        help="re-attempt configs the per-config circuit "
                             "breaker would skip (see results/failures/)")
    # Parsed tolerantly (warn + default on garbage), so no type=int here.
    parser.add_argument("--checkpoint-interval", default=None,
                        help="kernel boundaries between mid-run snapshots "
                             "(0 disables; default: "
                             "REPRO_CHECKPOINT_INTERVAL or 1)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="snapshot directory "
                             "(default: results/checkpoints)")
    parser.add_argument("--no-resume", action="store_true",
                        help="keep writing checkpoints but always start "
                             "runs cold")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome trace_event JSON of the run")
    parser.add_argument("--metrics-out", default=None,
                        help="write the metrics snapshot as JSON")
    parser.add_argument("--log-format", choices=("human", "json"),
                        default=None,
                        help="stderr diagnostics format (default human)")
    parser.add_argument("--verify", action="store_true",
                        help="paranoia mode: assert engine/model "
                             "invariants at every kernel boundary and "
                             "event-queue operation (equivalent to "
                             "REPRO_VERIFY=1; workers inherit it)")
    args = parser.parse_args(argv)
    obs = bootstrap(args.trace_out, args.metrics_out, args.log_format)
    coordinator = install_shutdown_handlers()
    coordinator.reset()
    apply_memory_limit()
    arm_from_flag(args.verify)

    jobs = args.jobs if args.jobs is not None else default_jobs()
    defaults = ExecutionPolicy()
    policy = ExecutionPolicy(
        max_retries=(
            defaults.max_retries
            if args.max_retries is None
            else args.max_retries
        ),
        run_timeout=args.run_timeout,
        keep_going=args.keep_going,
        retry_quarantined=args.retry_quarantined,
    )
    checkpoint = default_checkpoint_policy(
        None if args.no_cache else DEFAULT_CACHE,
        interval=parse_checkpoint_interval(
            args.checkpoint_interval, default_checkpoint_interval()
        ),
        resume=not args.no_resume,
        root=args.checkpoint_dir,
    )
    runner = CachedRunner(
        None if args.no_cache else DEFAULT_CACHE, jobs=jobs, policy=policy,
        checkpoint=checkpoint,
    )
    preflight_disk(
        runner.store.root,
        runner.manifest.root,
        runner.checkpoint.root if runner.checkpoint else None,
    )
    names = args.benchmarks or list(STRONG_SCALING)
    targets = [int(t) for t in args.targets.split(",")]
    scales = [int(s) for s in args.scales.split(",")]

    per_method = {m: [] for m in METHOD_NAMES}
    failed = []
    interrupted = None
    try:
        runner.prefetch(
            [
                RunRequest("sim", STRONG_SCALING[abbr], size=n)
                for abbr in names
                for n in scales + targets
            ]
            + [RunRequest("mrc", STRONG_SCALING[abbr]) for abbr in names]
        )
        for abbr in names:
            spec = STRONG_SCALING[abbr]
            try:
                sims = {n: runner.simulate(spec, n) for n in scales + targets}
                curve = runner.miss_rate_curve(spec)
            except ReproError as error:
                if not args.keep_going:
                    raise
                failed.append(abbr)
                print(f"{abbr:6s} [skipped: {error}]")
                continue
            profile = ScaleModelProfile(
                workload=abbr,
                sizes=tuple(scales),
                ipcs=tuple(sims[n].ipc for n in scales),
                f_mem=sims[max(scales)].memory_stall_fraction,
                curve=curve,
            )
            predictor = ScaleModelPredictor(profile)
            row = [f"{abbr:6s} [{spec.scaling.value:12s}]"]
            for t in targets:
                actual = sims[t].ipc
                errs = {}
                for m in METHOD_NAMES:
                    if m == "scale-model":
                        pred = predictor.predict(t).ipc
                    else:
                        pred = make_predictor(m).fit(profile.sizes, profile.ipcs).predict(t)
                    errs[m] = abs(pred - actual) / actual
                    per_method[m].append(errs[m])
                row.append(
                    f"T{t}: " + " ".join(f"{m[:4]}={100*errs[m]:5.1f}%" for m in METHOD_NAMES)
                )
            region = predictor._region_of(targets[-1]).value if curve else "?"
            print("  ".join(row) + f"  region@{targets[-1]}={region}")
    except (ShutdownRequested, KeyboardInterrupt) as stop:
        interrupted = stop
        print(
            f"interrupted: {stop} — completed results are saved; rerun "
            f"the same command to resume (exit code {EXIT_INTERRUPTED})",
            file=sys.stderr,
        )

    scored = len(names) - len(failed)
    print("\n--- averages over", scored, "benchmarks x", len(targets), "targets")
    for m in METHOD_NAMES:
        errs = per_method[m]
        if not errs:
            continue
        print(f"{m:12s} avg={100*sum(errs)/len(errs):6.1f}%  max={100*max(errs):6.1f}%")
    runner.flush()
    print(runner.execution_health())
    obs.finalize(extra_metrics={"runner": runner.metrics})
    if interrupted is not None:
        return EXIT_INTERRUPTED
    if failed:
        print(f"completed with failures: {', '.join(failed)}", file=sys.stderr)
        return EXIT_FAILURES
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

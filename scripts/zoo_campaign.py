#!/usr/bin/env python3
"""Generative workload-zoo campaign: per-regime accuracy on generated specs.

Draws a seeded, stratified batch of grammar-generated workloads
(:mod:`repro.zoo`), sweeps each across system sizes through the cached
runner, classifies the measured scaling regime, scores the scale-model
prediction against the detailed engine at the target size, and writes a
schema-versioned campaign artifact with per-regime MAPE, the
intended-versus-measured regime-confusion matrix and coverage stats.
Re-running with the same seed reproduces the same spec digests bit for
bit.

The campaign is journaled (:mod:`repro.campaign`): every workload
outcome is sealed durably under ``--journal-dir`` as it lands, so a
crash, kill, SIGTERM drain, or ``--max-wall``/``--max-workloads``
budget stop never discards completed work — re-running the same plan
resumes where it died and converges to the uninterrupted artifact.

Usage:
  python scripts/zoo_campaign.py --quick --seed 9          # CI-sized run
  python scripts/zoo_campaign.py --n 24 --seed 3 --jobs 8
  python scripts/zoo_campaign.py --n 200 --max-wall 3600   # budgeted slice
  python scripts/zoo_campaign.py --validate-only ZOO_CAMPAIGN.json
  python scripts/zoo_campaign.py --report-only ZOO_CAMPAIGN.json

Exit codes: 0 ok, 1 campaign unusable (no surviving workloads),
2 schema-invalid artifact or operator error, 75 interrupted/budget-
stopped but resumable (rerun the same command to continue), 128+signum
on a second, forcing signal.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro.analysis.faults import ExecutionPolicy
from repro.analysis.runner import CachedRunner, default_jobs
from repro.campaign import CampaignBudget, CampaignJournal
from repro.exceptions import (
    CampaignError,
    CampaignIncomplete,
    ReproError,
    ShutdownRequested,
)
from repro.fsio import atomic_write_text
from repro.resilience import (
    EXIT_INTERRUPTED,
    apply_memory_limit,
    install_shutdown_handlers,
)
from repro.zoo import (
    CampaignPlan,
    plan_payload,
    render_campaign,
    run_campaign,
    validate_campaign_artifact,
)
from repro.zoo.campaign import ZOO_ARTIFACT_KIND

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_INVALID = 2

#: The --quick preset: a CI-sized stratified mini-campaign.
_QUICK_N = 12

#: Default home for campaign progress journals.
_JOURNAL_DIR = os.path.join("results", "campaigns")


def _load_artifact(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _validate(path: str, document: dict) -> bool:
    problems = validate_campaign_artifact(document)
    if problems:
        print(f"{path}: artifact is not schema-valid:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return False
    return True


def _write_artifact(path: str, document: dict) -> None:
    out_dir = os.path.dirname(path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=24,
                        help="generated workloads to draw, dealt round-robin "
                             "across the regimes (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed; fixes every spec digest and "
                             "simulation (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI preset: {_QUICK_N} workloads on the small "
                             "size sweep")
    parser.add_argument("--scales", type=int, nargs="+", default=[8, 16],
                        help="profile sizes the scale model fits at "
                             "(default: %(default)s)")
    parser.add_argument("--target", type=int, default=32,
                        help="size the model predicts and the engine "
                             "verifies (default: %(default)s)")
    parser.add_argument("--work-scale", type=float, default=1.0,
                        help="workload miniaturization factor "
                             "(default: %(default)s)")
    parser.add_argument("--sample-scale", type=float, default=1.0,
                        help="CTA-count cost knob for the sampler "
                             "(default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for the sweep (default 0 = "
                             "one per available core)")
    parser.add_argument("--out", default="ZOO_CAMPAIGN.json",
                        help="artifact path (default: %(default)s)")
    parser.add_argument("--cache-dir", default=None,
                        help="simulation cache directory (default: a fresh "
                             "temp dir, removed afterwards)")
    parser.add_argument("--journal-dir", default=_JOURNAL_DIR,
                        help="campaign journal root; completed workloads are "
                             "sealed here and reused on resume "
                             "(default: %(default)s)")
    parser.add_argument("--no-journal", action="store_true",
                        help="run without a progress journal (no resume; "
                             "a crash discards the whole campaign)")
    parser.add_argument("--no-resume", action="store_true",
                        help="discard any existing journal for this plan "
                             "and start the campaign from scratch")
    parser.add_argument("--max-wall", type=float, default=None, metavar="S",
                        help="wall-clock budget in seconds for this "
                             "invocation; on expiry the campaign stops at a "
                             "workload boundary with a resumable partial "
                             "artifact (exit 75)")
    parser.add_argument("--max-workloads", type=int, default=None, metavar="K",
                        help="cap on total completed workloads (journal-"
                             "reused ones included); exceeding it stops with "
                             "a resumable partial artifact (exit 75)")
    parser.add_argument("--validate-only", metavar="ARTIFACT", default=None,
                        help="schema-validate an existing artifact and exit "
                             "(no simulations run)")
    parser.add_argument("--report-only", metavar="ARTIFACT", default=None,
                        help="render an existing artifact's report and exit "
                             "(no simulations run)")
    args = parser.parse_args(argv)

    if args.validate_only:
        document = _load_artifact(args.validate_only)
        if not _validate(args.validate_only, document):
            return EXIT_INVALID
        accuracy = document["accuracy"]
        partial = document.get("partial")
        note = (
            f", PARTIAL: {partial['reason']}, "
            f"{partial['remaining']} workloads remaining" if partial else ""
        )
        print(
            f"{args.validate_only}: schema-valid "
            f"({accuracy['count']} workloads, "
            f"MAPE {accuracy['mape_pct']:.2f}%{note})"
        )
        return EXIT_OK

    if args.report_only:
        document = _load_artifact(args.report_only)
        if not _validate(args.report_only, document):
            return EXIT_INVALID
        print(render_campaign(document), end="")
        return EXIT_OK

    install_shutdown_handlers().reset()
    apply_memory_limit()

    plan = CampaignPlan(
        n=_QUICK_N if args.quick else args.n,
        seed=args.seed,
        scales=tuple(args.scales),
        target=args.target,
        work_scale=args.work_scale,
        sample_scale=args.sample_scale,
    )
    budget = CampaignBudget(
        max_wall_s=args.max_wall, max_workloads=args.max_workloads
    )
    journal = None
    if not args.no_journal:
        if args.no_resume:
            if CampaignJournal.discard(
                args.journal_dir, ZOO_ARTIFACT_KIND, plan_payload(plan)
            ):
                print("discarded existing journal for this plan")
        try:
            journal = CampaignJournal.open(
                args.journal_dir,
                ZOO_ARTIFACT_KIND,
                plan_payload(plan),
                created_unix=time.time(),
            )
        except CampaignError as error:
            print(f"journal error: {error}", file=sys.stderr)
            return EXIT_INVALID
        if journal.completed:
            counts = journal.statuses()
            print(
                f"journal {journal.digest}: {len(journal.completed)} "
                f"workload(s) already sealed ({counts['ok']} ok, "
                f"{counts['failed']} failed)"
            )

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    cache_dir = args.cache_dir
    temp_cache = cache_dir is None
    if temp_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-zoo-")
    try:
        # keep_going: one pathological generated workload is a recorded
        # casualty (manifest + breaker), never the whole campaign.
        runner = CachedRunner(
            os.path.join(cache_dir, "simcache"),
            jobs=jobs,
            policy=ExecutionPolicy(keep_going=True),
        )
        try:
            document = run_campaign(
                plan, runner, log=print, journal=journal, budget=budget
            )
        except CampaignIncomplete as error:
            print(f"campaign interrupted: {error}", file=sys.stderr)
            return EXIT_INTERRUPTED
        except ShutdownRequested as error:
            print(f"campaign drained: {error}", file=sys.stderr)
            return EXIT_INTERRUPTED
        except ReproError as error:
            print(f"campaign failed: {error}", file=sys.stderr)
            return EXIT_FAILED
    finally:
        if temp_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)

    if not _validate(args.out, document):
        return EXIT_INVALID
    _write_artifact(args.out, document)
    print(f"wrote {args.out}")
    print()
    print(render_campaign(document), end="")
    partial = document.get("partial")
    if partial:
        print(
            f"PARTIAL artifact ({partial['reason']}): "
            f"{partial['completed']} of {partial['planned']} workloads "
            f"completed; rerun the same command to resume"
        )
        return EXIT_INTERRUPTED
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Generative workload-zoo campaign: per-regime accuracy on generated specs.

Draws a seeded, stratified batch of grammar-generated workloads
(:mod:`repro.zoo`), sweeps each across system sizes through the cached
runner, classifies the measured scaling regime, scores the scale-model
prediction against the detailed engine at the target size, and writes a
schema-versioned campaign artifact with per-regime MAPE, the
intended-versus-measured regime-confusion matrix and coverage stats.
Re-running with the same seed reproduces the same spec digests bit for
bit.

Usage:
  python scripts/zoo_campaign.py --quick --seed 9          # CI-sized run
  python scripts/zoo_campaign.py --n 24 --seed 3 --jobs 8
  python scripts/zoo_campaign.py --validate-only ZOO_CAMPAIGN.json
  python scripts/zoo_campaign.py --report-only ZOO_CAMPAIGN.json

Exit codes: 0 ok, 1 campaign unusable (no surviving workloads),
2 schema-invalid artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile

from repro.analysis.runner import CachedRunner, default_jobs
from repro.exceptions import ReproError
from repro.fsio import atomic_write_text
from repro.resilience import apply_memory_limit, install_shutdown_handlers
from repro.zoo import (
    CampaignPlan,
    render_campaign,
    run_campaign,
    validate_campaign_artifact,
)

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_INVALID = 2

#: The --quick preset: a CI-sized stratified mini-campaign.
_QUICK_N = 12


def _load_artifact(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _validate(path: str, document: dict) -> bool:
    problems = validate_campaign_artifact(document)
    if problems:
        print(f"{path}: artifact is not schema-valid:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=24,
                        help="generated workloads to draw, dealt round-robin "
                             "across the regimes (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed; fixes every spec digest and "
                             "simulation (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help=f"CI preset: {_QUICK_N} workloads on the small "
                             "size sweep")
    parser.add_argument("--scales", type=int, nargs="+", default=[8, 16],
                        help="profile sizes the scale model fits at "
                             "(default: %(default)s)")
    parser.add_argument("--target", type=int, default=32,
                        help="size the model predicts and the engine "
                             "verifies (default: %(default)s)")
    parser.add_argument("--work-scale", type=float, default=1.0,
                        help="workload miniaturization factor "
                             "(default: %(default)s)")
    parser.add_argument("--sample-scale", type=float, default=1.0,
                        help="CTA-count cost knob for the sampler "
                             "(default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="worker processes for the sweep (default 0 = "
                             "one per available core)")
    parser.add_argument("--out", default="ZOO_CAMPAIGN.json",
                        help="artifact path (default: %(default)s)")
    parser.add_argument("--cache-dir", default=None,
                        help="simulation cache directory (default: a fresh "
                             "temp dir, removed afterwards)")
    parser.add_argument("--validate-only", metavar="ARTIFACT", default=None,
                        help="schema-validate an existing artifact and exit "
                             "(no simulations run)")
    parser.add_argument("--report-only", metavar="ARTIFACT", default=None,
                        help="render an existing artifact's report and exit "
                             "(no simulations run)")
    args = parser.parse_args(argv)

    if args.validate_only:
        document = _load_artifact(args.validate_only)
        if not _validate(args.validate_only, document):
            return EXIT_INVALID
        accuracy = document["accuracy"]
        print(
            f"{args.validate_only}: schema-valid "
            f"({accuracy['count']} workloads, "
            f"MAPE {accuracy['mape_pct']:.2f}%)"
        )
        return EXIT_OK

    if args.report_only:
        document = _load_artifact(args.report_only)
        if not _validate(args.report_only, document):
            return EXIT_INVALID
        print(render_campaign(document), end="")
        return EXIT_OK

    install_shutdown_handlers().reset()
    apply_memory_limit()

    plan = CampaignPlan(
        n=_QUICK_N if args.quick else args.n,
        seed=args.seed,
        scales=tuple(args.scales),
        target=args.target,
        work_scale=args.work_scale,
        sample_scale=args.sample_scale,
    )
    jobs = args.jobs if args.jobs > 0 else default_jobs()
    cache_dir = args.cache_dir
    temp_cache = cache_dir is None
    if temp_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-zoo-")
    try:
        runner = CachedRunner(os.path.join(cache_dir, "simcache"), jobs=jobs)
        try:
            document = run_campaign(plan, runner, log=print)
        except ReproError as error:
            print(f"campaign failed: {error}", file=sys.stderr)
            return EXIT_FAILED
    finally:
        if temp_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)

    if not _validate(args.out, document):
        return EXIT_INVALID
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    atomic_write_text(
        args.out, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    print()
    print(render_campaign(document), end="")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Campaign-resilience chaos harness: kill the driver, prove nothing is lost.

Drives the *real* ``scripts/zoo_campaign.py`` as a subprocess through
the failure modes long sweeps actually die from, and asserts the
:mod:`repro.campaign` contract after each one:

* **kill -9 at seeded points** — ``REPRO_CAMPAIGN_KILL_AFTER=<k>``
  SIGKILLs the driver the instant its *k*-th workload record becomes
  durable.  The journal must attach cleanly (sealed header intact,
  exactly ``k`` units, zero corrupt lines), and re-invoking the same
  plan must re-simulate **zero** completed workloads and converge to an
  artifact bit-identical (wall-time fields scrubbed) to an
  uninterrupted reference run.
* **torn trailing line** — garbage appended to the journal (a crash
  mid-append) must cost nothing: resume skips the torn line and still
  converges.
* **SIGTERM drain** — a mid-campaign SIGTERM must exit 75 and leave a
  schema-valid artifact with a ``partial`` block; resume converges.
* **workload budget** — ``--max-workloads`` must stop at exit 75 with a
  schema-valid partial artifact whose confusion-matrix cells sum to the
  completed count; resume converges.

Usage:
  PYTHONPATH=src python scripts/campaign_chaos.py --quick   # CI smoke
  PYTHONPATH=src python scripts/campaign_chaos.py           # full sweep

Exit codes: 0 all trials passed, 1 contract violation, 2 harness error.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.campaign import CampaignJournal, first_artifact_divergence
from repro.exceptions import CampaignError
from repro.zoo import CampaignPlan, plan_payload, validate_campaign_artifact
from repro.zoo.campaign import ZOO_ARTIFACT_KIND

_DRIVER = os.path.join(os.path.dirname(__file__), "zoo_campaign.py")

#: Chaos plan: small enough that every trial re-runs in seconds, large
#: enough that every kill point leaves both sealed and unsealed units.
_N = 4
_SEED = 9
_WORK_SCALE = 0.25

EXIT_INTERRUPTED = 75


class ContractViolation(AssertionError):
    pass


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ContractViolation(message)


def _plan() -> CampaignPlan:
    return CampaignPlan(n=_N, seed=_SEED, work_scale=_WORK_SCALE)


def _command(journal_dir: str, out: str, extra=()) -> list:
    return [
        sys.executable, "-u", _DRIVER,
        "--n", str(_N), "--seed", str(_SEED),
        "--work-scale", str(_WORK_SCALE),
        "--jobs", "1",
        "--journal-dir", journal_dir,
        "--out", out,
        *extra,
    ]


def _run(command, env_extra=None, timeout=600):
    env = dict(os.environ)
    env.setdefault(
        "PYTHONPATH",
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        command, env=env, timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _executed_workloads(output: str) -> int:
    """Workloads this invocation actually simulated (not journal-reused):
    one progress line per measured or failed spec."""
    return sum(
        1
        for line in output.splitlines()
        if line.startswith("  z") and ("measured=" in line or "FAILED" in line)
    )


def _attach_journal(journal_dir: str) -> CampaignJournal:
    return CampaignJournal.open(
        journal_dir, ZOO_ARTIFACT_KIND, plan_payload(_plan()),
        created_unix=time.time(),
    )


def _load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _require_valid(path: str) -> dict:
    document = _load(path)
    problems = validate_campaign_artifact(document)
    _require(not problems, f"{path} is not schema-valid: {problems[:3]}")
    return document


def _require_converged(path: str, reference: dict, what: str) -> None:
    divergence = first_artifact_divergence(_load(path), reference)
    _require(
        divergence is None,
        f"{what}: resumed artifact diverged from the uninterrupted "
        f"reference — {divergence.describe() if divergence else ''}",
    )


def _reference(workdir: str) -> dict:
    """The uninterrupted run every chaos trial must converge to."""
    out = os.path.join(workdir, "REFERENCE.json")
    result = _run(_command(os.path.join(workdir, "ref-journal"), out))
    _require(
        result.returncode == 0,
        f"reference run failed (exit {result.returncode}):\n{result.stdout}",
    )
    return _require_valid(out)


def _trial_kill(workdir: str, reference: dict, kill_after: int) -> None:
    """kill -9 after the kill_after-th durable journal append, resume."""
    journal_dir = os.path.join(workdir, f"kill{kill_after}-journal")
    out = os.path.join(workdir, f"KILL{kill_after}.json")
    killed = _run(
        _command(journal_dir, out),
        env_extra={"REPRO_CAMPAIGN_KILL_AFTER": str(kill_after)},
    )
    _require(
        killed.returncode == -signal.SIGKILL,
        f"kill@{kill_after}: expected SIGKILL death, got exit "
        f"{killed.returncode}:\n{killed.stdout}",
    )
    _require(not os.path.exists(out), f"kill@{kill_after}: artifact written "
             "by a killed campaign")

    # Journal integrity: sealed header attaches, exactly kill_after units
    # are sealed, nothing corrupt.
    journal = _attach_journal(journal_dir)
    _require(
        len(journal.completed) == kill_after,
        f"kill@{kill_after}: journal holds {len(journal.completed)} sealed "
        f"units, expected {kill_after}",
    )
    _require(
        journal.corrupt_lines == 0,
        f"kill@{kill_after}: journal has {journal.corrupt_lines} corrupt "
        "lines after a post-append kill",
    )

    resumed = _run(_command(journal_dir, out))
    _require(
        resumed.returncode == 0,
        f"kill@{kill_after}: resume failed (exit {resumed.returncode}):\n"
        f"{resumed.stdout}",
    )
    reused = f"resume: reused {kill_after} of {_N} workload(s)"
    _require(
        reused in resumed.stdout,
        f"kill@{kill_after}: resume did not report '{reused}'",
    )
    executed = _executed_workloads(resumed.stdout)
    _require(
        executed == _N - kill_after,
        f"kill@{kill_after}: resume re-simulated completed work — "
        f"executed {executed} workloads, expected {_N - kill_after}",
    )
    _require_valid(out)
    _require_converged(out, reference, f"kill@{kill_after}")
    print(f"  kill@{kill_after}: journal intact, {kill_after} reused, "
          f"{executed} executed, artifact converged")


def _trial_torn_line(workdir: str, reference: dict) -> None:
    """A crash mid-append tears the trailing line; resume shrugs it off."""
    journal_dir = os.path.join(workdir, "torn-journal")
    out = os.path.join(workdir, "TORN.json")
    killed = _run(
        _command(journal_dir, out),
        env_extra={"REPRO_CAMPAIGN_KILL_AFTER": "2"},
    )
    _require(
        killed.returncode == -signal.SIGKILL,
        f"torn: setup kill failed (exit {killed.returncode})",
    )
    journal = _attach_journal(journal_dir)
    with open(journal.path, "a") as handle:
        handle.write('{"type": "workload", "unit": "zdeadbeef", "status"')
    resumed = _run(_command(journal_dir, out))
    _require(
        resumed.returncode == 0,
        f"torn: resume failed (exit {resumed.returncode}):\n{resumed.stdout}",
    )
    _require(
        _executed_workloads(resumed.stdout) == _N - 2,
        "torn: torn trailing line cost sealed workloads",
    )
    _require_valid(out)
    _require_converged(out, reference, "torn")
    print("  torn trailing line: skipped cleanly, artifact converged")


def _trial_sigterm(workdir: str, reference: dict) -> None:
    """SIGTERM mid-campaign: exit 75, schema-valid partial artifact."""
    journal_dir = os.path.join(workdir, "sigterm-journal")
    out = os.path.join(workdir, "SIGTERM.json")
    env = dict(os.environ)
    env.setdefault(
        "PYTHONPATH",
        os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
    )
    process = subprocess.Popen(
        _command(journal_dir, out), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    lines = []
    try:
        # Drain until the first workload lands, then request shutdown.
        for line in process.stdout:
            lines.append(line)
            if line.startswith("  z") and "measured=" in line:
                process.send_signal(signal.SIGTERM)
                break
        for line in process.stdout:
            lines.append(line)
        returncode = process.wait(timeout=120)
    finally:
        if process.poll() is None:
            process.kill()
    output = "".join(lines)
    _require(
        returncode == EXIT_INTERRUPTED,
        f"sigterm: expected exit {EXIT_INTERRUPTED}, got {returncode}:\n"
        f"{output}",
    )
    document = _require_valid(out)
    partial = document.get("partial")
    _require(
        isinstance(partial, dict) and partial.get("reason") == "drain",
        f"sigterm: artifact lacks a drain partial block: {partial!r}",
    )
    completed = partial["completed"]
    _require(
        0 < completed < _N,
        f"sigterm: partial artifact completed {completed} of {_N} — "
        "drain landed outside the campaign",
    )
    cells = sum(
        cell
        for row in document["confusion"].values()
        for cell in row.values()
    )
    _require(
        cells == len(document["workloads"]),
        f"sigterm: confusion cells sum to {cells}, expected "
        f"{len(document['workloads'])}",
    )
    resumed = _run(_command(journal_dir, out))
    _require(
        resumed.returncode == 0,
        f"sigterm: resume failed (exit {resumed.returncode}):\n"
        f"{resumed.stdout}",
    )
    _require_valid(out)
    _require_converged(out, reference, "sigterm")
    print(f"  sigterm: exit 75, valid partial ({completed}/{_N}), "
          "resume converged")


def _trial_budget(workdir: str, reference: dict) -> None:
    """--max-workloads: exit 75 + valid partial, then resume to done."""
    journal_dir = os.path.join(workdir, "budget-journal")
    out = os.path.join(workdir, "BUDGET.json")
    capped = _run(_command(journal_dir, out, extra=["--max-workloads", "2"]))
    _require(
        capped.returncode == EXIT_INTERRUPTED,
        f"budget: expected exit {EXIT_INTERRUPTED}, got "
        f"{capped.returncode}:\n{capped.stdout}",
    )
    document = _require_valid(out)
    partial = document.get("partial")
    _require(
        isinstance(partial, dict)
        and partial.get("reason") == "workload-budget"
        and partial.get("completed") == 2,
        f"budget: unexpected partial block {partial!r}",
    )
    _require(
        len(document["workloads"]) + len(document["failures"]) == 2,
        "budget: artifact does not cover exactly the budgeted prefix",
    )
    resumed = _run(_command(journal_dir, out))
    _require(
        resumed.returncode == 0,
        f"budget: resume failed (exit {resumed.returncode}):\n"
        f"{resumed.stdout}",
    )
    _require(
        _executed_workloads(resumed.stdout) == _N - 2,
        "budget: resume re-simulated budgeted workloads",
    )
    _require_valid(out)
    _require_converged(out, reference, "budget")
    print("  budget: exit 75, valid partial (2/4), resume converged")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: one kill point plus the sigterm "
                             "and budget trials")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory for post-mortems")
    args = parser.parse_args(argv)

    kill_points = [2] if args.quick else [1, 2, 3]
    workdir = tempfile.mkdtemp(prefix="repro-campaign-chaos-")
    print(f"campaign chaos: scratch {workdir}")
    try:
        print("reference run (uninterrupted)...")
        reference = _reference(workdir)
        for kill_after in kill_points:
            _trial_kill(workdir, reference, kill_after)
        _trial_torn_line(workdir, reference)
        _trial_sigterm(workdir, reference)
        _trial_budget(workdir, reference)
    except ContractViolation as violation:
        print(f"CONTRACT VIOLATION: {violation}", file=sys.stderr)
        return 1
    except (OSError, subprocess.TimeoutExpired, CampaignError) as error:
        print(f"harness error: {error}", file=sys.stderr)
        return 2
    finally:
        if args.keep:
            print(f"scratch kept at {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)
    trials = len(kill_points) + 3
    print(f"campaign chaos: all {trials} trials passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

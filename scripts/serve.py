#!/usr/bin/env python3
"""Run the prediction service (see ``docs/ARCHITECTURE.md`` § "Service").

Usage:
  PYTHONPATH=src python scripts/serve.py --port 8080 --store results/simcache

Prints one line once the socket is listening::

  [serve] listening on http://127.0.0.1:8080 (pid 1234)

so harnesses can bind ``--port 0`` and parse the assigned port.

Exit codes follow the repository contract: 0 clean stop, 75 drained on
SIGTERM/SIGINT (everything accepted was answered or manifested; rerun
or restart to resume), 128+signum on a second signal.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from repro.obs import bootstrap
from repro.resilience import apply_memory_limit, install_shutdown_handlers
from repro.service import PredictionService, ServiceConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--store",
        default=os.path.join("results", "simcache"),
        help="result-store root ('' for memory-only)",
    )
    parser.add_argument("--workers-min", type=int, default=None)
    parser.add_argument("--workers-max", type=int, default=None)
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        help="per-request deadline in seconds when the client sends none",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="consecutive terminal failures before a config fast-fails "
        "(0 disables; default REPRO_BREAKER_THRESHOLD or 3)",
    )
    args = parser.parse_args(argv)

    bootstrap()
    apply_memory_limit()
    install_shutdown_handlers()

    overrides = {"host": args.host, "port": args.port}
    overrides["store_root"] = args.store or None
    if args.workers_min is not None:
        overrides["workers_min"] = max(1, args.workers_min)
    if args.workers_max is not None:
        overrides["workers_max"] = max(
            overrides.get("workers_min", 1), args.workers_max
        )
    if args.queue_depth is not None:
        overrides["queue_depth"] = max(1, args.queue_depth)
    if args.default_deadline is not None:
        overrides["default_deadline_s"] = max(0.1, args.default_deadline)
    if args.breaker_threshold is not None:
        overrides["breaker_threshold"] = max(0, args.breaker_threshold)

    config = ServiceConfig.from_env(**overrides)
    service = PredictionService(config)

    async def run() -> int:
        serve_task = asyncio.get_running_loop().create_task(service.serve())
        # serve() binds the socket before awaiting; poll until the port
        # is known, then announce readiness on stdout for harnesses.
        while service.port is None and not serve_task.done():
            await asyncio.sleep(0.01)
        if service.port is not None:
            print(
                f"[serve] listening on http://{config.host}:{service.port} "
                f"(pid {os.getpid()})",
                flush=True,
            )
        return await serve_task

    return asyncio.run(run())


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Run every paper experiment end to end and write the results.

Produces:
  results/experiments/<name>.txt   — one text artifact per table/figure
  EXPERIMENTS.md                   — paper-vs-measured summary

First run simulates everything (roughly 20-40 minutes on one core;
``--jobs N`` fans the simulations out across N worker processes);
repeated runs are served from the sharded store in results/simcache/.

Execution is fault-tolerant: ``--max-retries`` / ``--run-timeout``
bound retries and hangs per run, and ``--keep-going`` completes every
experiment it can when one fails, exiting 1 with a failure summary
instead of a traceback; failed runs are recorded under
``results/failures/``.

Long simulations checkpoint at kernel boundaries (snapshots under
``results/checkpoints/``) so a retried or killed run resumes instead of
starting cold; ``--checkpoint-interval`` / ``--checkpoint-dir`` /
``--no-resume`` tune this (see docs/ARCHITECTURE.md § "Checkpointing").
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.analysis import experiments as exp
from repro.analysis.faults import ExecutionPolicy
from repro.analysis.runner import (
    CachedRunner,
    DEFAULT_CACHE,
    default_checkpoint_policy,
    default_jobs,
)
from repro.checkpoint import default_checkpoint_interval, parse_checkpoint_interval
from repro.analysis.tables import render_percent
from repro.exceptions import ReproError, ShutdownRequested
from repro.obs import bootstrap
from repro.resilience import (
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    apply_memory_limit,
    install_shutdown_handlers,
    preflight_disk,
)
from repro.verify.runtime import arm_from_flag

OUT_DIR = os.path.join("results", "experiments")


def save(name: str, text: str) -> str:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"[{time.strftime('%H:%M:%S')}] wrote {path}")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for simulation cache misses "
             "(default: REPRO_JOBS or cpu_count()-1; 1 disables the pool)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="re-executions of a failed run before it is recorded as a "
             "casualty (default 2)",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None,
        help="per-run watchdog timeout in seconds for pool execution "
             "(default: unlimited)",
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help="complete every experiment that can run when one fails; "
             "exit 1 with a failure summary instead of a traceback",
    )
    parser.add_argument(
        "--retry-quarantined", action="store_true",
        help="re-attempt configs the per-config circuit breaker would "
             "skip (see results/failures/)",
    )
    # Parsed tolerantly (warn + default on garbage), so no type=int here.
    parser.add_argument(
        "--checkpoint-interval", default=None,
        help="kernel boundaries between mid-run snapshots (0 disables; "
             "default: REPRO_CHECKPOINT_INTERVAL or 1)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="snapshot directory (default: results/checkpoints)",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="keep writing checkpoints but always start runs cold",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="write a Chrome trace_event JSON of the whole sweep",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the metrics snapshot (counters, gauges, histogram "
             "quantiles) as JSON",
    )
    parser.add_argument(
        "--log-format", choices=("human", "json"), default=None,
        help="stderr diagnostics format (default human)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="paranoia mode: assert engine/model invariants at every "
             "kernel boundary and event-queue operation (equivalent to "
             "REPRO_VERIFY=1; workers inherit it)",
    )
    args = parser.parse_args(argv)
    obs = bootstrap(args.trace_out, args.metrics_out, args.log_format)
    coordinator = install_shutdown_handlers()
    coordinator.reset()
    apply_memory_limit()
    arm_from_flag(args.verify)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    defaults = ExecutionPolicy()
    policy = ExecutionPolicy(
        max_retries=(
            defaults.max_retries
            if args.max_retries is None
            else args.max_retries
        ),
        run_timeout=args.run_timeout,
        keep_going=args.keep_going,
        retry_quarantined=args.retry_quarantined,
    )
    checkpoint = default_checkpoint_policy(
        DEFAULT_CACHE,
        interval=parse_checkpoint_interval(
            args.checkpoint_interval, default_checkpoint_interval()
        ),
        resume=not args.no_resume,
        root=args.checkpoint_dir,
    )
    runner = CachedRunner(jobs=jobs, policy=policy, checkpoint=checkpoint)
    preflight_disk(
        runner.store.root,
        runner.manifest.root,
        runner.checkpoint.root if runner.checkpoint else None,
        OUT_DIR,
    )
    # Monotonic: this clock feeds the duration report below, and the
    # wall clock can step (NTP) mid-sweep.
    t0 = time.monotonic()

    failed_steps = []
    interrupted = []

    def step(label, fn):
        """Run one experiment step; with --keep-going a failure skips
        just this step (recording it) instead of aborting the sweep.
        A graceful shutdown turns every later step into a no-op so the
        end-of-sweep flush and summary still run before exit 75."""
        if interrupted:
            return None
        try:
            return fn()
        except (ShutdownRequested, KeyboardInterrupt) as stop:
            interrupted.append(stop)
            print(
                f"interrupted during {label}: {stop} — completed results "
                "are saved; rerun the same command to resume "
                f"(exit code {EXIT_INTERRUPTED})",
                file=sys.stderr,
            )
            return None
        except ReproError as error:
            if not args.keep_going:
                raise
            failed_steps.append(label)
            print(f"[skip] {label} failed: {error}", file=sys.stderr)
            return None

    step("table1", lambda: save("table1", exp.table1_text()))
    step("table5", lambda: save("table5", exp.table5_text()))

    def run_fig1():
        fig1 = exp.figure1_scaling(("dct", "bfs", "pf"), runner)
        save("fig1", fig1.as_text() + "\n\n" + "\n\n".join(
            fig1.plot(b) for b in fig1.benchmarks))
        return fig1

    step("fig1", run_fig1)

    def run_classification():
        result = exp.figure1_scaling(tuple(exp.strong_scaling_names()), runner)
        save("table2_classification", result.as_text())
        return result

    classification = step("table2_classification", run_classification)

    def run_fig2():
        result = exp.figure2_miss_rate_curves(
            ("dct", "bfs", "pf", "fwt", "lu", "btree"), runner)
        save("fig2", result.as_text())
        return result

    fig2 = step("fig2", run_fig2)

    def run_fig4(target, name):
        result = exp.figure4_strong_accuracy(target, runner=runner)
        save(name, result.as_text())
        return result

    fig4a = step("fig4a", lambda: run_fig4(128, "fig4a"))
    fig4b = step("fig4b", lambda: run_fig4(64, "fig4b"))

    def run_fig5():
        result = exp.figure5_prediction_curves(runner=runner)
        save("fig5", result.as_text())
        return result

    step("fig5", run_fig5)

    def run_fig6():
        result = exp.figure6_weak_accuracy(runner=runner)
        save("fig6", "\n\n".join(result[t].as_text() for t in sorted(result)))
        return result

    fig6 = step("fig6", run_fig6)

    def run_fig7():
        result = exp.figure7_speedup(runner)
        save("fig7", result.as_text())
        return result

    fig7 = step("fig7", run_fig7)

    def run_fig8():
        result = exp.figure8_mcm_accuracy(runner)
        save("fig8", result.as_text())
        return result

    fig8 = step("fig8", run_fig8)

    # Ablation: trained one-size-fits-all model (the prior-work approach).
    def run_trained():
        from repro.analysis.parallel import RunRequest
        from repro.core.trained import leave_one_out_errors
        from repro.workloads import STRONG_SCALING

        runner.prefetch([
            RunRequest("sim", spec, size=n)
            for spec in STRONG_SCALING.values()
            for n in (8, 16, 32, 64, 128)
        ])
        curves = {
            abbr: {
                n: runner.simulate(spec, n).ipc for n in (8, 16, 32, 64, 128)
            }
            for abbr, spec in STRONG_SCALING.items()
        }
        errors = leave_one_out_errors(curves, anchor_size=16, target_size=128)
        avg = sum(errors.values()) / len(errors)
        text = "\n".join(
            f"{abbr:6s} {100 * err:6.1f}%"
            for abbr, err in sorted(errors.items())
        ) + (f"\navg    {100 * avg:6.1f}%"
             f"  max {100 * max(errors.values()):6.1f}%")
        save("ablation_trained_global_model", text)
        return errors, avg

    trained_step = step("ablation_trained_global_model", run_trained)
    trained, trained_avg = trained_step if trained_step else (None, None)

    # Ablation: 16/32-SM scale models (artifact appendix experiment).
    def run_ablation(target, name):
        result = exp.figure4_strong_accuracy(
            target, runner=runner, scale_sizes=(16, 32)
        )
        save(name, result.as_text())
        return result

    abl = step("ablation_scale_models_16_32",
               lambda: run_ablation(128, "ablation_scale_models_16_32"))
    abl64 = step("ablation_scale_models_16_32_t64",
                 lambda: run_ablation(64, "ablation_scale_models_16_32_t64"))

    summary_inputs = (classification, fig2, fig4a, fig4b, fig6, fig7, fig8,
                      abl, abl64)
    if all(piece is not None for piece in summary_inputs):
        write_experiments_md(classification, fig2, fig4a, fig4b, fig6, fig7,
                             fig8, abl, abl64, trained, trained_avg)
    else:
        print("EXPERIMENTS.md not rewritten: required experiments failed",
              file=sys.stderr)
    runner.flush()
    stats = runner.stats()
    print(f"total: {time.monotonic() - t0:.0f}s; cache hits={stats['hits']} "
          f"misses={stats['misses']} flushes={stats['flushes']} "
          f"entries={stats['entries']} jobs={jobs}")
    print(runner.execution_health())
    obs.finalize(extra_metrics={"runner": runner.metrics})
    if interrupted:
        return EXIT_INTERRUPTED
    if failed_steps:
        print(f"completed with failures: {', '.join(failed_steps)}",
              file=sys.stderr)
        return EXIT_FAILURES
    return EXIT_OK


def write_experiments_md(classification, fig2, fig4a, fig4b, fig6, fig7,
                         fig8, abl, abl64, trained=None,
                         trained_avg=None) -> None:
    from repro.core.baselines import METHOD_NAMES

    def method_row(result):
        return " | ".join(
            f"{render_percent(result.mean_error(m))} / "
            f"{render_percent(result.max_error(m))}"
            for m in METHOD_NAMES
        )

    matched = sum(
        classification.measured_class[b] == classification.expected_class[b]
        for b in classification.benchmarks
    )
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "All numbers regenerated by `python scripts/run_all_experiments.py`;",
        "per-experiment artifacts live in `results/experiments/`.",
        "",
        "Absolute IPC values are not comparable to the paper (the substrate",
        "is a miniaturized Python simulator, not Accel-Sim on a server farm);",
        "the *shape* comparisons below are the reproduction targets.",
        "",
        "## Table II / Figure 1 — scaling-behaviour classification",
        "",
        f"- paper: 7 super-linear, 5 sub-linear, 9 linear benchmarks",
        f"- measured: **{matched}/{len(classification.benchmarks)}** benchmarks"
        " reproduce their published class"
        " (see `results/experiments/table2_classification.txt`)",
        "",
        "## Figure 2 — miss-rate curves",
        "",
        "- paper: dct drops sharply between 17 and 34 MB; bfs decreases"
        " gradually; pf is flat",
        "- measured: dct cliff detected at 17→34 MB"
        f" (step {fig2.cliff_step['dct']}), bfs and pf have no cliff"
        " (see `results/experiments/fig2.txt`)",
        "",
        "## Figure 4 — strong-scaling prediction error (avg / max)",
        "",
        "| target | " + " | ".join(METHOD_NAMES) + " |",
        "|---|" + "---|" * len(METHOD_NAMES),
        f"| 128 SMs (paper: log 69%/86%, prop 22%/113%, lin 17%/68%,"
        f" pow 12%/55%, **scale 4%/17%**) | {method_row(fig4a)} |",
        f"| 64 SMs (paper: log 48%/55%, prop 10%/52%, lin 6%/23%,"
        f" pow 4%/13%, **scale 3.5%/13%**) | {method_row(fig4b)} |",
        "",
        f"- shape check: scale-model has the lowest average error at both"
        f" targets (measured best method: {fig4a.best_method()} @128,"
        f" {fig4b.best_method()} @64); logarithmic regression is worst,"
        " as in the paper.",
        "- our absolute scale-model errors are higher than the paper's"
        " (the Eq. 3 stall-elimination assumption is only ~80% true on"
        " our substrate; see DESIGN.md notes), but the ordering and the"
        " per-class behaviour (baselines failing on super-linear workloads)"
        " reproduce.",
        "",
        "## Figure 6 — weak-scaling prediction error (avg / max)",
        "",
        "| target | " + " | ".join(METHOD_NAMES) + " |",
        "|---|" + "---|" * len(METHOD_NAMES),
    ]
    for target in sorted(fig6):
        lines.append(f"| {target} SMs | {method_row(fig6[target])} |")
    lines += [
        "",
        "- paper @128: scale-model 1.7% avg / 4.5% max, best of all methods;",
        f"  measured best method @128: {fig6[128].best_method()};"
        " weak errors are lower than strong errors for scale-model, as in"
        " the paper.",
        "",
        "## Figure 7 — weak-scaling simulation speedup",
        "",
        "| target | paper | measured |",
        "|---|---|---|",
        f"| 32 SMs | 1.5x | {fig7.average(32):.1f}x |",
        f"| 64 SMs | 3.9x | {fig7.average(64):.1f}x |",
        f"| 128 SMs | 9.3x | {fig7.average(128):.1f}x |",
        "",
        "- shape check: speedup grows with target size.",
        "",
        "## Figure 8 — multi-chiplet (MCM) prediction error (avg / max)",
        "",
        "| | " + " | ".join(METHOD_NAMES) + " |",
        "|---|" + "---|" * len(METHOD_NAMES),
        f"| 16 chiplets (paper: log 25%/33%, prop 20%/58%, lin 4.7%/9%,"
        f" pow 3.7%/8%, **scale 2.5%/4.3%**) | {method_row(fig8)} |",
        "",
        "- scale-model equals power-law here by construction: predicting a"
        " single doubling (16 chiplets from the 8-chiplet model) makes"
        " Eq. 2 and a two-point power-law fit the same formula.",
        "- known deviation: our MCM substrate saturates the inter-chiplet"
        " links for globally shared working sets, giving convex scaling"
        " curves that single-trend extrapolation underpredicts; linear"
        " regression happens to win on this substrate, while scale-model"
        " still beats the paper's weakest baselines (logarithmic,"
        " proportional).",
        "",
        "## Artifact-appendix ablation — 16/32-SM scale models",
        "",
        "Paper: using 16/32-SM scale models instead of 8/16 raises errors"
        " (scale-model 10% avg at the 128-SM target, 5% at 64).",
        "",
        "| target | " + " | ".join(METHOD_NAMES) + " |",
        "|---|" + "---|" * len(METHOD_NAMES),
        f"| 128 SMs | {method_row(abl)} |",
        f"| 64 SMs | {method_row(abl64)} |",
        "",
    ]
    if trained is not None:
        lines += [
            "## Prior-work ablation — trained one-size-fits-all model",
            "",
            "Section II argues that models *trained* on other benchmarks"
            " (the prior CPU scale-model approach) cannot track GPU scaling"
            " diversity.  Leave-one-out over our 21 benchmarks"
            " (128-SM target):",
            "",
            f"- trained global model: **{100 * trained_avg:.1f}%** avg /"
            f" {100 * max(trained.values()):.1f}% max",
            f"- per-workload scale-model: {100 * fig4a.mean_error('scale-model'):.1f}%"
            f" avg / {100 * fig4a.max_error('scale-model'):.1f}% max",
            "- the trained model loses on every single benchmark"
            " (see `results/experiments/ablation_trained_global_model.txt`).",
            "",
        ]
    with open("EXPERIMENTS.md", "w") as fh:
        fh.write("\n".join(lines))
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    sys.exit(main())

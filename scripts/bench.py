#!/usr/bin/env python3
"""Benchmark suite: emit a BENCH_<n>.json perf artifact and gate on a baseline.

Runs the fixed benchmark matrix (quick or full tier) through the
detailed engine and the scale-model predictor, then writes a
schema-versioned artifact with simulated cycles/sec and
warp-instructions/sec per workload class, cold/warm campaign wall time,
predictor MAPE per scaling regime and peak RSS.

Usage:
  python scripts/bench.py --quick --out BENCH_6.json
  python scripts/bench.py --quick --compare BENCH_6.json   # trajectory gate
  python scripts/bench.py --validate-only BENCH_6.json     # schema check only

Exit codes: 0 ok, 1 regression beyond tolerance, 2 schema-invalid artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile

from repro.bench import (
    Thresholds,
    compare_artifacts,
    matrix_for_tier,
    validate_artifact,
)
from repro.bench.harness import run_bench
from repro.fsio import atomic_write_text
from repro.obs import bootstrap, install
from repro.resilience import apply_memory_limit, install_shutdown_handlers
from repro.verify.runtime import arm_from_flag

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INVALID = 2


def _load_artifact(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _validate(path: str, document: dict) -> bool:
    problems = validate_artifact(document)
    if problems:
        print(f"{path}: artifact is not schema-valid:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return False
    return True


def _report(document: dict) -> None:
    for name, block in document["workload_classes"].items():
        print(
            f"{name:13s} {block['sim_cycles_per_sec']:12.0f} cycles/s  "
            f"{block['warp_instructions_per_sec']:12.0f} warp-insns/s  "
            f"({', '.join(block['benchmarks'])})"
        )
    campaign = document["campaign"]
    print(
        f"campaign: cold {campaign['cold_wall_s']:.1f}s, "
        f"warm {campaign['warm_wall_s']:.2f}s "
        f"({campaign['runs']} runs, {campaign['warm_hits']} warm hits)"
    )
    for regime, block in document["accuracy"].items():
        print(
            f"accuracy[{regime}]: MAPE {block['mape_pct']:.2f}% "
            f"(max {block['max_ape_pct']:.2f}%, n={block['count']})"
        )
    print(f"peak RSS: {document['memory']['peak_rss_bytes'] / 2**20:.0f} MiB")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--quick", action="store_true",
                      help="run the quick tier (one representative per "
                           "scaling class; the CI smoke matrix)")
    tier.add_argument("--full", action="store_true",
                      help="run every Table II benchmark (release gate; "
                           "tens of minutes)")
    parser.add_argument("--out", default="BENCH_6.json",
                        help="artifact path (default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="diff the new artifact against this baseline "
                             "and exit 1 on regression beyond tolerance")
    parser.add_argument("--validate-only", metavar="ARTIFACT", default=None,
                        help="schema-validate an existing artifact and exit "
                             "(no benchmarks run)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the cold campaign "
                             "(default 1; >1 disables the engine-loop "
                             "cross-check)")
    parser.add_argument("--cache-dir", default=None,
                        help="cold-campaign cache directory (default: a "
                             "fresh temp dir, removed afterwards; must not "
                             "hold prior results)")
    parser.add_argument("--tol-throughput", type=float, default=None,
                        help="allowed fractional throughput loss "
                             "(default 0.5)")
    parser.add_argument("--tol-walltime", type=float, default=None,
                        help="allowed fractional wall-time growth "
                             "(default 1.5)")
    parser.add_argument("--tol-mape", type=float, default=None,
                        help="allowed MAPE growth in percentage points "
                             "(default 1.0)")
    parser.add_argument("--tol-rss", type=float, default=None,
                        help="allowed fractional peak-RSS growth "
                             "(default 1.0)")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome trace_event JSON of the run")
    parser.add_argument("--metrics-out", default=None,
                        help="write the metrics snapshot as JSON")
    parser.add_argument("--log-format", choices=("human", "json"),
                        default=None)
    parser.add_argument("--verify", action="store_true",
                        help="paranoia mode: assert engine/model invariants "
                             "during the campaign (REPRO_VERIFY=1; note the "
                             "checked loop adds overhead, so do not compare "
                             "a --verify artifact against a plain baseline)")
    args = parser.parse_args(argv)

    if args.validate_only:
        document = _load_artifact(args.validate_only)
        if not _validate(args.validate_only, document):
            return EXIT_INVALID
        print(f"{args.validate_only}: schema-valid "
              f"({document['tier']} tier)")
        return EXIT_OK

    obs = bootstrap(args.trace_out, args.metrics_out, args.log_format)
    install_shutdown_handlers().reset()
    apply_memory_limit()
    arm_from_flag(args.verify)
    # The harness always measures: the engine-loop hook feeds the
    # instrumented/wall cross-check even without --trace-out.
    install()

    matrix = matrix_for_tier("full" if args.full else "quick")
    cache_dir = args.cache_dir
    temp_cache = cache_dir is None
    if temp_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-")
    try:
        document = run_bench(
            matrix, os.path.join(cache_dir, "simcache"), jobs=args.jobs
        )
    finally:
        if temp_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)

    if not _validate(args.out, document):
        return EXIT_INVALID
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    atomic_write_text(
        args.out, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out} ({matrix.tier} tier, {matrix.run_count} runs)")
    _report(document)
    obs.finalize()

    if args.compare:
        baseline = _load_artifact(args.compare)
        defaults = Thresholds()
        thresholds = Thresholds(
            throughput_frac=(
                defaults.throughput_frac
                if args.tol_throughput is None else args.tol_throughput
            ),
            walltime_frac=(
                defaults.walltime_frac
                if args.tol_walltime is None else args.tol_walltime
            ),
            mape_pp=defaults.mape_pp if args.tol_mape is None else args.tol_mape,
            rss_frac=defaults.rss_frac if args.tol_rss is None else args.tol_rss,
        )
        try:
            regressions = compare_artifacts(baseline, document, thresholds)
        except ValueError as error:
            print(f"compare failed: {error}", file=sys.stderr)
            return EXIT_INVALID
        if regressions:
            print(
                f"REGRESSION: {len(regressions)} metric(s) beyond tolerance "
                f"vs {args.compare}:", file=sys.stderr,
            )
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
            return EXIT_REGRESSION
        print(f"trajectory ok: no regression vs {args.compare}")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

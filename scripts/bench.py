#!/usr/bin/env python3
"""Benchmark suite: emit a BENCH_<n>.json perf artifact and gate on a baseline.

Runs the fixed benchmark matrix (quick or full tier) through the
detailed engine and the scale-model predictor, then writes a
schema-versioned artifact with simulated cycles/sec and
warp-instructions/sec per workload class, cold/warm campaign wall time,
predictor MAPE per scaling regime and peak RSS.

Usage:
  python scripts/bench.py --quick --out BENCH_6.json
  python scripts/bench.py --quick --compare BENCH_6.json   # trajectory gate
  python scripts/bench.py --validate-only BENCH_6.json     # schema check only

With ``--journal-dir`` (plus a persistent ``--cache-dir``) the campaign
is journaled through :mod:`repro.campaign`: a crash, drain, or
``--max-wall``/``--max-workloads`` budget stop never discards completed
cases, and rerunning the same command resumes where it died.

Exit codes: 0 ok, 1 regression beyond tolerance, 2 schema-invalid
artifact or operator error, 75 interrupted/budget-stopped but resumable
(rerun the same command to continue), 128+signum on a second, forcing
signal.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro.bench import (
    ARTIFACT_KIND,
    Thresholds,
    compare_artifacts,
    matrix_for_tier,
    matrix_plan_payload,
    validate_artifact,
)
from repro.bench.harness import run_bench
from repro.campaign import CampaignBudget, CampaignJournal
from repro.exceptions import (
    CampaignError,
    CampaignIncomplete,
    ShutdownRequested,
)
from repro.fsio import atomic_write_text
from repro.obs import bootstrap, install
from repro.resilience import (
    EXIT_INTERRUPTED,
    apply_memory_limit,
    install_shutdown_handlers,
)
from repro.verify.runtime import arm_from_flag

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_INVALID = 2


def _load_artifact(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def _validate(path: str, document: dict) -> bool:
    problems = validate_artifact(document)
    if problems:
        print(f"{path}: artifact is not schema-valid:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return False
    return True


def _report(document: dict) -> None:
    for name, block in document["workload_classes"].items():
        print(
            f"{name:13s} {block['sim_cycles_per_sec']:12.0f} cycles/s  "
            f"{block['warp_instructions_per_sec']:12.0f} warp-insns/s  "
            f"({', '.join(block['benchmarks'])})"
        )
    campaign = document["campaign"]
    print(
        f"campaign: cold {campaign['cold_wall_s']:.1f}s, "
        f"warm {campaign['warm_wall_s']:.2f}s "
        f"({campaign['runs']} runs, {campaign['warm_hits']} warm hits)"
    )
    for regime, block in document["accuracy"].items():
        print(
            f"accuracy[{regime}]: MAPE {block['mape_pct']:.2f}% "
            f"(max {block['max_ape_pct']:.2f}%, n={block['count']})"
        )
    print(f"peak RSS: {document['memory']['peak_rss_bytes'] / 2**20:.0f} MiB")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--quick", action="store_true",
                      help="run the quick tier (one representative per "
                           "scaling class; the CI smoke matrix)")
    tier.add_argument("--full", action="store_true",
                      help="run every Table II benchmark (release gate; "
                           "tens of minutes)")
    parser.add_argument("--out", default="BENCH_6.json",
                        help="artifact path (default: %(default)s)")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="diff the new artifact against this baseline "
                             "and exit 1 on regression beyond tolerance")
    parser.add_argument("--validate-only", metavar="ARTIFACT", default=None,
                        help="schema-validate an existing artifact and exit "
                             "(no benchmarks run)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the cold campaign "
                             "(default 1; >1 disables the engine-loop "
                             "cross-check)")
    parser.add_argument("--cache-dir", default=None,
                        help="cold-campaign cache directory (default: a "
                             "fresh temp dir, removed afterwards; must not "
                             "hold prior results)")
    parser.add_argument("--journal-dir", default=None,
                        help="campaign journal root; enables crash-safe "
                             "resume of the bench campaign (requires a "
                             "persistent --cache-dir)")
    parser.add_argument("--no-resume", action="store_true",
                        help="discard any existing journal for this matrix "
                             "and start the campaign from scratch")
    parser.add_argument("--max-wall", type=float, default=None, metavar="S",
                        help="wall-clock budget in seconds; on expiry the "
                             "campaign stops at a case boundary with a "
                             "resumable partial artifact (exit 75)")
    parser.add_argument("--max-workloads", type=int, default=None,
                        metavar="K",
                        help="cap on total completed bench cases (journal-"
                             "reused ones included); exceeding it stops "
                             "with a resumable partial artifact (exit 75)")
    parser.add_argument("--tol-throughput", type=float, default=None,
                        help="allowed fractional throughput loss "
                             "(default 0.5)")
    parser.add_argument("--tol-walltime", type=float, default=None,
                        help="allowed fractional wall-time growth "
                             "(default 1.5)")
    parser.add_argument("--tol-mape", type=float, default=None,
                        help="allowed MAPE growth in percentage points "
                             "(default 1.0)")
    parser.add_argument("--tol-rss", type=float, default=None,
                        help="allowed fractional peak-RSS growth "
                             "(default 1.0)")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome trace_event JSON of the run")
    parser.add_argument("--metrics-out", default=None,
                        help="write the metrics snapshot as JSON")
    parser.add_argument("--log-format", choices=("human", "json"),
                        default=None)
    parser.add_argument("--verify", action="store_true",
                        help="paranoia mode: assert engine/model invariants "
                             "during the campaign (REPRO_VERIFY=1; note the "
                             "checked loop adds overhead, so do not compare "
                             "a --verify artifact against a plain baseline)")
    args = parser.parse_args(argv)

    if args.validate_only:
        document = _load_artifact(args.validate_only)
        if not _validate(args.validate_only, document):
            return EXIT_INVALID
        print(f"{args.validate_only}: schema-valid "
              f"({document['tier']} tier)")
        return EXIT_OK

    obs = bootstrap(args.trace_out, args.metrics_out, args.log_format)
    install_shutdown_handlers().reset()
    apply_memory_limit()
    arm_from_flag(args.verify)
    # The harness always measures: the engine-loop hook feeds the
    # instrumented/wall cross-check even without --trace-out.
    install()

    matrix = matrix_for_tier("full" if args.full else "quick")
    cache_dir = args.cache_dir
    temp_cache = cache_dir is None

    journal = None
    if args.journal_dir is not None:
        if temp_cache:
            print(
                "--journal-dir requires a persistent --cache-dir: the "
                "journal seals which cases completed, the cache holds "
                "their results",
                file=sys.stderr,
            )
            return EXIT_INVALID
        plan = matrix_plan_payload(matrix)
        if args.no_resume:
            if CampaignJournal.discard(args.journal_dir, ARTIFACT_KIND, plan):
                print("discarded existing journal for this matrix")
        try:
            journal = CampaignJournal.open(
                args.journal_dir, ARTIFACT_KIND, plan,
                created_unix=time.time(),
            )
        except CampaignError as error:
            print(f"journal error: {error}", file=sys.stderr)
            return EXIT_INVALID
        if journal.completed:
            print(
                f"journal {journal.digest}: {len(journal.completed)} "
                "case(s) already sealed"
            )
    budget = CampaignBudget(
        max_wall_s=args.max_wall, max_workloads=args.max_workloads
    )

    if temp_cache:
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-")
    try:
        try:
            document = run_bench(
                matrix, os.path.join(cache_dir, "simcache"), jobs=args.jobs,
                journal=journal, budget=budget,
            )
        except CampaignIncomplete as error:
            print(f"bench campaign interrupted: {error}", file=sys.stderr)
            return EXIT_INTERRUPTED
        except ShutdownRequested as error:
            print(f"bench campaign drained: {error}", file=sys.stderr)
            return EXIT_INTERRUPTED
    finally:
        if temp_cache:
            shutil.rmtree(cache_dir, ignore_errors=True)

    if not _validate(args.out, document):
        return EXIT_INVALID
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    atomic_write_text(
        args.out, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out} ({matrix.tier} tier, {matrix.run_count} runs)")
    _report(document)
    obs.finalize()

    partial = document.get("partial")
    if partial:
        print(
            f"PARTIAL artifact ({partial['reason']}): "
            f"{partial['completed']} of {partial['planned']} cases "
            "completed; rerun the same command to resume",
            file=sys.stderr,
        )
        if args.compare:
            print(
                "skipping --compare: partial artifacts do not gate",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED

    if args.compare:
        baseline = _load_artifact(args.compare)
        defaults = Thresholds()
        thresholds = Thresholds(
            throughput_frac=(
                defaults.throughput_frac
                if args.tol_throughput is None else args.tol_throughput
            ),
            walltime_frac=(
                defaults.walltime_frac
                if args.tol_walltime is None else args.tol_walltime
            ),
            mape_pp=defaults.mape_pp if args.tol_mape is None else args.tol_mape,
            rss_frac=defaults.rss_frac if args.tol_rss is None else args.tol_rss,
        )
        try:
            regressions = compare_artifacts(baseline, document, thresholds)
        except ValueError as error:
            print(f"compare failed: {error}", file=sys.stderr)
            return EXIT_INVALID
        if regressions:
            print(
                f"REGRESSION: {len(regressions)} metric(s) beyond tolerance "
                f"vs {args.compare}:", file=sys.stderr,
            )
            for regression in regressions:
                print(f"  - {regression}", file=sys.stderr)
            return EXIT_REGRESSION
        print(f"trajectory ok: no regression vs {args.compare}")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

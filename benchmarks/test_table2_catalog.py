"""Table II: the strong-scaling benchmark catalog.

Checks that the catalog reproduces the published suite composition,
footprints and scaling classes, and benchmarks trace generation.
"""

import pytest

from conftest import emit
from repro.analysis.tables import render_table
from repro.workloads import (
    STRONG_SCALING,
    ScalingBehavior,
    build_trace,
    strong_scaling_names,
)

#: (abbr, suite, footprint MB, scaling) straight from Table II.
TABLE2 = [
    ("dct", "CUDA SDK", 33.0, "super-linear"),
    ("fwt", "CUDA SDK", 67.1, "super-linear"),
    ("bp", "Rodinia", 18.8, "super-linear"),
    ("va", "CUDA SDK", 50.3, "super-linear"),
    ("as", "CUDA SDK", 67.1, "super-linear"),
    ("lu", "Polybench", 16.8, "super-linear"),
    ("st", "Parboil", 131.9, "super-linear"),
    ("bfs", "Rodinia", 20.4, "sub-linear"),
    ("unet", "MLPerf", 615.0, "sub-linear"),
    ("sr", "Rodinia", 25.2, "sub-linear"),
    ("gr", "CUDA SDK", 46.1, "sub-linear"),
    ("btree", "Rodinia", 17.4, "sub-linear"),
    ("pf", "Rodinia", 404.1, "linear"),
    ("res50", "MLPerf", 1388.1, "linear"),
    ("res34", "MLPerf", 845.8, "linear"),
    ("ht", "Rodinia", 12.5, "linear"),
    ("at", "CUDA SDK", 100.0, "linear"),
    ("gemm", "Polybench", 12.6, "linear"),
    ("2mm", "Polybench", 21.0, "linear"),
    ("lbm", "Parboil", 359.4, "linear"),
    ("bs", "CUDA SDK", 80.1, "linear"),
]


class TestTable2:
    def test_regenerate_table2(self):
        rows = []
        for abbr in strong_scaling_names():
            spec = STRONG_SCALING[abbr]
            rows.append([
                abbr, spec.name, spec.suite, f"{spec.footprint_mb:g}",
                f"{spec.insns_m:g}", spec.scaling.value,
            ])
        emit(render_table(
            ["abbr", "name", "suite", "MB", "#insns(M)", "scaling"],
            rows, title="Table II: strong-scaling benchmarks",
        ))
        assert len(rows) == 21

    @pytest.mark.parametrize("abbr,suite,mb,scaling", TABLE2)
    def test_catalog_matches_paper(self, abbr, suite, mb, scaling):
        spec = STRONG_SCALING[abbr]
        assert spec.suite == suite
        assert spec.footprint_mb == pytest.approx(mb)
        assert spec.scaling == ScalingBehavior(scaling)

    def test_class_counts(self):
        classes = [s.scaling for s in STRONG_SCALING.values()]
        assert classes.count(ScalingBehavior.SUPER_LINEAR) == 7
        assert classes.count(ScalingBehavior.SUB_LINEAR) == 5
        assert classes.count(ScalingBehavior.LINEAR) == 9

    def test_all_traces_buildable_and_deterministic(self):
        for abbr in strong_scaling_names():
            spec = STRONG_SCALING[abbr]
            t1 = build_trace(spec)
            t2 = build_trace(spec)
            cta1 = t1.kernels[0].build_cta(0)
            cta2 = t2.kernels[0].build_cta(0)
            assert cta1.warps[0].lines == cta2.warps[0].lines, abbr


def test_bench_trace_generation(benchmark):
    """Building one dct CTA trace (the per-CTA generation cost)."""
    trace = build_trace(STRONG_SCALING["dct"])
    kernel = trace.kernels[1]
    cta = benchmark(kernel.build_cta, 7)
    assert cta.num_warps == kernel.warps_per_cta

"""Figure 7: simulation-time speedup through weak-scaling scale models.

Speedup compares simulating the target directly against simulating both
scale models (8 and 16 SMs).  The paper reports 1.5x / 3.9x / 9.3x for
32 / 64 / 128-SM targets; the shape — speedup grows with target size —
is what the harness asserts (absolute values depend on the host).
"""

import pytest

from conftest import emit
from repro.analysis.experiments import figure7_speedup


@pytest.fixture(scope="module")
def fig7(runner):
    return figure7_speedup(runner)


class TestFigure7:
    def test_regenerate(self, fig7):
        emit(fig7.as_text())
        assert fig7.target_sizes == (32, 64, 128)

    def test_speedup_grows_with_target_size(self, fig7):
        averages = [fig7.average(t) for t in fig7.target_sizes]
        assert averages[0] < averages[1] < averages[2]

    def test_128_target_speedup_substantial(self, fig7):
        """Weak-scaled 128-SM inputs are 16x the 8-SM input; simulating
        both scale models costs ~3 units of the base work, so the
        speedup must be well above 2x (paper: 9.3x)."""
        assert fig7.average(128) > 2.0

    def test_every_benchmark_benefits_at_128(self, fig7):
        for bench, per_target in fig7.speedups.items():
            assert per_target[128] > 1.0, bench

"""Figure 8: multi-chiplet prediction error (16 chiplets from 4/8).

Paper: scale-model simulation predicts 16-chiplet IPC with 2.5% average
error (4.3% max); logarithmic regression and proportional scaling are
highly inaccurate.  These are the heaviest simulations in the harness
(up to 1,024 SMs), so results are cached aggressively.
"""

import pytest

from conftest import emit
from repro.analysis.experiments import figure8_mcm_accuracy


@pytest.fixture(scope="module")
def fig8(runner):
    return figure8_mcm_accuracy(runner)


class TestFigure8:
    def test_regenerate(self, fig8):
        emit(fig8.as_text())
        assert set(fig8.errors["scale-model"]) == {"bfs", "bs", "as", "bp", "va"}

    def test_scale_model_accurate(self, fig8):
        assert fig8.mean_error("scale-model") < 0.15
        assert fig8.max_error("scale-model") < 0.35

    def test_scale_model_among_best(self, fig8):
        sm = fig8.mean_error("scale-model")
        assert fig8.mean_error("logarithmic") > sm
        assert fig8.mean_error("proportional") >= sm * 0.99

    def test_predictor_reused_verbatim_for_chiplets(self, fig8):
        """The same per-workload model handles chiplet counts: scale
        models at 4/8 chiplets, target at 16."""
        assert fig8.scale_sizes == (4, 8)
        assert fig8.target_size == 16

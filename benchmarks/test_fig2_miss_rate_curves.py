"""Figure 2: miss-rate curves (MPKI versus LLC capacity).

Checks the three archetype shapes — sharp cliff (dct), gradual decrease
(bfs), flat (pf) — and benchmarks MRC collection, including the
exact-vs-statistical ablation the MRC literature motivates.
"""

import pytest

from conftest import emit
from repro.analysis.experiments import figure2_miss_rate_curves
from repro.mrc import collect_miss_rate_curve
from repro.workloads import STRONG_SCALING, build_trace


@pytest.fixture(scope="module")
def fig2(runner):
    return figure2_miss_rate_curves(("dct", "bfs", "pf"), runner)


class TestFigure2:
    def test_regenerate_fig2(self, fig2):
        emit(fig2.as_text())
        assert fig2.capacities_mb == (2.125, 4.25, 8.5, 17.0, 34.0)

    def test_dct_sharp_cliff_at_17_to_34(self, fig2):
        assert fig2.cliff_step["dct"] == 3
        mpki = fig2.mpki["dct"]
        assert mpki[3] > 2 * mpki[4]
        # Pre-cliff region is flat.
        assert mpki[0] == pytest.approx(mpki[3], rel=0.1)

    def test_bfs_gradual_decrease_no_cliff(self, fig2):
        assert fig2.cliff_step["bfs"] is None
        mpki = fig2.mpki["bfs"]
        assert mpki[0] > mpki[4] > 0  # decreasing but never collapsing
        drops = [a / b for a, b in zip(mpki, mpki[1:])]
        assert max(drops) < 2.0

    def test_pf_flat(self, fig2):
        mpki = fig2.mpki["pf"]
        assert mpki[0] == pytest.approx(mpki[4], rel=0.15)
        assert fig2.cliff_step["pf"] is None


class TestCollectionCost:
    """The paper stresses MRC collection is far cheaper than timing
    simulation; compare the two costs on the same workload."""

    def test_mrc_cheaper_than_timing(self, runner):
        spec = STRONG_SCALING["bfs"]
        curve = runner.miss_rate_curve(spec)
        timing = runner.simulate(spec, 128)
        mrc_cost = curve.metadata["collection_seconds"]
        assert mrc_cost > 0
        # One functional pass yields all five capacities; five timing runs
        # would cost vastly more than 5x this single simulation.
        assert mrc_cost < 5 * max(timing.wall_time_s, 1e-3)


def test_bench_mrc_collection_exact(benchmark):
    trace = build_trace(STRONG_SCALING["pf"])
    curve = benchmark.pedantic(
        collect_miss_rate_curve, args=(trace,), rounds=1, iterations=1
    )
    assert len(curve) == 5


def test_bench_mrc_collection_statstack(benchmark):
    """Ablation: StatStack-style statistical MRC (cheaper profiling)."""
    trace = build_trace(STRONG_SCALING["pf"])
    curve = benchmark.pedantic(
        collect_miss_rate_curve,
        args=(trace,),
        kwargs={"method": "statstack"},
        rounds=1,
        iterations=1,
    )
    assert len(curve) == 5

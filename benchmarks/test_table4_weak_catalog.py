"""Table IV: weak-scaling benchmark configurations.

Checks the weak-scaling catalog (six scalable benchmarks), the input
scaling rule (CTAs and footprint double per system-size doubling), and
the MCM subset.
"""

import pytest

from conftest import emit
from repro.analysis.tables import render_table
from repro.workloads import (
    MCM_WEAK_BENCHMARKS,
    WEAK_SCALING,
    ScalingBehavior,
    build_trace,
    weak_scaling_names,
)


class TestTable4:
    def test_regenerate_table4(self):
        rows = []
        for abbr in weak_scaling_names():
            spec = WEAK_SCALING[abbr]
            for w in (1, 2, 4, 8, 16):
                trace = build_trace(spec, work_scale=w)
                rows.append([
                    abbr if w == 1 else "",
                    f"x{w}",
                    trace.num_ctas,
                    f"{spec.footprint_mb * w:.1f}",
                    spec.weak_scaling.value,
                    "MCM" if (spec.mcm and w in (4, 8, 16)) else "",
                ])
        emit(render_table(
            ["bench", "input", "#CTAs", "MB", "scaling", "mcm"],
            rows, title="Table IV: weak-scaling configurations",
        ))
        assert len(rows) == 30

    def test_six_weak_benchmarks(self):
        assert weak_scaling_names() == ["bfs", "bs", "btree", "as", "bp", "va"]

    def test_weak_classes_match_paper(self):
        expected = {
            "bfs": ScalingBehavior.SUB_LINEAR,
            "bs": ScalingBehavior.SUB_LINEAR,
            "btree": ScalingBehavior.LINEAR,
            "as": ScalingBehavior.LINEAR,
            "bp": ScalingBehavior.LINEAR,
            "va": ScalingBehavior.LINEAR,
        }
        for abbr, scaling in expected.items():
            assert WEAK_SCALING[abbr].weak_scaling == scaling

    def test_mcm_subset_excludes_btree(self):
        assert set(MCM_WEAK_BENCHMARKS) == {"bfs", "bs", "as", "bp", "va"}
        assert not WEAK_SCALING["btree"].mcm

    def test_work_scales_with_input(self):
        for abbr in weak_scaling_names():
            spec = WEAK_SCALING[abbr]
            small = build_trace(spec, work_scale=1).count_accesses()
            large = build_trace(spec, work_scale=4).count_accesses()
            assert large == pytest.approx(4 * small, rel=0.25), abbr


def test_bench_weak_trace_scaling(benchmark):
    """Generating a 16x weak-scaled trace (the 128-SM input)."""
    spec = WEAK_SCALING["va"]
    trace = benchmark.pedantic(
        build_trace, args=(spec,), kwargs={"work_scale": 16.0},
        rounds=1, iterations=1,
    )
    assert trace.num_ctas == 8192

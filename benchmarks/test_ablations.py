"""Ablation studies called out in DESIGN.md.

1. Scale-model choice: 16/32-SM models instead of 8/16 (the artifact
   appendix reports higher errors for strong scaling — the 32-SM model is
   an outlier for some benchmarks).
2. MRC collection method: exact stack distance vs exact multi-capacity
   LRU vs StatStack approximation — cost and predicted-region agreement.
3. Cliff-detection threshold sensitivity around the paper's 2x rule.
"""

import pytest

from conftest import emit
from repro.analysis.experiments import figure4_strong_accuracy
from repro.analysis.tables import render_table
from repro.mrc import analyze_regions, collect_miss_rate_curve
from repro.mrc.cliff import CLIFF_DROP_THRESHOLD
from repro.workloads import STRONG_SCALING, build_trace


class TestScaleModelChoiceAblation:
    """Artifact appendix: predicting from 16/32-SM scale models."""

    @pytest.fixture(scope="class")
    def with_16_32(self, runner):
        return figure4_strong_accuracy(128, runner=runner, scale_sizes=(16, 32))

    @pytest.fixture(scope="class")
    def with_8_16(self, runner):
        return figure4_strong_accuracy(128, runner=runner, scale_sizes=(8, 16))

    def test_regenerate(self, with_16_32):
        emit(with_16_32.as_text())

    def test_scale_model_still_beats_log_and_proportional(self, with_16_32):
        sm = with_16_32.mean_error("scale-model")
        assert with_16_32.mean_error("logarithmic") > sm
        assert with_16_32.mean_error("proportional") > sm * 0.9

    def test_comparison_table(self, with_8_16, with_16_32):
        rows = [
            ["8/16 SMs",
             f"{100 * with_8_16.mean_error('scale-model'):.1f}%",
             f"{100 * with_8_16.max_error('scale-model'):.1f}%"],
            ["16/32 SMs",
             f"{100 * with_16_32.mean_error('scale-model'):.1f}%",
             f"{100 * with_16_32.max_error('scale-model'):.1f}%"],
        ]
        emit(render_table(["scale models", "avg", "max"], rows,
                          title="Ablation: scale-model choice (128-SM target)"))


class TestMrcMethodAblation:
    BENCH = "dct"

    @pytest.fixture(scope="class")
    def curves(self):
        out = {}
        for method in ("stack", "lru", "statstack"):
            trace = build_trace(STRONG_SCALING[self.BENCH])
            out[method] = collect_miss_rate_curve(trace, method=method)
        return out

    def test_exact_methods_agree(self, curves):
        assert curves["stack"].mpki == pytest.approx(curves["lru"].mpki)

    def test_statstack_finds_the_same_cliff(self, curves):
        exact = analyze_regions(curves["stack"])
        approx = analyze_regions(curves["statstack"])
        assert exact.cliff_step == approx.cliff_step

    def test_costs_reported(self, curves):
        rows = [
            [m, f"{c.metadata['collection_seconds']:.2f}s"]
            + [f"{v:.2f}" for v in c.mpki]
            for m, c in curves.items()
        ]
        emit(render_table(
            ["method", "cost", "2.125MB", "4.25MB", "8.5MB", "17MB", "34MB"],
            rows, title=f"Ablation: MRC methods ({self.BENCH})",
        ))


class TestCliffThresholdAblation:
    def test_threshold_sensitivity(self, runner):
        """The paper's 2x rule: nearby thresholds find the same cliffs for
        the archetype benchmarks; an extreme threshold misses them."""
        rows = []
        for abbr in ("dct", "bfs", "pf"):
            curve = runner.miss_rate_curve(STRONG_SCALING[abbr])
            steps = []
            for threshold in (1.5, CLIFF_DROP_THRESHOLD, 3.0, 10.0):
                steps.append(analyze_regions(curve, threshold).cliff_step)
            rows.append([abbr] + [str(s) for s in steps])
        emit(render_table(
            ["bench", "t=1.5", "t=2.0", "t=3.0", "t=10"],
            rows, title="Ablation: cliff threshold",
        ))
        dct_row = rows[0]
        assert dct_row[2] == "3"  # paper threshold finds the 17->34 cliff
        bfs_row = rows[1]
        assert bfs_row[2] == "None"  # no false positive on gradual curves


class TestSubstrateKnobAblations:
    """Optional-fidelity knobs: NoC topology and DRAM backend."""

    BENCH = "pf"  # bandwidth-sensitive linear workload

    def _simulate(self, **config_overrides):
        from dataclasses import replace

        from repro.gpu import GPUConfig, simulate
        from repro.workloads import STRONG_SCALING, build_trace

        cfg = replace(GPUConfig.paper_system(16), **config_overrides)
        trace = build_trace(STRONG_SCALING[self.BENCH],
                            capacity_scale=cfg.capacity_scale)
        return simulate(cfg, trace)

    def test_noc_topology_ordering(self):
        xbar = self._simulate()
        mesh = self._simulate(noc_topology="mesh")
        rows = [
            ["crossbar", f"{xbar.ipc:.1f}"],
            ["mesh", f"{mesh.ipc:.1f}"],
        ]
        emit(render_table(["topology", "IPC (pf @16SM)"], rows,
                          title="Ablation: NoC topology"))
        assert mesh.ipc < xbar.ipc

    def test_dram_backend_comparison(self):
        simple = self._simulate()
        banked = self._simulate(dram_model="banked", latency_jitter=0.0)
        rows = [
            ["simple", f"{simple.ipc:.1f}"],
            ["banked", f"{banked.ipc:.1f}"],
        ]
        emit(render_table(["backend", "IPC (pf @16SM)"], rows,
                          title="Ablation: DRAM backend"))
        # Both land in the same regime (within 2x), confirming the flat
        # model is an adequate default for the methodology.
        assert 0.5 < banked.ipc / simple.ipc < 2.0


class TestThirdScaleModelAblation:
    """Does adding a 32-SM third scale model help each method?

    The scale-model predictor uses the smallest/largest pair either way;
    the regressions get a genuine third fitting point.
    """

    def test_three_point_fits(self, runner):
        two = figure4_strong_accuracy(128, runner=runner, scale_sizes=(8, 16))
        three = figure4_strong_accuracy(
            128, runner=runner, scale_sizes=(8, 16, 32)
        )
        rows = []
        for method in ("proportional", "linear", "power-law", "scale-model"):
            rows.append([
                method,
                f"{100 * two.mean_error(method):.1f}%",
                f"{100 * three.mean_error(method):.1f}%",
            ])
        emit(render_table(
            ["method", "8/16 models", "8/16/32 models"], rows,
            title="Ablation: third scale model (128-SM target)",
        ))
        # The scale-model method keeps using the trend between its extreme
        # models and must not get dramatically worse with the extra point.
        assert three.mean_error("scale-model") < 2 * two.mean_error("scale-model")


class TestWorkloadCharacterization:
    """Table II cross-check: measured footprints and reuse factors."""

    def test_characterization_table(self):
        from repro.mrc.characterize import characterize
        from repro.workloads import build_trace

        rows = []
        for abbr in ("dct", "bfs", "pf", "ht", "gemm"):
            spec = STRONG_SCALING[abbr]
            ch = characterize(build_trace(spec), max_accesses=80000)
            rows.append([
                abbr,
                f"{ch.footprint_mb():.1f}",
                f"{spec.footprint_mb:g}",
                f"{ch.reuse_factor:.1f}",
                spec.scaling.value,
            ])
        emit(render_table(
            ["bench", "measured MB*", "Table II MB", "reuse", "class"],
            rows,
            title=("Ablation: trace characterization "
                   "(*prefix-sampled; sweep traces cover the hot set)"),
        ))
        assert len(rows) == 5


class TestSensitivityAblation:
    def test_input_sensitivity_table(self, runner):
        from repro.core.profile import ScaleModelProfile
        from repro.core.sensitivity import sensitivity_report

        spec = STRONG_SCALING["dct"]
        sims = {n: runner.simulate(spec, n) for n in (8, 16)}
        profile = ScaleModelProfile(
            "dct", (8, 16), (sims[8].ipc, sims[16].ipc),
            f_mem=sims[16].memory_stall_fraction,
            curve=runner.miss_rate_curve(spec),
        )
        report = sensitivity_report(profile, 128)
        emit(render_table(["input", "perturbation", "prediction change"],
                          report.as_rows(),
                          title="Ablation: predictor input sensitivity (dct)"))
        # Crossing a cliff: f_mem error is material.
        assert report.worst_case("f_mem") > 0.02


def test_bench_full_fig4_prediction_pipeline(benchmark, runner):
    """End-to-end prediction cost for all 21 benchmarks (simulation
    results cached; this times the analysis pipeline itself)."""
    result = benchmark.pedantic(
        figure4_strong_accuracy, args=(128,), kwargs={"runner": runner},
        rounds=1, iterations=1,
    )
    assert len(result.actuals) == 21


class TestTrainedGlobalModelAblation:
    """Section II's argument, quantified: the prior-work approach (a
    one-size-fits-all model *trained* on other benchmarks) versus the
    paper's per-workload prediction."""

    def test_leave_one_out_vs_scale_model(self, runner):
        from repro.core.trained import leave_one_out_errors

        curves = {
            abbr: {n: runner.simulate(spec, n).ipc
                   for n in (8, 16, 32, 64, 128)}
            for abbr, spec in STRONG_SCALING.items()
        }
        trained = leave_one_out_errors(curves, anchor_size=16, target_size=128)
        fig4 = figure4_strong_accuracy(128, runner=runner)

        rows = []
        for abbr in sorted(trained):
            rows.append([
                abbr,
                f"{100 * trained[abbr]:.1f}%",
                f"{100 * fig4.errors['scale-model'][abbr]:.1f}%",
            ])
        trained_avg = sum(trained.values()) / len(trained)
        rows.append(["avg", f"{100 * trained_avg:.1f}%",
                     f"{100 * fig4.mean_error('scale-model'):.1f}%"])
        emit(render_table(
            ["bench", "trained global model", "per-workload scale-model"],
            rows,
            title="Ablation: trained one-size-fits-all vs per-workload",
        ))
        assert trained_avg > fig4.mean_error("scale-model")
        # The trained model's worst case (a super-linear workload predicted
        # from the others) is far beyond scale-model's worst case.
        assert max(trained.values()) > fig4.max_error("scale-model")

"""Shared fixtures for the paper-reproduction benchmark harness.

Every module regenerates one table or figure of the paper.  Heavy
simulations go through a session-scoped :class:`CachedRunner`, so the
first full run populates the sharded store under ``results/simcache/``
and later runs are nearly instantaneous.  Human-readable experiment
output is printed with
``-s`` (or captured into the pytest report otherwise).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from repro.analysis.runner import CachedRunner  # noqa: E402

CACHE_PATH = os.environ.get("REPRO_SIMCACHE", "results/simcache")


@pytest.fixture(scope="session")
def runner() -> CachedRunner:
    return CachedRunner(CACHE_PATH)


def emit(text: str) -> None:
    """Print experiment output (shown with ``pytest -s`` or on failure)."""
    print()
    print(text)

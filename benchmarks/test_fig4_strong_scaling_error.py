"""Figure 4: strong-scaling prediction error, 128-SM and 64-SM targets.

The paper's headline: scale-model simulation is substantially more
accurate than proportional scaling and one-size-fits-all regression.
The harness regenerates the per-benchmark error bars for all five
methods and asserts the ordering the paper reports.
"""

import pytest

from conftest import emit
from repro.analysis.experiments import figure4_strong_accuracy
from repro.core.baselines import make_predictor
from repro.core.model import ScaleModelPredictor
from repro.workloads import STRONG_SCALING, ScalingBehavior


@pytest.fixture(scope="module")
def fig4a(runner):
    return figure4_strong_accuracy(128, runner=runner)


@pytest.fixture(scope="module")
def fig4b(runner):
    return figure4_strong_accuracy(64, runner=runner)


class TestFigure4a:
    def test_regenerate(self, fig4a):
        emit(fig4a.as_text())
        assert len(fig4a.errors["scale-model"]) == 21

    def test_scale_model_most_accurate_on_average(self, fig4a):
        assert fig4a.best_method() == "scale-model"

    def test_logarithmic_is_worst(self, fig4a):
        means = {m: fig4a.mean_error(m) for m in fig4a.errors}
        assert max(means, key=means.get) == "logarithmic"
        assert means["logarithmic"] > 0.5

    def test_error_bands(self, fig4a):
        """Paper: scale-model 4% avg / 17% max; ours lands in the same
        regime (single-digit-to-low-double-digit avg, max well under the
        baselines' worst cases)."""
        assert fig4a.mean_error("scale-model") < 0.22
        assert fig4a.max_error("scale-model") < 0.55
        assert fig4a.mean_error("proportional") > fig4a.mean_error("scale-model")
        assert fig4a.mean_error("power-law") > fig4a.mean_error("scale-model")
        assert fig4a.mean_error("linear") > fig4a.mean_error("scale-model")

    def test_baselines_fail_on_super_linear(self, fig4a):
        """Proportional/linear/power-law fundamentally miss the cliff."""
        supers = [
            abbr for abbr, spec in STRONG_SCALING.items()
            if spec.scaling is ScalingBehavior.SUPER_LINEAR
        ]
        for method in ("proportional", "linear", "power-law"):
            worst = max(fig4a.errors[method][b] for b in supers)
            assert worst > 0.25, method

    def test_all_accurate_on_linear(self, fig4a):
        linears = [
            abbr for abbr, spec in STRONG_SCALING.items()
            if spec.scaling is ScalingBehavior.LINEAR
        ]
        for method in ("scale-model", "proportional", "linear", "power-law"):
            avg = sum(fig4a.errors[method][b] for b in linears) / len(linears)
            assert avg < 0.12, method


class TestFigure4b:
    def test_regenerate(self, fig4b):
        emit(fig4b.as_text())

    def test_scale_model_best_at_64(self, fig4b):
        assert fig4b.best_method() == "scale-model"
        assert fig4b.mean_error("scale-model") < 0.10

    def test_64_easier_than_128(self, fig4a, fig4b):
        assert (
            fig4b.mean_error("scale-model") <= fig4a.mean_error("scale-model")
        )


def test_bench_prediction_is_instantaneous(benchmark, runner):
    """The artifact's claim: 'the prediction step is instantaneous'."""
    from repro.core.profile import ScaleModelProfile

    spec = STRONG_SCALING["dct"]
    sims = {n: runner.simulate(spec, n) for n in (8, 16)}
    profile = ScaleModelProfile(
        workload="dct", sizes=(8, 16),
        ipcs=(sims[8].ipc, sims[16].ipc),
        f_mem=sims[16].memory_stall_fraction,
        curve=runner.miss_rate_curve(spec),
    )

    def predict_all():
        predictor = ScaleModelPredictor(profile)
        return [predictor.predict(t).ipc for t in (32, 64, 128)]

    values = benchmark(predict_all)
    assert all(v > 0 for v in values)


def test_bench_baseline_fit_and_predict(benchmark):
    def fit_predict():
        out = []
        for name in ("proportional", "linear", "power-law", "logarithmic"):
            p = make_predictor(name).fit([8, 16], [100.0, 190.0])
            out.append(p.predict(128))
        return out

    assert len(benchmark(fit_predict)) == 4

"""Table I / Table III: system configurations via proportional scaling.

Regenerates the configuration table and benchmarks the derivation cost
(which the paper's methodology relies on being trivial).
"""

import pytest

from conftest import emit
from repro.analysis.experiments import table1_rows, table1_text
from repro.gpu.config import GPUConfig
from repro.units import GBPS, MB


class TestTable1:
    def test_regenerate_table1(self):
        emit(table1_text())
        rows = {r["#SMs"]: r for r in table1_rows()}
        assert rows["128"]["LLC"] == "34 MB, 32 slices"
        assert rows["8"]["LLC"] == "2.125 MB, 2 slices"
        assert "145 GB/s per MC" in rows["64"]["Main memory"]

    def test_llc_ladder_matches_paper(self):
        expected_mb = {128: 34.0, 64: 17.0, 32: 8.5, 16: 4.25, 8: 2.125}
        for sms, mb in expected_mb.items():
            assert GPUConfig.paper_system(sms).llc_size == pytest.approx(mb * MB)

    def test_memory_controllers_scale(self):
        expected = {128: 16, 64: 8, 32: 4, 16: 2, 8: 1}
        for sms, mcs in expected.items():
            cfg = GPUConfig.paper_system(sms)
            assert cfg.num_mcs == mcs
            assert cfg.mc_bandwidth_bps == pytest.approx(145 * GBPS)


def test_bench_config_derivation(benchmark):
    """Deriving a scale model from the baseline is microseconds."""
    base = GPUConfig.paper_baseline()
    result = benchmark(lambda: [base.scaled(n) for n in (8, 16, 32, 64)])
    assert len(result) == 4

"""Figure 5: real versus predicted IPC curves for twelve benchmarks.

The paper plots four benchmarks per scaling class; the harness prints the
same series (real, scale-model, proportional, linear, power-law) and
asserts that the scale-model prediction tracks the real trend where the
baselines do not.
"""

import pytest

from conftest import emit
from repro.analysis.experiments import FIG5_BENCHMARKS, figure5_prediction_curves


@pytest.fixture(scope="module")
def fig5(runner):
    return figure5_prediction_curves(FIG5_BENCHMARKS, runner)


class TestFigure5:
    def test_regenerate(self, fig5):
        emit(fig5.as_text())
        assert len(fig5.benchmarks) == 12

    def test_scale_model_tracks_real_at_targets(self, fig5):
        """Scale-model predictions stay within 45% of real IPC at every
        target for every plotted benchmark (the baselines blow through
        100%+ on the super-linear row)."""
        for bench in fig5.benchmarks:
            for target in (32, 64, 128):
                pred = fig5.predicted[bench]["scale-model"][target]
                real = fig5.real[bench][target]
                assert abs(pred - real) / real < 0.45, (bench, target)

    def test_proportional_misses_super_linear_row(self, fig5):
        for bench in ("dct", "fwt", "as", "lu"):
            pred = fig5.predicted[bench]["proportional"][128]
            real = fig5.real[bench][128]
            assert abs(pred - real) / real > 0.2, bench

    def test_scale_model_beats_proportional_on_super_linear(self, fig5):
        for bench in ("dct", "fwt", "as", "lu"):
            sm = abs(fig5.predicted[bench]["scale-model"][128]
                     - fig5.real[bench][128])
            prop = abs(fig5.predicted[bench]["proportional"][128]
                       - fig5.real[bench][128])
            assert sm < prop, bench

    def test_scale_models_anchor_the_curves(self, fig5):
        """The 8/16-SM points of the real series are the inputs the
        predictor saw; sanity-check they are present and ordered."""
        for bench in fig5.benchmarks:
            assert fig5.real[bench][8] < fig5.real[bench][16]

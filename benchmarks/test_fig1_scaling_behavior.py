"""Figure 1: performance versus system size under strong scaling.

The paper's Figure 1 shows three archetypes — super-linear (dct),
sub-linear (bfs) and linear (pf).  The harness regenerates the IPC
series for all five paper system sizes, checks the classification against
Table II for the whole suite, and benchmarks one detailed simulation.
"""

import pytest

from conftest import emit
from repro.analysis.experiments import figure1_scaling
from repro.gpu import GPUConfig, simulate
from repro.workloads import STRONG_SCALING, build_trace, strong_scaling_names


@pytest.fixture(scope="module")
def fig1(runner):
    return figure1_scaling(("dct", "bfs", "pf"), runner)


class TestFigure1:
    def test_regenerate_fig1(self, fig1):
        emit(fig1.as_text())
        for bench in fig1.benchmarks:
            emit(fig1.plot(bench))
        assert fig1.all_match

    def test_dct_has_cliff_jump(self, fig1):
        ipcs = fig1.ipcs["dct"]
        assert ipcs[128] / ipcs[64] > 2.3

    def test_bfs_decelerates(self, fig1):
        ipcs = fig1.ipcs["bfs"]
        normalized = (ipcs[128] / ipcs[8]) / 16
        assert normalized < 0.80

    def test_pf_tracks_linear(self, fig1):
        ipcs = fig1.ipcs["pf"]
        normalized = (ipcs[128] / ipcs[8]) / 16
        assert 0.80 < normalized < 1.1


class TestFullSuiteClassification:
    """Every Table II benchmark reproduces its published scaling class."""

    @pytest.mark.parametrize("abbr", strong_scaling_names())
    def test_scaling_class(self, abbr, runner):
        result = figure1_scaling((abbr,), runner)
        assert result.measured_class[abbr] == result.expected_class[abbr], (
            f"{abbr}: measured {result.measured_class[abbr]}, "
            f"paper says {result.expected_class[abbr]}"
        )


def test_bench_detailed_simulation_8sm(benchmark):
    """Wall-clock of one 8-SM scale-model simulation (bfs)."""
    def run():
        config = GPUConfig.paper_system(8)
        trace = build_trace(STRONG_SCALING["bfs"],
                            capacity_scale=config.capacity_scale)
        return simulate(config, trace)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ipc > 0

"""Artifact-appendix reproduction: the prediction-tool workflow.

The paper's artifact ships scale-model IPCs, f_mem values and miss-rate
curves so target predictions can be re-derived without simulation.  This
harness exports the equivalent bundle from cached runs and verifies the
``gpu-scale-model`` CLI reproduces the library's predictions from the
bundle alone — the artifact round-trip.
"""

import io
import json
import os

import pytest

from conftest import emit
from repro.analysis.artifact import export_artifact, strong_benchmark_record
from repro.core.cli import build_parser, run


class TestArtifactBundle:
    @pytest.fixture(scope="class")
    def bundle_dir(self, runner, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("artifact"))
        export_artifact(out, runner=runner,
                        benchmarks=("dct", "bfs", "pf"),
                        weak_benchmarks=("va",))
        return out

    def test_bundle_files_exist(self, bundle_dir):
        for rel in ("configs.json", "summary.json",
                    "strong/dct.json", "weak/va.json"):
            assert os.path.exists(os.path.join(bundle_dir, rel)), rel

    def test_record_carries_everything_the_cli_needs(self, bundle_dir):
        with open(os.path.join(bundle_dir, "strong", "dct.json")) as fh:
            record = json.load(fh)
        assert set(record["scale_model_ipc"]) == {"8", "16"}
        assert len(record["miss_rate_curve"]["mpki"]) == 5
        assert 0.0 <= record["f_mem"] < 1.0

    def test_cli_round_trip(self, bundle_dir):
        """Feeding a record back through the artifact CLI reproduces the
        library's scale-model predictions digit for digit."""
        with open(os.path.join(bundle_dir, "strong", "dct.json")) as fh:
            record = json.load(fh)
        argv = [
            str(record["scale_model_ipc"]["8"]),
            str(record["scale_model_ipc"]["16"]),
            *[str(m) for m in record["miss_rate_curve"]["mpki"]],
            "--small-sms", "8",
            "--f-mem", str(record["f_mem"]),
        ]
        out = io.StringIO()
        assert run(build_parser().parse_args(argv), out=out) == 0
        text = out.getvalue()
        emit(text)
        for target in ("32", "64", "128"):
            expected = record["predictions"]["scale-model"][target]
            assert f"{expected:.1f}" in text, target

    def test_summary_reports_errors(self, bundle_dir):
        with open(os.path.join(bundle_dir, "summary.json")) as fh:
            summary = json.load(fh)
        assert summary["strong"]["dct"]["scale-model"]["128"] < 0.6

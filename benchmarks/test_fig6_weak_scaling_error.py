"""Figure 6: weak-scaling prediction error for 32/64/128-SM targets.

Paper: scale-model simulation is the most accurate method, 1.7% average
and 4.5% max at 128 SMs; errors are generally lower than under strong
scaling because no cliff can occur.
"""

import pytest

from conftest import emit
from repro.analysis.experiments import figure6_weak_accuracy


@pytest.fixture(scope="module")
def fig6(runner):
    return figure6_weak_accuracy(runner=runner)


class TestFigure6:
    def test_regenerate(self, fig6):
        for target, result in sorted(fig6.items()):
            emit(result.as_text())
        assert set(fig6) == {32, 64, 128}

    def test_scale_model_accurate_at_128(self, fig6):
        result = fig6[128]
        assert result.mean_error("scale-model") < 0.12
        assert result.max_error("scale-model") < 0.30

    def test_scale_model_beats_log_and_proportional(self, fig6):
        """Logarithmic loses everywhere; proportional loses once the
        target is further than one doubling from the largest scale model
        (at 32 SMs every method interpolates trivially well)."""
        for target, result in fig6.items():
            sm = result.mean_error("scale-model")
            assert result.mean_error("logarithmic") > sm
            if target > 32:
                assert result.mean_error("proportional") >= sm * 0.99

    def test_weak_easier_than_strong_for_scale_model(self, fig6, runner):
        from repro.analysis.experiments import figure4_strong_accuracy

        strong = figure4_strong_accuracy(128, runner=runner)
        assert (
            fig6[128].mean_error("scale-model")
            < strong.mean_error("scale-model")
        )

    def test_sub_linear_weak_benchmarks_hardest(self, fig6):
        """Paper: 'the highest errors are observed for bfs and bs'."""
        result = fig6[128]
        errs = result.errors["scale-model"]
        hardest = max(errs, key=errs.get)
        assert hardest in ("bfs", "bs")

"""Table V: the 16-chiplet MCM target system configuration."""

import pytest

from conftest import emit
from repro.analysis.experiments import table5_text
from repro.gpu.config import McmConfig
from repro.units import GBPS, GHZ, MB


class TestTable5:
    def test_regenerate(self):
        emit(table5_text())

    def test_paper_values(self):
        cfg = McmConfig.paper_target()
        assert cfg.num_chiplets == 16
        assert cfg.chiplet.num_sms == 64
        assert cfg.total_sms == 1024
        assert cfg.chiplet.sm_clock_hz == pytest.approx(1.7 * GHZ)
        assert cfg.chiplet.llc_size == 18 * MB
        assert cfg.chiplet.llc_slices == 64
        assert cfg.chiplet.noc_bisection_bps == pytest.approx(1700 * GBPS)
        assert cfg.inter_chiplet_bw_per_chiplet_bps == pytest.approx(900 * GBPS)
        assert cfg.chiplet.num_mcs == 8
        assert cfg.chiplet.dram_bandwidth_bps == pytest.approx(1200 * GBPS)

    def test_scale_models_fix_chiplet(self):
        target = McmConfig.paper_target()
        for chiplets in (4, 8):
            model = target.scaled(chiplets)
            assert model.chiplet == target.chiplet
            assert model.num_chiplets == chiplets


def test_bench_mcm_scaling(benchmark):
    target = McmConfig.paper_target()
    models = benchmark(lambda: [target.scaled(c) for c in (4, 8)])
    assert [m.total_sms for m in models] == [256, 512]

"""Experiment runners: one function per table and figure of the paper.

Every runner returns a structured result object with an ``as_text()``
rendering that prints the same rows/series the paper reports.  Runners
take a :class:`~repro.analysis.runner.CachedRunner` so repeated
invocations (tests, benchmarks, the CLI) reuse simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.ascii_plot import plot_series
from repro.analysis.classify import classify_scaling
from repro.analysis.parallel import RunRequest
from repro.analysis.runner import CachedRunner
from repro.analysis.tables import render_percent, render_table
from repro.core.accuracy import ErrorSummary, geometric_mean, summarize_errors
from repro.core.baselines import METHOD_NAMES, make_predictor
from repro.core.model import ScaleModelPredictor
from repro.core.profile import ScaleModelProfile
from repro.exceptions import PredictionError
from repro.gpu.config import (
    PAPER_MCM_SIZES,
    PAPER_SCALE_MODEL_SIZES,
    PAPER_SYSTEM_SIZES,
    GPUConfig,
    McmConfig,
)
from repro.mrc.cliff import analyze_regions
from repro.workloads import (
    MCM_WEAK_BENCHMARKS,
    STRONG_SCALING,
    WEAK_SCALING,
    strong_scaling_names,
    weak_scaling_names,
)

#: Benchmarks shown in Figure 4 (the paper plots 18 of the 21; lbm, pf and
#: bs appear in Table II but 4a/4b label 18 bars + avg — we include all 21
#: and report both subsets).
FIG5_BENCHMARKS = (
    "dct", "fwt", "as", "lu",      # super-linear row
    "bfs", "gr", "sr", "btree",    # sub-linear row
    "pf", "ht", "at", "gemm",      # linear row
)


def _prefetch(runner, requests: Sequence[RunRequest]) -> None:
    """Hand the figure's full run list to the runner's worker pool.

    Each experiment enumerates its runs up front and submits them as one
    batch, so cache misses execute in parallel when the runner has a
    pool (``jobs > 1``); runners without a ``prefetch`` method (fakes in
    tests) fall back to lazy in-process execution.
    """
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None and requests:
        prefetch(requests)


# ---------------------------------------------------------------------------
# Tables I / III / V: configuration derivations.
# ---------------------------------------------------------------------------

def table1_rows() -> List[Dict[str, str]]:
    """Table I: scale models derived through proportional resource scaling."""
    rows = []
    for sms in sorted(PAPER_SYSTEM_SIZES, reverse=True):
        row = GPUConfig.paper_system(sms).describe()
        row["role"] = "target" if sms >= 32 else "scale model"
        rows.append(row)
    return rows


def table1_text() -> str:
    rows = table1_rows()
    return render_table(
        ["role", "#SMs", "LLC", "NoC bisection BW", "Main memory"],
        [
            [r["role"], r["#SMs"], r["LLC"], r["NoC bisection BW"], r["Main memory"]]
            for r in rows
        ],
        title="Table I: proportional resource scaling",
    )


def table5_text() -> str:
    desc = McmConfig.paper_target().describe()
    return render_table(
        ["parameter", "value"],
        list(desc.items()),
        title="Table V: 16-chiplet MCM target system",
    )


# ---------------------------------------------------------------------------
# Table II / Figure 1 / Figure 2: scaling behaviour and miss-rate curves.
# ---------------------------------------------------------------------------

@dataclass
class ScalingCurves:
    """IPC-versus-size curves plus classification (Figure 1 / Table II)."""

    benchmarks: List[str]
    sizes: Tuple[int, ...]
    ipcs: Dict[str, Dict[int, float]]
    measured_class: Dict[str, str]
    expected_class: Dict[str, str]

    @property
    def all_match(self) -> bool:
        return all(
            self.measured_class[b] == self.expected_class[b]
            for b in self.benchmarks
        )

    def as_text(self) -> str:
        rows = []
        for bench in self.benchmarks:
            row = [bench]
            row += [f"{self.ipcs[bench][s]:.0f}" for s in self.sizes]
            row += [self.expected_class[bench], self.measured_class[bench]]
            rows.append(row)
        headers = ["bench"] + [f"{s}SM" for s in self.sizes] + ["paper", "measured"]
        return render_table(headers, rows, title="Figure 1 / Table II: IPC vs system size")

    def plot(self, bench: str) -> str:
        ipcs = [self.ipcs[bench][s] for s in self.sizes]
        linear = [ipcs[0] * s / self.sizes[0] for s in self.sizes]
        return plot_series(
            [float(s) for s in self.sizes],
            {"real IPC": ipcs, "linear scaling": linear},
            title=f"{bench}: performance vs system size",
            x_label="#SMs",
        )


def figure1_scaling(
    benchmarks: Sequence[str] = ("dct", "bfs", "pf"),
    runner: Optional[CachedRunner] = None,
    sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
) -> ScalingCurves:
    """Figure 1 (and the Table II classification check)."""
    runner = runner or CachedRunner()
    _prefetch(runner, [
        RunRequest("sim", STRONG_SCALING[abbr], size=n)
        for abbr in benchmarks
        for n in sizes
    ])
    ipcs: Dict[str, Dict[int, float]] = {}
    measured, expected = {}, {}
    for abbr in benchmarks:
        spec = STRONG_SCALING[abbr]
        ipcs[abbr] = {n: runner.simulate(spec, n).ipc for n in sizes}
        measured[abbr] = classify_scaling(
            [ipcs[abbr][n] for n in sizes], list(sizes)
        ).value
        expected[abbr] = spec.scaling.value
    return ScalingCurves(
        benchmarks=list(benchmarks),
        sizes=tuple(sizes),
        ipcs=ipcs,
        measured_class=measured,
        expected_class=expected,
    )


@dataclass
class MissRateCurves:
    """Figure 2: MPKI versus LLC capacity."""

    benchmarks: List[str]
    capacities_mb: Tuple[float, ...]
    mpki: Dict[str, Tuple[float, ...]]
    cliff_step: Dict[str, Optional[int]]

    def as_text(self) -> str:
        rows = []
        for bench in self.benchmarks:
            row = [bench] + [f"{m:.2f}" for m in self.mpki[bench]]
            step = self.cliff_step[bench]
            row.append("-" if step is None else f"{self.capacities_mb[step]:g}->"
                        f"{self.capacities_mb[step + 1]:g} MB")
            rows.append(row)
        headers = ["bench"] + [f"{c:g}MB" for c in self.capacities_mb] + ["cliff"]
        return render_table(headers, rows, title="Figure 2: miss rate curves (MPKI)")


def figure2_miss_rate_curves(
    benchmarks: Sequence[str] = ("dct", "bfs", "pf"),
    runner: Optional[CachedRunner] = None,
) -> MissRateCurves:
    runner = runner or CachedRunner()
    _prefetch(runner, [
        RunRequest("mrc", STRONG_SCALING[abbr]) for abbr in benchmarks
    ])
    mpki, cliffs = {}, {}
    caps_mb: Tuple[float, ...] = ()
    for abbr in benchmarks:
        curve = runner.miss_rate_curve(STRONG_SCALING[abbr])
        caps_mb = curve.capacities_mb
        mpki[abbr] = curve.mpki
        cliffs[abbr] = analyze_regions(curve).cliff_step
    return MissRateCurves(
        benchmarks=list(benchmarks),
        capacities_mb=caps_mb,
        mpki=mpki,
        cliff_step=cliffs,
    )


# ---------------------------------------------------------------------------
# Figures 4/5/6: prediction accuracy.
# ---------------------------------------------------------------------------

@dataclass
class AccuracyExperiment:
    """Per-benchmark, per-method prediction errors for one target size."""

    scenario: str
    target_size: int
    scale_sizes: Tuple[int, ...]
    errors: Dict[str, Dict[str, float]]  # method -> benchmark -> error
    predictions: Dict[str, Dict[str, float]] = field(default_factory=dict)
    actuals: Dict[str, float] = field(default_factory=dict)

    def summaries(self) -> List[ErrorSummary]:
        return summarize_errors(self.errors)

    def mean_error(self, method: str) -> float:
        per_bench = self.errors[method]
        return sum(per_bench.values()) / len(per_bench)

    def max_error(self, method: str) -> float:
        return max(self.errors[method].values())

    def best_method(self) -> str:
        return min(self.errors, key=self.mean_error)

    def as_text(self) -> str:
        benches = sorted(next(iter(self.errors.values())))
        rows = []
        for bench in benches:
            rows.append(
                [bench]
                + [render_percent(self.errors[m][bench]) for m in METHOD_NAMES]
            )
        rows.append(
            ["avg"]
            + [render_percent(self.mean_error(m)) for m in METHOD_NAMES]
        )
        rows.append(
            ["max"]
            + [render_percent(self.max_error(m)) for m in METHOD_NAMES]
        )
        return render_table(
            ["bench"] + list(METHOD_NAMES),
            rows,
            title=(
                f"{self.scenario} scaling, {self.target_size}-SM target "
                f"(scale models: {'/'.join(map(str, self.scale_sizes))} SMs)"
            ),
        )


def _strong_profile(
    abbr: str, runner: CachedRunner, scale_sizes: Sequence[int]
) -> ScaleModelProfile:
    spec = STRONG_SCALING[abbr]
    sims = {n: runner.simulate(spec, n) for n in scale_sizes}
    return ScaleModelProfile(
        workload=abbr,
        sizes=tuple(scale_sizes),
        ipcs=tuple(sims[n].ipc for n in scale_sizes),
        f_mem=sims[max(scale_sizes)].memory_stall_fraction,
        curve=runner.miss_rate_curve(spec),
    )


def figure4_strong_accuracy(
    target_size: int = 128,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[CachedRunner] = None,
    scale_sizes: Sequence[int] = PAPER_SCALE_MODEL_SIZES,
) -> AccuracyExperiment:
    """Figure 4a (128-SM target) / 4b (64-SM target)."""
    runner = runner or CachedRunner()
    benches = list(benchmarks or strong_scaling_names())
    _prefetch(runner, [
        RunRequest("sim", STRONG_SCALING[abbr], size=n)
        for abbr in benches
        for n in (*scale_sizes, target_size)
    ] + [RunRequest("mrc", STRONG_SCALING[abbr]) for abbr in benches])
    errors = {m: {} for m in METHOD_NAMES}
    predictions: Dict[str, Dict[str, float]] = {m: {} for m in METHOD_NAMES}
    actuals = {}
    for abbr in benches:
        spec = STRONG_SCALING[abbr]
        profile = _strong_profile(abbr, runner, scale_sizes)
        actual = runner.simulate(spec, target_size).ipc
        actuals[abbr] = actual
        predictor = ScaleModelPredictor(profile)
        for method in METHOD_NAMES:
            if method == "scale-model":
                pred = predictor.predict(target_size).ipc
            else:
                pred = (
                    make_predictor(method)
                    .fit(profile.sizes, profile.ipcs)
                    .predict(target_size)
                )
            predictions[method][abbr] = pred
            errors[method][abbr] = abs(pred - actual) / actual
    return AccuracyExperiment(
        scenario="strong",
        target_size=target_size,
        scale_sizes=tuple(scale_sizes),
        errors=errors,
        predictions=predictions,
        actuals=actuals,
    )


@dataclass
class PredictionCurves:
    """Figure 5: real vs predicted IPC as a function of system size."""

    benchmarks: List[str]
    sizes: Tuple[int, ...]
    real: Dict[str, Dict[int, float]]
    predicted: Dict[str, Dict[str, Dict[int, float]]]  # bench -> method -> size

    def as_text(self) -> str:
        blocks = []
        methods = ["scale-model", "proportional", "linear", "power-law"]
        for bench in self.benchmarks:
            rows = [["real"] + [f"{self.real[bench][s]:.0f}" for s in self.sizes]]
            for m in methods:
                rows.append(
                    [m]
                    + [
                        f"{self.predicted[bench][m].get(s, float('nan')):.0f}"
                        if s in self.predicted[bench][m]
                        else "-"
                        for s in self.sizes
                    ]
                )
            blocks.append(
                render_table(
                    ["series"] + [f"{s}SM" for s in self.sizes],
                    rows,
                    title=f"Figure 5: {bench}",
                )
            )
        return "\n\n".join(blocks)


def figure5_prediction_curves(
    benchmarks: Sequence[str] = FIG5_BENCHMARKS,
    runner: Optional[CachedRunner] = None,
    scale_sizes: Sequence[int] = PAPER_SCALE_MODEL_SIZES,
    target_sizes: Sequence[int] = (32, 64, 128),
) -> PredictionCurves:
    runner = runner or CachedRunner()
    real: Dict[str, Dict[int, float]] = {}
    predicted: Dict[str, Dict[str, Dict[int, float]]] = {}
    sizes = tuple(sorted(set(scale_sizes) | set(target_sizes)))
    _prefetch(runner, [
        RunRequest("sim", STRONG_SCALING[abbr], size=n)
        for abbr in benchmarks
        for n in sizes
    ] + [RunRequest("mrc", STRONG_SCALING[abbr]) for abbr in benchmarks])
    for abbr in benchmarks:
        spec = STRONG_SCALING[abbr]
        profile = _strong_profile(abbr, runner, scale_sizes)
        real[abbr] = {n: runner.simulate(spec, n).ipc for n in sizes}
        predictor = ScaleModelPredictor(profile)
        predicted[abbr] = {"scale-model": {}}
        for t in target_sizes:
            predicted[abbr]["scale-model"][t] = predictor.predict(t).ipc
        for method in ("proportional", "linear", "power-law", "logarithmic"):
            fitted = make_predictor(method).fit(profile.sizes, profile.ipcs)
            predicted[abbr][method] = {t: fitted.predict(t) for t in target_sizes}
    return PredictionCurves(
        benchmarks=list(benchmarks), sizes=sizes, real=real, predicted=predicted
    )


def figure6_weak_accuracy(
    target_sizes: Sequence[int] = (32, 64, 128),
    runner: Optional[CachedRunner] = None,
    scale_sizes: Sequence[int] = PAPER_SCALE_MODEL_SIZES,
    base_size: int = 8,
) -> Dict[int, AccuracyExperiment]:
    """Figure 6: weak-scaling prediction error per target size."""
    runner = runner or CachedRunner()
    _prefetch(runner, [
        RunRequest("sim", WEAK_SCALING[abbr], size=n, work_scale=n / base_size)
        for abbr in weak_scaling_names()
        for n in sorted(set(scale_sizes) | set(target_sizes))
    ])
    out = {}
    for target in target_sizes:
        errors = {m: {} for m in METHOD_NAMES}
        predictions: Dict[str, Dict[str, float]] = {m: {} for m in METHOD_NAMES}
        actuals = {}
        for abbr in weak_scaling_names():
            spec = WEAK_SCALING[abbr]
            sims = {
                n: runner.simulate(spec, n, work_scale=n / base_size)
                for n in scale_sizes
            }
            profile = ScaleModelProfile(
                workload=abbr,
                sizes=tuple(scale_sizes),
                ipcs=tuple(sims[n].ipc for n in scale_sizes),
                f_mem=sims[max(scale_sizes)].memory_stall_fraction,
                curve=None,
            )
            actual = runner.simulate(spec, target, work_scale=target / base_size).ipc
            actuals[abbr] = actual
            predictor = ScaleModelPredictor(profile)
            for method in METHOD_NAMES:
                if method == "scale-model":
                    pred = predictor.predict(target).ipc
                else:
                    pred = (
                        make_predictor(method)
                        .fit(profile.sizes, profile.ipcs)
                        .predict(target)
                    )
                predictions[method][abbr] = pred
                errors[method][abbr] = abs(pred - actual) / actual
        out[target] = AccuracyExperiment(
            scenario="weak",
            target_size=target,
            scale_sizes=tuple(scale_sizes),
            errors=errors,
            predictions=predictions,
            actuals=actuals,
        )
    return out


# ---------------------------------------------------------------------------
# Figure 7: weak-scaling simulation speedup.
# ---------------------------------------------------------------------------

@dataclass
class SpeedupExperiment:
    """Figure 7: simulation-time speedup of scale-model prediction."""

    target_sizes: Tuple[int, ...]
    speedups: Dict[str, Dict[int, float]]  # benchmark -> target -> speedup

    def average(self, target: int) -> float:
        return geometric_mean([s[target] for s in self.speedups.values()])

    def as_text(self) -> str:
        rows = []
        for bench, per_target in self.speedups.items():
            rows.append(
                [bench] + [f"{per_target[t]:.1f}x" for t in self.target_sizes]
            )
        rows.append(
            ["avg"] + [f"{self.average(t):.1f}x" for t in self.target_sizes]
        )
        return render_table(
            ["bench"] + [f"{t}SM" for t in self.target_sizes],
            rows,
            title="Figure 7: simulation speedup under weak scaling",
        )


def figure7_speedup(
    runner: Optional[CachedRunner] = None,
    target_sizes: Sequence[int] = (32, 64, 128),
    scale_sizes: Sequence[int] = PAPER_SCALE_MODEL_SIZES,
    base_size: int = 8,
) -> SpeedupExperiment:
    """Speedup = target simulation time / total scale-model simulation time.

    Wall-clock times come from the recorded runs; the cache stores them, so
    the numbers reflect the first (real) execution of each simulation.
    """
    runner = runner or CachedRunner()
    _prefetch(runner, [
        RunRequest("sim", WEAK_SCALING[abbr], size=n, work_scale=n / base_size)
        for abbr in weak_scaling_names()
        for n in sorted(set(scale_sizes) | set(target_sizes))
    ])
    speedups: Dict[str, Dict[int, float]] = {}
    for abbr in weak_scaling_names():
        spec = WEAK_SCALING[abbr]
        scale_cost = sum(
            runner.simulate(spec, n, work_scale=n / base_size).wall_time_s
            for n in scale_sizes
        )
        speedups[abbr] = {}
        for target in target_sizes:
            target_cost = runner.simulate(
                spec, target, work_scale=target / base_size
            ).wall_time_s
            if scale_cost <= 0:
                raise PredictionError("scale-model wall time not recorded")
            speedups[abbr][target] = target_cost / scale_cost
    return SpeedupExperiment(
        target_sizes=tuple(target_sizes), speedups=speedups
    )


# ---------------------------------------------------------------------------
# Figure 8: multi-chiplet case study.
# ---------------------------------------------------------------------------

def figure8_mcm_accuracy(
    runner: Optional[CachedRunner] = None,
    scale_chiplets: Sequence[int] = (4, 8),
    target_chiplets: int = 16,
) -> AccuracyExperiment:
    """Figure 8: 16-chiplet prediction from 4- and 8-chiplet scale models.

    Weak scaling with work proportional to chiplet count, per the MCM rows
    of Table IV.
    """
    runner = runner or CachedRunner()
    _prefetch(runner, [
        RunRequest("mcm", WEAK_SCALING[abbr], size=c, work_scale=float(c))
        for abbr in MCM_WEAK_BENCHMARKS
        for c in (*scale_chiplets, target_chiplets)
    ])
    errors = {m: {} for m in METHOD_NAMES}
    predictions: Dict[str, Dict[str, float]] = {m: {} for m in METHOD_NAMES}
    actuals = {}
    for abbr in MCM_WEAK_BENCHMARKS:
        spec = WEAK_SCALING[abbr]
        sims = {
            c: runner.simulate_mcm(spec, c, work_scale=float(c))
            for c in scale_chiplets
        }
        profile = ScaleModelProfile(
            workload=abbr,
            sizes=tuple(scale_chiplets),
            ipcs=tuple(sims[c].ipc for c in scale_chiplets),
            f_mem=sims[max(scale_chiplets)].memory_stall_fraction,
            curve=None,
        )
        actual = runner.simulate_mcm(
            spec, target_chiplets, work_scale=float(target_chiplets)
        ).ipc
        actuals[abbr] = actual
        predictor = ScaleModelPredictor(profile)
        for method in METHOD_NAMES:
            if method == "scale-model":
                pred = predictor.predict(target_chiplets).ipc
            else:
                pred = (
                    make_predictor(method)
                    .fit(profile.sizes, profile.ipcs)
                    .predict(target_chiplets)
                )
            predictions[method][abbr] = pred
            errors[method][abbr] = abs(pred - actual) / actual
    return AccuracyExperiment(
        scenario="mcm-weak",
        target_size=target_chiplets,
        scale_sizes=tuple(scale_chiplets),
        errors=errors,
        predictions=predictions,
        actuals=actuals,
    )

"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified; columns are left-aligned except cells that look
    numeric, which are right-aligned.
    """
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    columns = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != columns:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(headers[c]), max((len(r[c]) for r in str_rows), default=0))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        cells = []
        for c, cell in enumerate(row):
            if _is_numeric(cell):
                cells.append(cell.rjust(widths[c]))
            else:
                cells.append(cell.ljust(widths[c]))
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    stripped = text.replace("%", "").replace("x", "").strip()
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def render_percent(value: float) -> str:
    """0.042 -> '4.2%'."""
    return f"{100 * value:.1f}%"

"""Parallel, fault-tolerant execution of simulation batches.

The experiment harness is embarrassingly parallel: every figure/table is
a set of independent (benchmark, size) runs, each a pure function of its
spec, scale and seed.  :class:`ParallelRunner` takes a batch of
:class:`RunRequest` descriptors, drops the ones the result store already
has, executes the misses across a ``ProcessPoolExecutor`` and merges the
results back into the store in deterministic (key-sorted) order.

Faults are isolated per run, never per batch:

* Runs are submitted individually, so one raising worker costs one run.
* Failed attempts are retried with exponential backoff, up to
  ``ExecutionPolicy.max_retries`` times.
* A per-run timeout watchdog (``ExecutionPolicy.run_timeout``) abandons
  hung runs and recycles the pool so their workers stop occupying slots.
* ``BrokenProcessPool`` (worker OOM/segfault) respawns the pool and
  resumes the remaining runs; after ``max_pool_deaths`` deaths the batch
  degrades to serial in-process execution.
* Completed results always merge into the store — even when the batch
  ultimately raises :class:`repro.exceptions.ExecutionError` — and every
  casualty lands in the append-only failure manifest
  (``results/failures/<shard>.jsonl``) with enough context to re-run.
* A graceful shutdown (SIGINT/SIGTERM through
  :mod:`repro.resilience`, or a bare ``KeyboardInterrupt``) *drains*:
  nothing new starts, in-flight runs finish and merge, undone runs are
  recorded ``interrupted``, and only then does the batch re-raise so
  the CLI can exit resumable.
* ``MemoryError`` under the ``REPRO_MAX_RSS`` ceiling is terminal for
  that run (status ``oom``, never retried); the pool initializer
  applies the ceiling per worker and ignores SIGINT so the coordinator
  owns the drain.
* On ``keep_going`` batches a per-config circuit breaker skips configs
  whose manifest shows a streak of terminal failures
  (``--retry-quarantined`` re-arms them; a success closes the streak).

Serial execution of the same batch produces identical payloads for every
deterministic field; only ``wall_time_s`` (a host-time measurement)
differs between executions.
"""

from __future__ import annotations

import heapq
import itertools
import os
import signal
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import runner as _runner
from repro.analysis.faults import (
    FAILED,
    INTERRUPTED,
    OK,
    OOM,
    SKIPPED,
    TIMEOUT,
    BatchReport,
    ExecutionPolicy,
    FailureManifest,
    RunOutcome,
    kernel_kill_hook,
    maybe_inject,
    retryable,
)
from repro.analysis.simcache import ResultStore
from repro.checkpoint import CheckpointPolicy, default_checkpoint_interval
from repro.exceptions import ExecutionError, ReproError, ShutdownRequested
from repro.obs.profile_hooks import ensure_worker
from repro.obs.tracing import get_tracer
from repro.resilience import CircuitBreaker, apply_memory_limit, get_coordinator
from repro.verify.runtime import ensure_paranoia
from repro.workloads.spec import BenchmarkSpec

__all__ = [
    "RunRequest",
    "ParallelRunner",
    "execute_request",
    "execute_attempt",
    "worker_init",
    "shutdown_pool",
]

KINDS = ("sim", "mcm", "mrc")


@dataclass(frozen=True)
class RunRequest:
    """One pending run: a timing sim, an MCM sim or an MRC collection.

    ``size`` is the SM count for ``sim``, the chiplet count for ``mcm``
    and unused for ``mrc``; ``method`` only applies to ``mrc``.
    """

    kind: str
    spec: BenchmarkSpec
    size: int = 0
    work_scale: float = 1.0
    seed: int = 0
    method: str = "stack"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown run kind {self.kind!r}")

    @property
    def key(self) -> str:
        if self.kind == "sim":
            return _runner.sim_key(self.spec, self.size, self.work_scale, self.seed)
        if self.kind == "mcm":
            return _runner.mcm_key(self.spec, self.size, self.work_scale, self.seed)
        return _runner.mrc_key(self.spec, self.work_scale, self.method, self.seed)


def execute_request(
    request: RunRequest, checkpointer=None
) -> Tuple[str, str, dict]:
    """Run one request to completion; returns ``(key, shard, payload)``.

    Module-level and pure so it pickles into pool workers; also the
    serial fallback, so both paths share one implementation.
    """
    if request.kind == "sim":
        result = _runner.compute_sim(
            request.spec, request.size, request.work_scale, request.seed,
            checkpointer=checkpointer,
        )
        payload = asdict(result)
    elif request.kind == "mcm":
        result = _runner.compute_mcm(
            request.spec, request.size, request.work_scale, request.seed,
            checkpointer=checkpointer,
        )
        payload = asdict(result)
    else:
        curve = _runner.compute_mrc(
            request.spec, request.work_scale, request.method, request.seed
        )
        payload = _runner.curve_payload(curve)
    return request.key, request.spec.abbr, payload


def _checkpointer_for(request: RunRequest, checkpoint, allow_exit: bool):
    """Per-attempt checkpointer from a :class:`CheckpointPolicy`, or None.

    MRC collections have no kernel boundaries to snapshot; the
    ``die-at-kernel`` fault hook is armed here so an injected crash only
    fires after a snapshot is durable.
    """
    if checkpoint is None or request.kind == "mrc":
        return None
    return checkpoint.checkpointer_for(
        request.key,
        on_checkpoint=kernel_kill_hook(
            request.key, request.kind, request.spec.abbr,
            allow_exit=allow_exit,
        ),
    )


def execute_attempt(
    request: RunRequest,
    attempt: int = 1,
    allow_exit: bool = True,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> Tuple[str, str, dict, dict]:
    """One guarded attempt: fault injection first, then the real run.

    The attempt number travels with the call so ``fail:<prefix>:<n>``
    directives behave deterministically even though worker processes
    share no state.  Returns ``(key, shard, payload, meta)``; ``meta``
    carries checkpoint-resume telemetry when the attempt restarted from
    a snapshot a dead predecessor left behind.

    This is also the pool workers' observability entry point:
    :func:`repro.obs.profile_hooks.ensure_worker` arms the hooks when
    ``REPRO_OBS`` is set (one env lookup otherwise) and the attempt's
    spans spill to ``REPRO_OBS_SPILL`` before the worker moves on, so
    the parent's exporter sees them even if the worker dies later.
    """
    ensure_worker()
    # Same self-arm for paranoia mode: pool workers inherit REPRO_VERIFY
    # through the environment, so a --verify campaign checks every run
    # regardless of which process executes it.  Curve checks in
    # particular hook ``runner.compute_mrc``, which never passes through
    # a simulator's own self-arm.
    ensure_paranoia()
    tracer = get_tracer()
    try:
        with tracer.span(
            f"attempt:{request.spec.abbr}", cat="run",
            kind=request.kind, attempt=attempt,
        ):
            maybe_inject(
                request.key, request.kind, request.spec.abbr, attempt,
                allow_exit=allow_exit,
            )
            checkpointer = _checkpointer_for(request, checkpoint, allow_exit)
            key, shard, payload = execute_request(
                request, checkpointer=checkpointer
            )
        meta = {}
        if checkpointer is not None and checkpointer.resumed_from is not None:
            meta = {
                "resumed_from_kernel": checkpointer.resumed_from,
                "cycles_saved": checkpointer.cycles_saved,
            }
        return key, shard, payload, meta
    finally:
        if tracer.enabled and tracer.spill_dir:
            tracer.flush_spill()


def worker_init() -> None:
    """Pool-worker bootstrap, run once per worker process.

    Workers share the foreground process group, so an operator Ctrl-C
    delivers SIGINT to every worker too — ignored here, because the
    *coordinator* owns the drain: in-flight runs must finish and have
    their results collected, not die mid-computation.  SIGTERM is reset
    to its *default* — forked workers inherit the coordinator's drain
    handler from the parent, which would otherwise swallow the SIGTERM
    that :func:`shutdown_pool` uses to put down hung workers.  The
    optional ``REPRO_MAX_RSS`` ceiling is applied per worker for the
    same reason: one pathological run should raise :class:`MemoryError`
    in its own process, not invite the OOM killer.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    apply_memory_limit()


def shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers.

    ``shutdown(wait=True)`` would block forever behind a hung run, so
    workers are terminated outright; every task we still care about has
    already been retrieved or will be resubmitted to a fresh pool.
    """
    workers = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for worker in workers:
        try:
            worker.terminate()
        except Exception:
            pass


# Historical (pre-service) private names; the watchdog machinery is now
# shared with repro.service.supervisor, so the public names above are
# canonical.
_worker_init = worker_init
_shutdown_pool = shutdown_pool


class _BatchState:
    """Mutable pool-health bookkeeping threaded through one batch."""

    def __init__(self) -> None:
        self.pool_deaths = 0
        self.degraded = False


def _outcome(
    request: RunRequest,
    status: str,
    attempts: int,
    error: Optional[str] = None,
    meta: Optional[dict] = None,
) -> RunOutcome:
    meta = meta or {}
    return RunOutcome(
        key=request.key,
        kind=request.kind,
        shard=request.spec.abbr,
        status=status,
        attempts=attempts,
        error=error,
        size=request.size,
        work_scale=request.work_scale,
        seed=request.seed,
        method=request.method,
        resumed_from_kernel=meta.get("resumed_from_kernel"),
        cycles_saved=float(meta.get("cycles_saved", 0.0)),
    )


class ParallelRunner:
    """Executes the cache misses of a request batch across processes.

    ``policy`` governs retries, timeouts and degradation (see
    :class:`repro.analysis.faults.ExecutionPolicy`); the failure manifest
    is written under ``<store parent>/failures/`` unless ``manifest_root``
    overrides it (``None`` with a memory-only store disables it).
    ``checkpoint`` governs intra-run snapshots: by default (with a
    persistent store) runs checkpoint under ``<store parent>/checkpoints/``
    and a retried run resumes from its latest valid snapshot; pass an
    explicit :class:`repro.checkpoint.CheckpointPolicy` to relocate or
    disable it.  Memory-only stores never checkpoint.
    """

    def __init__(
        self,
        store: ResultStore,
        jobs: int = 0,
        policy: Optional[ExecutionPolicy] = None,
        manifest_root: Optional[str] = None,
        checkpoint: Optional[CheckpointPolicy] = None,
    ) -> None:
        self.store = store
        self.jobs = jobs if jobs >= 1 else _runner.default_jobs()
        self.policy = policy or ExecutionPolicy()
        if manifest_root is None and store.root:
            manifest_root = os.path.join(
                os.path.dirname(store.root), "failures"
            )
        self.manifest = FailureManifest(manifest_root)
        if checkpoint is None and store.root:
            checkpoint = CheckpointPolicy(
                root=os.path.join(
                    os.path.dirname(store.root) or ".", "checkpoints"
                ),
                interval=default_checkpoint_interval(),
            )
        self.checkpoint = checkpoint
        self.last_report = BatchReport()

    def run_batch(self, requests: Iterable[RunRequest]) -> int:
        """Compute every miss in ``requests``; returns the executed count.

        Thin wrapper over :meth:`run_batch_report` for callers that only
        need the count.
        """
        return self.run_batch_report(requests).executed

    def run_batch_report(self, requests: Iterable[RunRequest]) -> BatchReport:
        """Compute every miss in ``requests``; returns the full report.

        Duplicate descriptors are collapsed; results merge into the
        store sorted by key, so the shard contents do not depend on
        worker scheduling.  Completed results are merged *before* any
        failure propagates; failed runs are appended to the failure
        manifest and — unless ``policy.keep_going`` — reported as one
        :class:`repro.exceptions.ExecutionError` at the end.

        A graceful shutdown (:class:`repro.exceptions.ShutdownRequested`
        from the coordinator, or a bare :class:`KeyboardInterrupt`)
        honours the same contract: completed results merge, unfinished
        runs land in the manifest as ``interrupted``, and the exception
        re-raises only afterwards — so the CLI boundary can exit with
        the resumable code without losing anything.
        """
        unique: Dict[str, RunRequest] = {}
        for request in requests:
            unique.setdefault(request.key, request)
        pending = [
            request
            for key, request in unique.items()
            if not self.store.contains(key)
        ]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "batch.submit", cat="run",
                args={"requested": len(unique), "pending": len(pending)},
            )
        if not pending:
            self.last_report = BatchReport()
            return self.last_report
        outcomes: Dict[str, RunOutcome] = {}
        executed: List[Tuple[str, str, dict]] = []
        state = _BatchState()
        pending, breaker = self._apply_breaker(pending, outcomes)
        shutdown: Optional[BaseException] = None
        try:
            if pending:
                if self.jobs <= 1 or len(pending) == 1:
                    self._run_serial(
                        [(request, 1) for request in pending],
                        outcomes, executed,
                    )
                else:
                    self._run_pool(pending, outcomes, executed, state)
        except (ShutdownRequested, KeyboardInterrupt) as exc:
            # Partial-progress contract for interrupts too: fall through
            # to the merge/manifest below, then re-raise.
            shutdown = exc
        finally:
            # Whatever completed must reach the store even if the
            # coordination loop itself blew up.
            self._merge(executed)
        if shutdown is not None:
            for request in pending:
                if request.key not in outcomes:
                    outcomes[request.key] = _outcome(
                        request, INTERRUPTED, 0,
                        "graceful shutdown: run was never started",
                    )
        report = BatchReport(
            outcomes=tuple(outcomes[key] for key in sorted(outcomes)),
            pool_deaths=state.pool_deaths,
            degraded_to_serial=state.degraded,
        )
        self.last_report = report
        for outcome in report.outcomes:
            if outcome.resumed:
                self.store.record_resume(outcome.cycles_saved)
        to_record = list(report.manifest_outcomes)
        if breaker.enabled:
            # A success after recorded failures appends an ``ok`` record
            # so the breaker's streak for that config closes.
            to_record.extend(
                outcome
                for outcome in report.outcomes
                if outcome.ok and breaker.consecutive_failures(outcome.key) > 0
            )
        if to_record:
            self.manifest.append(to_record)
        if shutdown is not None:
            raise shutdown
        failures = report.failures
        if failures and not self.policy.keep_going:
            where = (
                f"; failure manifest: {self.manifest.root}"
                if self.manifest.root
                else ""
            )
            raise ExecutionError(
                f"{len(failures)} of {len(pending)} runs failed "
                f"({report.summary()}); {report.executed} completed "
                f"results were saved{where}"
            )
        return report

    def _apply_breaker(
        self,
        pending: List[RunRequest],
        outcomes: Dict[str, RunOutcome],
    ) -> Tuple[List[RunRequest], CircuitBreaker]:
        """Drop breaker-tripped configs from a ``keep_going`` batch.

        Tripped runs get a ``skipped`` outcome (zero attempts, not
        re-recorded in the manifest).  Only ``keep_going`` batches skip:
        a fail-fast batch is the operator explicitly asking for the
        error.  ``retry_quarantined`` forces every config through.
        """
        breaker = CircuitBreaker(
            self.manifest.root, self.policy.breaker_threshold
        )
        if (
            not self.policy.keep_going
            or self.policy.retry_quarantined
            or not breaker.enabled
        ):
            return pending, breaker
        kept: List[RunRequest] = []
        for request in pending:
            if breaker.tripped(request.key):
                outcomes[request.key] = _outcome(
                    request, SKIPPED, 0,
                    "circuit breaker open: "
                    f"{breaker.consecutive_failures(request.key)} "
                    "consecutive terminal failures in "
                    f"{self.manifest.root}; rerun with --retry-quarantined "
                    "to retry this config",
                )
            else:
                kept.append(request)
        skipped = len(pending) - len(kept)
        if skipped:
            warnings.warn(
                f"circuit breaker: skipping {skipped} config(s) with "
                f">= {breaker.threshold} consecutive terminal failures "
                "on record; rerun with --retry-quarantined to retry them"
            )
        return kept, breaker

    # --- execution paths -------------------------------------------------------
    def _run_serial(
        self,
        items: List[Tuple[RunRequest, int]],
        outcomes: Dict[str, RunOutcome],
        executed: List[Tuple[str, str, dict]],
    ) -> None:
        """In-process execution with retries; also the degradation path.

        Per-run timeouts cannot be enforced from within the executing
        process, so ``run_timeout`` only applies to pool execution.
        Between runs the shutdown coordinator is consulted: a requested
        drain marks the not-yet-started remainder ``interrupted`` and
        raises, leaving completed results for the caller to merge.
        """
        policy = self.policy
        coordinator = get_coordinator()
        for index, (request, attempt) in enumerate(items):
            if coordinator.requested:
                for late_request, late_attempt in items[index:]:
                    outcomes[late_request.key] = _outcome(
                        late_request, INTERRUPTED, late_attempt - 1,
                        "graceful shutdown: run was never started",
                    )
                coordinator.check()
            while True:
                try:
                    key, shard, payload, meta = execute_attempt(
                        request, attempt, allow_exit=False,
                        checkpoint=self.checkpoint,
                    )
                except Exception as error:
                    if retryable(error) and attempt <= policy.max_retries:
                        tracer = get_tracer()
                        if tracer.enabled:
                            tracer.instant(
                                "run.retry", cat="run",
                                args={"key": request.key, "attempt": attempt},
                            )
                        time.sleep(policy.backoff(attempt))
                        attempt += 1
                        continue
                    status = OOM if isinstance(error, MemoryError) else FAILED
                    outcomes[request.key] = _outcome(
                        request, status, attempt, traceback.format_exc()
                    )
                    break
                executed.append((key, shard, payload))
                outcomes[request.key] = _outcome(
                    request, OK, attempt, meta=meta
                )
                break

    def _run_pool(
        self,
        pending: List[RunRequest],
        outcomes: Dict[str, RunOutcome],
        executed: List[Tuple[str, str, dict]],
        state: _BatchState,
    ) -> None:
        policy = self.policy
        coordinator = get_coordinator()
        workers = min(self.jobs, len(pending))
        queue = deque((request, 1) for request in pending)
        # Min-heap of (ready_time, seq, request, attempt); seq breaks
        # ties because RunRequest does not order.
        retries: List[Tuple[float, int, RunRequest, int]] = []
        seq = itertools.count()
        inflight: Dict = {}  # future -> (request, attempt, deadline)
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=worker_init
        )
        try:
            while queue or retries or inflight:
                if coordinator.requested:
                    self._drain(inflight, queue, retries, outcomes, executed)
                    coordinator.check()  # raises ShutdownRequested
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    _, _, request, attempt = heapq.heappop(retries)
                    queue.append((request, attempt))
                broken = False
                # Keep at most ``workers`` runs in flight so each run's
                # timeout clock starts when it actually starts running.
                while queue and len(inflight) < workers:
                    request, attempt = queue.popleft()
                    deadline = (
                        now + policy.run_timeout
                        if policy.run_timeout
                        else float("inf")
                    )
                    try:
                        future = pool.submit(
                            execute_attempt, request, attempt, True,
                            self.checkpoint,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        queue.appendleft((request, attempt))
                        broken = True
                        break
                    inflight[future] = (request, attempt, deadline)
                if not broken and not inflight:
                    if retries:
                        time.sleep(
                            max(0.0, retries[0][0] - time.monotonic())
                        )
                        continue
                    break
                if not broken:
                    next_deadline = min(d for _, _, d in inflight.values())
                    next_retry = retries[0][0] if retries else float("inf")
                    horizon = min(next_deadline, next_retry)
                    timeout = (
                        None
                        if horizon == float("inf")
                        else max(0.01, horizon - time.monotonic())
                    )
                    done, _ = wait(
                        set(inflight), timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        request, attempt, _ = inflight.pop(future)
                        try:
                            key, shard, payload, meta = future.result()
                        except BrokenProcessPool:
                            # The casualty is unknown (any worker may have
                            # died); resubmit at the same attempt number.
                            queue.append((request, attempt))
                            broken = True
                        except Exception as error:
                            if (
                                retryable(error)
                                and attempt <= policy.max_retries
                            ):
                                tracer = get_tracer()
                                if tracer.enabled:
                                    tracer.instant(
                                        "run.retry", cat="run",
                                        args={
                                            "key": request.key,
                                            "attempt": attempt,
                                        },
                                    )
                                heapq.heappush(
                                    retries,
                                    (
                                        time.monotonic()
                                        + policy.backoff(attempt),
                                        next(seq),
                                        request,
                                        attempt + 1,
                                    ),
                                )
                            else:
                                status = (
                                    OOM
                                    if isinstance(error, MemoryError)
                                    else FAILED
                                )
                                outcomes[request.key] = _outcome(
                                    request, status, attempt,
                                    traceback.format_exc(),
                                )
                        else:
                            executed.append((key, shard, payload))
                            outcomes[request.key] = _outcome(
                                request, OK, attempt, meta=meta
                            )
                if broken:
                    for future, (request, attempt, _) in inflight.items():
                        queue.append((request, attempt))
                    inflight.clear()
                    state.pool_deaths += 1
                    tracer = get_tracer()
                    if tracer.enabled:
                        tracer.instant(
                            "pool.death", cat="run",
                            args={"deaths": state.pool_deaths},
                        )
                    shutdown_pool(pool)
                    if state.pool_deaths >= policy.max_pool_deaths:
                        state.degraded = True
                        if tracer.enabled:
                            tracer.instant(
                                "pool.degrade", cat="run",
                                args={
                                    "remaining": len(queue) + len(retries),
                                },
                            )
                        warnings.warn(
                            f"parallel runner: worker pool died "
                            f"{state.pool_deaths} times; degrading to "
                            f"serial execution for the remaining "
                            f"{len(queue) + len(retries)} runs"
                        )
                        remaining = list(queue) + [
                            (request, attempt)
                            for _, _, request, attempt in sorted(retries)
                        ]
                        queue.clear()
                        retries.clear()
                        self._run_serial(remaining, outcomes, executed)
                        return
                    pool = ProcessPoolExecutor(
                        max_workers=workers, initializer=worker_init
                    )
                    continue
                # Per-run timeout sweep: abandon expired runs, recycle the
                # pool (a hung worker keeps its slot forever otherwise)
                # and resubmit the innocent in-flight runs.
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, _, deadline) in inflight.items()
                    if deadline <= now
                ]
                if expired:
                    tracer = get_tracer()
                    for future in expired:
                        request, attempt, _ = inflight.pop(future)
                        future.cancel()
                        if tracer.enabled:
                            tracer.instant(
                                "run.timeout", cat="run",
                                args={"key": request.key, "attempt": attempt},
                            )
                        outcomes[request.key] = _outcome(
                            request, TIMEOUT, attempt,
                            f"run exceeded the per-run timeout of "
                            f"{policy.run_timeout}s",
                        )
                    for future, (request, attempt, _) in inflight.items():
                        future.cancel()
                        queue.append((request, attempt))
                    inflight.clear()
                    shutdown_pool(pool)
                    pool = ProcessPoolExecutor(
                        max_workers=workers, initializer=worker_init
                    )
        finally:
            shutdown_pool(pool)

    def _drain(
        self,
        inflight: Dict,
        queue,
        retries: List,
        outcomes: Dict[str, RunOutcome],
        executed: List[Tuple[str, str, dict]],
    ) -> None:
        """First-signal drain: collect in-flight runs, park the rest.

        Nothing new is submitted.  Runs already executing are waited for
        (bounded by their own timeout deadlines, unbounded otherwise — a
        second signal force-quits) and their results collected; runs
        still queued or awaiting a retry slot are marked ``interrupted``
        with zero new attempts, so the manifest lists exactly what a
        rerun needs to pick up.
        """
        for request, attempt in queue:
            outcomes[request.key] = _outcome(
                request, INTERRUPTED, attempt - 1,
                "graceful shutdown: run was never started",
            )
        for _, _, request, attempt in retries:
            outcomes[request.key] = _outcome(
                request, INTERRUPTED, attempt - 1,
                "graceful shutdown: retry was never started",
            )
        queue.clear()
        retries.clear()
        if not inflight:
            return
        deadline = max(d for _, _, d in inflight.values())
        timeout = (
            None
            if deadline == float("inf")
            else max(0.01, deadline - time.monotonic())
        )
        done, not_done = wait(set(inflight), timeout=timeout)
        for future in done:
            request, attempt, _ = inflight.pop(future)
            try:
                key, shard, payload, meta = future.result()
            except BaseException:
                # No retries during a drain; a worker casualty here says
                # nothing about the config, so record it as interrupted.
                outcomes[request.key] = _outcome(
                    request, INTERRUPTED, attempt,
                    "graceful shutdown: attempt failed while draining:\n"
                    + traceback.format_exc(),
                )
            else:
                executed.append((key, shard, payload))
                outcomes[request.key] = _outcome(
                    request, OK, attempt, meta=meta
                )
        for future in not_done:
            request, attempt, _ = inflight.pop(future)
            future.cancel()
            outcomes[request.key] = _outcome(
                request, INTERRUPTED, attempt,
                "graceful shutdown: run abandoned at its timeout deadline",
            )
        inflight.clear()

    # --- merging ---------------------------------------------------------------
    def _merge(self, executed: List[Tuple[str, str, dict]]) -> None:
        """Merge completed results as one batched, key-sorted flush."""
        if not executed:
            return
        previous = self.store.flush_every
        self.store.flush_every = len(executed) + 1
        try:
            for key, shard, payload in sorted(executed, key=lambda item: item[0]):
                self.store.put(key, payload, shard=shard)
        finally:
            # Restore the batching window and flush whatever was staged
            # even if a put raised mid-merge — the store must never be
            # left holding unflushed records with an inflated window.
            self.store.flush_every = previous
            self.store.flush()

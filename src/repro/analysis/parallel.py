"""Parallel execution of simulation batches.

The experiment harness is embarrassingly parallel: every figure/table is
a set of independent (benchmark, size) runs, each a pure function of its
spec, scale and seed.  :class:`ParallelRunner` takes a batch of
:class:`RunRequest` descriptors, drops the ones the result store already
has, executes the misses across a ``ProcessPoolExecutor`` and merges the
results back into the store in deterministic (key-sorted) order.

Worker processes recompute nothing that is cached and communicate only
picklable inputs (frozen dataclass specs) and JSON payloads, so a worker
crash loses at most its own runs.  Serial execution of the same batch
produces identical payloads for every deterministic field; only
``wall_time_s`` (a host-time measurement) differs between executions.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Tuple

from repro.analysis import runner as _runner
from repro.analysis.simcache import ResultStore
from repro.exceptions import ReproError
from repro.workloads.spec import BenchmarkSpec

__all__ = ["RunRequest", "ParallelRunner"]

KINDS = ("sim", "mcm", "mrc")


@dataclass(frozen=True)
class RunRequest:
    """One pending run: a timing sim, an MCM sim or an MRC collection.

    ``size`` is the SM count for ``sim``, the chiplet count for ``mcm``
    and unused for ``mrc``; ``method`` only applies to ``mrc``.
    """

    kind: str
    spec: BenchmarkSpec
    size: int = 0
    work_scale: float = 1.0
    seed: int = 0
    method: str = "stack"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown run kind {self.kind!r}")

    @property
    def key(self) -> str:
        if self.kind == "sim":
            return _runner.sim_key(self.spec, self.size, self.work_scale, self.seed)
        if self.kind == "mcm":
            return _runner.mcm_key(self.spec, self.size, self.work_scale, self.seed)
        return _runner.mrc_key(self.spec, self.work_scale, self.method, self.seed)


def execute_request(request: RunRequest) -> Tuple[str, str, dict]:
    """Run one request to completion; returns ``(key, shard, payload)``.

    Module-level and pure so it pickles into pool workers; also the
    serial fallback, so both paths share one implementation.
    """
    if request.kind == "sim":
        result = _runner.compute_sim(
            request.spec, request.size, request.work_scale, request.seed
        )
        payload = asdict(result)
    elif request.kind == "mcm":
        result = _runner.compute_mcm(
            request.spec, request.size, request.work_scale, request.seed
        )
        payload = asdict(result)
    else:
        curve = _runner.compute_mrc(
            request.spec, request.work_scale, request.method, request.seed
        )
        payload = _runner.curve_payload(curve)
    return request.key, request.spec.abbr, payload


class ParallelRunner:
    """Executes the cache misses of a request batch across processes."""

    def __init__(self, store: ResultStore, jobs: int = 0) -> None:
        self.store = store
        self.jobs = jobs if jobs >= 1 else _runner.default_jobs()

    def run_batch(self, requests: Iterable[RunRequest]) -> int:
        """Compute every miss in ``requests``; returns the executed count.

        Duplicate descriptors are collapsed; results merge into the
        store sorted by key, so the shard contents do not depend on
        worker scheduling.
        """
        unique: Dict[str, RunRequest] = {}
        for request in requests:
            unique.setdefault(request.key, request)
        misses: List[Tuple[str, RunRequest]] = [
            (key, request)
            for key, request in unique.items()
            if not self.store.contains(key)
        ]
        if not misses:
            return 0
        pending = [request for _, request in misses]
        if self.jobs <= 1 or len(pending) == 1:
            executed = [execute_request(request) for request in pending]
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                executed = list(pool.map(execute_request, pending))
        # Merge as one batched flush: stage every record, write once.
        previous = self.store.flush_every
        self.store.flush_every = len(executed) + 1
        try:
            for key, shard, payload in sorted(executed, key=lambda item: item[0]):
                self.store.put(key, payload, shard=shard)
        finally:
            self.store.flush_every = previous
        self.store.flush()
        return len(executed)

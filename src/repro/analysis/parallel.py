"""Parallel, fault-tolerant execution of simulation batches.

The experiment harness is embarrassingly parallel: every figure/table is
a set of independent (benchmark, size) runs, each a pure function of its
spec, scale and seed.  :class:`ParallelRunner` takes a batch of
:class:`RunRequest` descriptors, drops the ones the result store already
has, executes the misses across a ``ProcessPoolExecutor`` and merges the
results back into the store in deterministic (key-sorted) order.

Faults are isolated per run, never per batch:

* Runs are submitted individually, so one raising worker costs one run.
* Failed attempts are retried with exponential backoff, up to
  ``ExecutionPolicy.max_retries`` times.
* A per-run timeout watchdog (``ExecutionPolicy.run_timeout``) abandons
  hung runs and recycles the pool so their workers stop occupying slots.
* ``BrokenProcessPool`` (worker OOM/segfault) respawns the pool and
  resumes the remaining runs; after ``max_pool_deaths`` deaths the batch
  degrades to serial in-process execution.
* Completed results always merge into the store — even when the batch
  ultimately raises :class:`repro.exceptions.ExecutionError` — and every
  casualty lands in the append-only failure manifest
  (``results/failures/<shard>.jsonl``) with enough context to re-run.

Serial execution of the same batch produces identical payloads for every
deterministic field; only ``wall_time_s`` (a host-time measurement)
differs between executions.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis import runner as _runner
from repro.analysis.faults import (
    FAILED,
    OK,
    TIMEOUT,
    BatchReport,
    ExecutionPolicy,
    FailureManifest,
    RunOutcome,
    kernel_kill_hook,
    maybe_inject,
)
from repro.analysis.simcache import ResultStore
from repro.checkpoint import CheckpointPolicy, default_checkpoint_interval
from repro.exceptions import ExecutionError, ReproError
from repro.obs.profile_hooks import ensure_worker
from repro.obs.tracing import get_tracer
from repro.workloads.spec import BenchmarkSpec

__all__ = ["RunRequest", "ParallelRunner", "execute_request", "execute_attempt"]

KINDS = ("sim", "mcm", "mrc")


@dataclass(frozen=True)
class RunRequest:
    """One pending run: a timing sim, an MCM sim or an MRC collection.

    ``size`` is the SM count for ``sim``, the chiplet count for ``mcm``
    and unused for ``mrc``; ``method`` only applies to ``mrc``.
    """

    kind: str
    spec: BenchmarkSpec
    size: int = 0
    work_scale: float = 1.0
    seed: int = 0
    method: str = "stack"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ReproError(f"unknown run kind {self.kind!r}")

    @property
    def key(self) -> str:
        if self.kind == "sim":
            return _runner.sim_key(self.spec, self.size, self.work_scale, self.seed)
        if self.kind == "mcm":
            return _runner.mcm_key(self.spec, self.size, self.work_scale, self.seed)
        return _runner.mrc_key(self.spec, self.work_scale, self.method, self.seed)


def execute_request(
    request: RunRequest, checkpointer=None
) -> Tuple[str, str, dict]:
    """Run one request to completion; returns ``(key, shard, payload)``.

    Module-level and pure so it pickles into pool workers; also the
    serial fallback, so both paths share one implementation.
    """
    if request.kind == "sim":
        result = _runner.compute_sim(
            request.spec, request.size, request.work_scale, request.seed,
            checkpointer=checkpointer,
        )
        payload = asdict(result)
    elif request.kind == "mcm":
        result = _runner.compute_mcm(
            request.spec, request.size, request.work_scale, request.seed,
            checkpointer=checkpointer,
        )
        payload = asdict(result)
    else:
        curve = _runner.compute_mrc(
            request.spec, request.work_scale, request.method, request.seed
        )
        payload = _runner.curve_payload(curve)
    return request.key, request.spec.abbr, payload


def _checkpointer_for(request: RunRequest, checkpoint, allow_exit: bool):
    """Per-attempt checkpointer from a :class:`CheckpointPolicy`, or None.

    MRC collections have no kernel boundaries to snapshot; the
    ``die-at-kernel`` fault hook is armed here so an injected crash only
    fires after a snapshot is durable.
    """
    if checkpoint is None or request.kind == "mrc":
        return None
    return checkpoint.checkpointer_for(
        request.key,
        on_checkpoint=kernel_kill_hook(
            request.key, request.kind, request.spec.abbr,
            allow_exit=allow_exit,
        ),
    )


def execute_attempt(
    request: RunRequest,
    attempt: int = 1,
    allow_exit: bool = True,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> Tuple[str, str, dict, dict]:
    """One guarded attempt: fault injection first, then the real run.

    The attempt number travels with the call so ``fail:<prefix>:<n>``
    directives behave deterministically even though worker processes
    share no state.  Returns ``(key, shard, payload, meta)``; ``meta``
    carries checkpoint-resume telemetry when the attempt restarted from
    a snapshot a dead predecessor left behind.

    This is also the pool workers' observability entry point:
    :func:`repro.obs.profile_hooks.ensure_worker` arms the hooks when
    ``REPRO_OBS`` is set (one env lookup otherwise) and the attempt's
    spans spill to ``REPRO_OBS_SPILL`` before the worker moves on, so
    the parent's exporter sees them even if the worker dies later.
    """
    ensure_worker()
    tracer = get_tracer()
    try:
        with tracer.span(
            f"attempt:{request.spec.abbr}", cat="run",
            kind=request.kind, attempt=attempt,
        ):
            maybe_inject(
                request.key, request.kind, request.spec.abbr, attempt,
                allow_exit=allow_exit,
            )
            checkpointer = _checkpointer_for(request, checkpoint, allow_exit)
            key, shard, payload = execute_request(
                request, checkpointer=checkpointer
            )
        meta = {}
        if checkpointer is not None and checkpointer.resumed_from is not None:
            meta = {
                "resumed_from_kernel": checkpointer.resumed_from,
                "cycles_saved": checkpointer.cycles_saved,
            }
        return key, shard, payload, meta
    finally:
        if tracer.enabled and tracer.spill_dir:
            tracer.flush_spill()


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers.

    ``shutdown(wait=True)`` would block forever behind a hung run, so
    workers are terminated outright; every task we still care about has
    already been retrieved or will be resubmitted to a fresh pool.
    """
    workers = list((getattr(pool, "_processes", None) or {}).values())
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for worker in workers:
        try:
            worker.terminate()
        except Exception:
            pass


class _BatchState:
    """Mutable pool-health bookkeeping threaded through one batch."""

    def __init__(self) -> None:
        self.pool_deaths = 0
        self.degraded = False


def _outcome(
    request: RunRequest,
    status: str,
    attempts: int,
    error: Optional[str] = None,
    meta: Optional[dict] = None,
) -> RunOutcome:
    meta = meta or {}
    return RunOutcome(
        key=request.key,
        kind=request.kind,
        shard=request.spec.abbr,
        status=status,
        attempts=attempts,
        error=error,
        size=request.size,
        work_scale=request.work_scale,
        seed=request.seed,
        method=request.method,
        resumed_from_kernel=meta.get("resumed_from_kernel"),
        cycles_saved=float(meta.get("cycles_saved", 0.0)),
    )


class ParallelRunner:
    """Executes the cache misses of a request batch across processes.

    ``policy`` governs retries, timeouts and degradation (see
    :class:`repro.analysis.faults.ExecutionPolicy`); the failure manifest
    is written under ``<store parent>/failures/`` unless ``manifest_root``
    overrides it (``None`` with a memory-only store disables it).
    ``checkpoint`` governs intra-run snapshots: by default (with a
    persistent store) runs checkpoint under ``<store parent>/checkpoints/``
    and a retried run resumes from its latest valid snapshot; pass an
    explicit :class:`repro.checkpoint.CheckpointPolicy` to relocate or
    disable it.  Memory-only stores never checkpoint.
    """

    def __init__(
        self,
        store: ResultStore,
        jobs: int = 0,
        policy: Optional[ExecutionPolicy] = None,
        manifest_root: Optional[str] = None,
        checkpoint: Optional[CheckpointPolicy] = None,
    ) -> None:
        self.store = store
        self.jobs = jobs if jobs >= 1 else _runner.default_jobs()
        self.policy = policy or ExecutionPolicy()
        if manifest_root is None and store.root:
            manifest_root = os.path.join(
                os.path.dirname(store.root), "failures"
            )
        self.manifest = FailureManifest(manifest_root)
        if checkpoint is None and store.root:
            checkpoint = CheckpointPolicy(
                root=os.path.join(
                    os.path.dirname(store.root) or ".", "checkpoints"
                ),
                interval=default_checkpoint_interval(),
            )
        self.checkpoint = checkpoint
        self.last_report = BatchReport()

    def run_batch(self, requests: Iterable[RunRequest]) -> int:
        """Compute every miss in ``requests``; returns the executed count.

        Thin wrapper over :meth:`run_batch_report` for callers that only
        need the count.
        """
        return self.run_batch_report(requests).executed

    def run_batch_report(self, requests: Iterable[RunRequest]) -> BatchReport:
        """Compute every miss in ``requests``; returns the full report.

        Duplicate descriptors are collapsed; results merge into the
        store sorted by key, so the shard contents do not depend on
        worker scheduling.  Completed results are merged *before* any
        failure propagates; failed runs are appended to the failure
        manifest and — unless ``policy.keep_going`` — reported as one
        :class:`repro.exceptions.ExecutionError` at the end.
        """
        unique: Dict[str, RunRequest] = {}
        for request in requests:
            unique.setdefault(request.key, request)
        pending = [
            request
            for key, request in unique.items()
            if not self.store.contains(key)
        ]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "batch.submit", cat="run",
                args={"requested": len(unique), "pending": len(pending)},
            )
        if not pending:
            self.last_report = BatchReport()
            return self.last_report
        outcomes: Dict[str, RunOutcome] = {}
        executed: List[Tuple[str, str, dict]] = []
        state = _BatchState()
        try:
            if self.jobs <= 1 or len(pending) == 1:
                self._run_serial(
                    [(request, 1) for request in pending], outcomes, executed
                )
            else:
                self._run_pool(pending, outcomes, executed, state)
        finally:
            # Whatever completed must reach the store even if the
            # coordination loop itself blew up.
            self._merge(executed)
        report = BatchReport(
            outcomes=tuple(outcomes[key] for key in sorted(outcomes)),
            pool_deaths=state.pool_deaths,
            degraded_to_serial=state.degraded,
        )
        self.last_report = report
        for outcome in report.outcomes:
            if outcome.resumed:
                self.store.record_resume(outcome.cycles_saved)
        failures = report.failures
        if failures:
            self.manifest.append(failures)
            if not self.policy.keep_going:
                where = (
                    f"; failure manifest: {self.manifest.root}"
                    if self.manifest.root
                    else ""
                )
                raise ExecutionError(
                    f"{len(failures)} of {len(pending)} runs failed "
                    f"({report.summary()}); {report.executed} completed "
                    f"results were saved{where}"
                )
        return report

    # --- execution paths -------------------------------------------------------
    def _run_serial(
        self,
        items: List[Tuple[RunRequest, int]],
        outcomes: Dict[str, RunOutcome],
        executed: List[Tuple[str, str, dict]],
    ) -> None:
        """In-process execution with retries; also the degradation path.

        Per-run timeouts cannot be enforced from within the executing
        process, so ``run_timeout`` only applies to pool execution.
        """
        policy = self.policy
        for request, attempt in items:
            while True:
                try:
                    key, shard, payload, meta = execute_attempt(
                        request, attempt, allow_exit=False,
                        checkpoint=self.checkpoint,
                    )
                except Exception:
                    if attempt <= policy.max_retries:
                        tracer = get_tracer()
                        if tracer.enabled:
                            tracer.instant(
                                "run.retry", cat="run",
                                args={"key": request.key, "attempt": attempt},
                            )
                        time.sleep(policy.backoff(attempt))
                        attempt += 1
                        continue
                    outcomes[request.key] = _outcome(
                        request, FAILED, attempt, traceback.format_exc()
                    )
                    break
                executed.append((key, shard, payload))
                outcomes[request.key] = _outcome(
                    request, OK, attempt, meta=meta
                )
                break

    def _run_pool(
        self,
        pending: List[RunRequest],
        outcomes: Dict[str, RunOutcome],
        executed: List[Tuple[str, str, dict]],
        state: _BatchState,
    ) -> None:
        policy = self.policy
        workers = min(self.jobs, len(pending))
        queue = deque((request, 1) for request in pending)
        # Min-heap of (ready_time, seq, request, attempt); seq breaks
        # ties because RunRequest does not order.
        retries: List[Tuple[float, int, RunRequest, int]] = []
        seq = itertools.count()
        inflight: Dict = {}  # future -> (request, attempt, deadline)
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while queue or retries or inflight:
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    _, _, request, attempt = heapq.heappop(retries)
                    queue.append((request, attempt))
                broken = False
                # Keep at most ``workers`` runs in flight so each run's
                # timeout clock starts when it actually starts running.
                while queue and len(inflight) < workers:
                    request, attempt = queue.popleft()
                    deadline = (
                        now + policy.run_timeout
                        if policy.run_timeout
                        else float("inf")
                    )
                    try:
                        future = pool.submit(
                            execute_attempt, request, attempt, True,
                            self.checkpoint,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        queue.appendleft((request, attempt))
                        broken = True
                        break
                    inflight[future] = (request, attempt, deadline)
                if not broken and not inflight:
                    if retries:
                        time.sleep(
                            max(0.0, retries[0][0] - time.monotonic())
                        )
                        continue
                    break
                if not broken:
                    next_deadline = min(d for _, _, d in inflight.values())
                    next_retry = retries[0][0] if retries else float("inf")
                    horizon = min(next_deadline, next_retry)
                    timeout = (
                        None
                        if horizon == float("inf")
                        else max(0.01, horizon - time.monotonic())
                    )
                    done, _ = wait(
                        set(inflight), timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        request, attempt, _ = inflight.pop(future)
                        try:
                            key, shard, payload, meta = future.result()
                        except BrokenProcessPool:
                            # The casualty is unknown (any worker may have
                            # died); resubmit at the same attempt number.
                            queue.append((request, attempt))
                            broken = True
                        except Exception:
                            if attempt <= policy.max_retries:
                                tracer = get_tracer()
                                if tracer.enabled:
                                    tracer.instant(
                                        "run.retry", cat="run",
                                        args={
                                            "key": request.key,
                                            "attempt": attempt,
                                        },
                                    )
                                heapq.heappush(
                                    retries,
                                    (
                                        time.monotonic()
                                        + policy.backoff(attempt),
                                        next(seq),
                                        request,
                                        attempt + 1,
                                    ),
                                )
                            else:
                                outcomes[request.key] = _outcome(
                                    request, FAILED, attempt,
                                    traceback.format_exc(),
                                )
                        else:
                            executed.append((key, shard, payload))
                            outcomes[request.key] = _outcome(
                                request, OK, attempt, meta=meta
                            )
                if broken:
                    for future, (request, attempt, _) in inflight.items():
                        queue.append((request, attempt))
                    inflight.clear()
                    state.pool_deaths += 1
                    tracer = get_tracer()
                    if tracer.enabled:
                        tracer.instant(
                            "pool.death", cat="run",
                            args={"deaths": state.pool_deaths},
                        )
                    _shutdown_pool(pool)
                    if state.pool_deaths >= policy.max_pool_deaths:
                        state.degraded = True
                        if tracer.enabled:
                            tracer.instant(
                                "pool.degrade", cat="run",
                                args={
                                    "remaining": len(queue) + len(retries),
                                },
                            )
                        warnings.warn(
                            f"parallel runner: worker pool died "
                            f"{state.pool_deaths} times; degrading to "
                            f"serial execution for the remaining "
                            f"{len(queue) + len(retries)} runs"
                        )
                        remaining = list(queue) + [
                            (request, attempt)
                            for _, _, request, attempt in sorted(retries)
                        ]
                        queue.clear()
                        retries.clear()
                        self._run_serial(remaining, outcomes, executed)
                        return
                    pool = ProcessPoolExecutor(max_workers=workers)
                    continue
                # Per-run timeout sweep: abandon expired runs, recycle the
                # pool (a hung worker keeps its slot forever otherwise)
                # and resubmit the innocent in-flight runs.
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, _, deadline) in inflight.items()
                    if deadline <= now
                ]
                if expired:
                    tracer = get_tracer()
                    for future in expired:
                        request, attempt, _ = inflight.pop(future)
                        future.cancel()
                        if tracer.enabled:
                            tracer.instant(
                                "run.timeout", cat="run",
                                args={"key": request.key, "attempt": attempt},
                            )
                        outcomes[request.key] = _outcome(
                            request, TIMEOUT, attempt,
                            f"run exceeded the per-run timeout of "
                            f"{policy.run_timeout}s",
                        )
                    for future, (request, attempt, _) in inflight.items():
                        future.cancel()
                        queue.append((request, attempt))
                    inflight.clear()
                    _shutdown_pool(pool)
                    pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            _shutdown_pool(pool)

    # --- merging ---------------------------------------------------------------
    def _merge(self, executed: List[Tuple[str, str, dict]]) -> None:
        """Merge completed results as one batched, key-sorted flush."""
        if not executed:
            return
        previous = self.store.flush_every
        self.store.flush_every = len(executed) + 1
        try:
            for key, shard, payload in sorted(executed, key=lambda item: item[0]):
                self.store.put(key, payload, shard=shard)
        finally:
            # Restore the batching window and flush whatever was staged
            # even if a put raised mid-merge — the store must never be
            # left holding unflushed records with an inflated window.
            self.store.flush_every = previous
            self.store.flush()

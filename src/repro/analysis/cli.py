"""Experiment command-line interface: regenerate any paper table/figure.

Usage::

    gpu-scale-experiments table1
    gpu-scale-experiments fig1 --benchmarks dct,bfs,pf
    gpu-scale-experiments fig4 --target 128
    gpu-scale-experiments fig6
    gpu-scale-experiments fig7
    gpu-scale-experiments fig8
    gpu-scale-experiments all

Simulations are cached in sharded JSONL files under ``results/simcache/``
(a legacy ``results/simcache.json`` is imported transparently); the first
run of the heavier experiments takes minutes, repeats are instantaneous.
``--jobs N`` (or ``REPRO_JOBS``) fans cache misses out across N worker
processes; results are identical to a serial run.

Execution is fault-tolerant: a raising or hung run costs that run, not
the batch.  ``--max-retries`` bounds re-execution of failed runs,
``--run-timeout`` arms a per-run watchdog, and ``--keep-going`` finishes
the remaining experiments when one fails, exiting with a failure summary
(and exit code 1) instead of a traceback.  Failed runs are recorded in
``results/failures/<benchmark>.jsonl`` with enough context to re-run.

Interrupts are drains, not losses (``docs/ARCHITECTURE.md``
§ "Resilience"): the first SIGINT/SIGTERM stops submitting runs, lets
in-flight runs finish, flushes completed results and the failure
manifest, and exits with the resumable code 75 — rerun the same command
to resume from the cache.  A second signal force-quits (``128+signum``).
A free-disk guard (``REPRO_MIN_FREE_MB``) pauses cache/checkpoint writes
under pressure instead of crashing; ``REPRO_MAX_RSS`` caps per-process
memory so a pathological run fails alone.  Configs that keep failing
(``REPRO_BREAKER_THRESHOLD`` consecutive terminal failures on record)
are skipped by later ``--keep-going`` invocations until
``--retry-quarantined`` re-arms them.

Long simulations checkpoint at kernel boundaries under
``results/checkpoints/`` and a retried run resumes from its latest valid
snapshot instead of starting cold.  ``--checkpoint-interval N`` (or
``REPRO_CHECKPOINT_INTERVAL``) snapshots every N kernel boundaries
(``0`` disables), ``--checkpoint-dir`` relocates the snapshots and
``--no-resume`` keeps writing them but always starts runs cold.

Observability (see ``docs/ARCHITECTURE.md`` § "Observability"):
``--trace-out trace.json`` records run/kernel/cache/checkpoint spans —
including pool workers' — into a Chrome ``trace_event`` file loadable in
``chrome://tracing`` or Perfetto; ``--metrics-out metrics.json`` writes
the counters/gauges/histograms snapshot; ``--log-format json`` switches
the stderr diagnostics to one-JSON-object-per-line.  Either output flag
(or ``REPRO_OBS=1``) turns recording on; without them the hooks are
never installed and the hot paths run untouched.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments as exp
from repro.analysis.faults import ExecutionPolicy
from repro.analysis.runner import (
    CachedRunner,
    DEFAULT_CACHE,
    default_checkpoint_policy,
    default_jobs,
)
from repro.checkpoint import default_checkpoint_interval, parse_checkpoint_interval
from repro.exceptions import ReproError, ShutdownRequested
from repro.obs import bootstrap, get_logger
from repro.resilience import (
    EXIT_ERROR,
    EXIT_FAILURES,
    EXIT_INTERRUPTED,
    EXIT_OK,
    apply_memory_limit,
    install_shutdown_handlers,
    preflight_disk,
)
from repro.verify.runtime import arm_from_flag

EXPERIMENTS = (
    "table1", "table5", "fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
    "fig8", "artifact", "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-scale-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--target", type=int, default=128,
                        help="target size for fig4 (64 or 128)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--cache", default=DEFAULT_CACHE,
                        help="result-store directory (default results/simcache)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for cache misses "
                             "(default: REPRO_JOBS or cpu_count()-1)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="re-executions of a failed run before it is "
                             "recorded as a casualty (default 2)")
    parser.add_argument("--run-timeout", type=float, default=None,
                        help="per-run watchdog timeout in seconds for "
                             "pool execution (default: unlimited)")
    parser.add_argument("--keep-going", action="store_true",
                        help="finish the remaining experiments when one "
                             "fails; exit 1 with a failure summary")
    parser.add_argument("--retry-quarantined", action="store_true",
                        help="re-attempt configs the per-config circuit "
                             "breaker would skip (see results/failures/)")
    # Parsed tolerantly (warn + default on garbage), so no type=int here.
    parser.add_argument("--checkpoint-interval", default=None,
                        help="kernel boundaries between mid-run snapshots "
                             "(0 disables; default: "
                             "REPRO_CHECKPOINT_INTERVAL or 1)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="snapshot directory "
                             "(default: <cache parent>/checkpoints)")
    parser.add_argument("--no-resume", action="store_true",
                        help="keep writing checkpoints but always start "
                             "runs cold")
    parser.add_argument("--trace-out", default=None,
                        help="write a Chrome trace_event JSON "
                             "(chrome://tracing / Perfetto) of this run")
    parser.add_argument("--metrics-out", default=None,
                        help="write the metrics snapshot (counters, "
                             "gauges, histogram quantiles) as JSON")
    parser.add_argument("--log-format", choices=("human", "json"),
                        default=None,
                        help="stderr diagnostics format (default human)")
    parser.add_argument("--verify", action="store_true",
                        help="paranoia mode: assert engine/model invariants "
                             "at every kernel boundary and event-queue "
                             "operation (equivalent to REPRO_VERIFY=1; "
                             "workers inherit it)")
    return parser


def build_checkpoint(args):
    """Map the CLI's checkpoint flags onto a CheckpointPolicy (or None)."""
    return default_checkpoint_policy(
        None if args.no_cache else args.cache,
        interval=parse_checkpoint_interval(
            args.checkpoint_interval, default_checkpoint_interval()
        ),
        resume=not args.no_resume,
        root=args.checkpoint_dir,
    )


def build_policy(args) -> ExecutionPolicy:
    """Map the CLI's fault-tolerance flags onto an ExecutionPolicy."""
    defaults = ExecutionPolicy()
    return ExecutionPolicy(
        max_retries=(
            defaults.max_retries
            if args.max_retries is None
            else args.max_retries
        ),
        run_timeout=args.run_timeout,
        keep_going=args.keep_going,
        retry_quarantined=args.retry_quarantined,
    )


def run_experiment(name: str, args, runner: CachedRunner, out) -> None:
    benches = args.benchmarks.split(",") if args.benchmarks else None
    if name == "table1":
        print(exp.table1_text(), file=out)
    elif name == "table5":
        print(exp.table5_text(), file=out)
    elif name == "fig1":
        result = exp.figure1_scaling(benches or ("dct", "bfs", "pf"), runner)
        print(result.as_text(), file=out)
        for bench in result.benchmarks:
            print(result.plot(bench), file=out)
    elif name == "fig2":
        print(exp.figure2_miss_rate_curves(
            benches or ("dct", "bfs", "pf"), runner).as_text(), file=out)
    elif name == "fig4":
        result = exp.figure4_strong_accuracy(
            args.target, benchmarks=benches, runner=runner
        )
        print(result.as_text(), file=out)
    elif name == "fig5":
        print(exp.figure5_prediction_curves(
            benches or exp.FIG5_BENCHMARKS, runner).as_text(), file=out)
    elif name == "fig6":
        for target, result in exp.figure6_weak_accuracy(runner=runner).items():
            print(result.as_text(), file=out)
            print(file=out)
    elif name == "fig7":
        print(exp.figure7_speedup(runner).as_text(), file=out)
    elif name == "fig8":
        print(exp.figure8_mcm_accuracy(runner).as_text(), file=out)
    elif name == "artifact":
        from repro.analysis.artifact import export_artifact

        counts = export_artifact("results/artifact", runner=runner)
        print(
            f"artifact bundle written to results/artifact "
            f"({counts['strong']} strong + {counts['weak']} weak benchmarks)",
            file=out,
        )
    else:
        raise ReproError(f"unknown experiment {name!r}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Observability first: the profiling hooks must be installed before
    # the runner constructs its store (shard loads are traced too).
    obs = bootstrap(args.trace_out, args.metrics_out, args.log_format)
    log = get_logger("cli")
    # Resilience: first SIGINT/SIGTERM drains (exit 75, resumable),
    # second force-quits; REPRO_MAX_RSS caps this process the same way
    # the pool initializer caps the workers.
    coordinator = install_shutdown_handlers()
    coordinator.reset()
    apply_memory_limit()
    arm_from_flag(args.verify)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    runner = CachedRunner(
        None if args.no_cache else args.cache,
        jobs=jobs,
        policy=build_policy(args),
        checkpoint=build_checkpoint(args),
    )
    preflight_disk(
        runner.store.root,
        runner.manifest.root,
        runner.checkpoint.root if runner.checkpoint else None,
    )
    names = (
        ["table1", "table5", "fig1", "fig2", "fig4", "fig5", "fig6",
         "fig7", "fig8", "artifact"]
        if args.experiment == "all"
        else [args.experiment]
    )
    failed = []
    interrupted = None
    try:
        for name in names:
            coordinator.check()
            try:
                if name == "fig4" and args.experiment == "all":
                    for target in (64, 128):
                        result = exp.figure4_strong_accuracy(
                            target, runner=runner
                        )
                        print(result.as_text())
                        print()
                    continue
                run_experiment(name, args, runner, sys.stdout)
                print()
            except ReproError as error:
                if not args.keep_going:
                    raise
                failed.append(name)
                log.error(
                    "error: %s failed (%s); continuing (--keep-going)",
                    name, error,
                )
    except (ShutdownRequested, KeyboardInterrupt) as stop:
        # Partial progress is already durable (the execution layer merges
        # before re-raising); tell the operator how to pick it back up.
        interrupted = stop
        log.error(
            "interrupted: %s — completed results are saved; rerun the "
            "same command to resume (exit code %d)",
            stop, EXIT_INTERRUPTED,
        )
    except ReproError as error:
        log.error("error: %s", error)
        return EXIT_ERROR
    finally:
        runner.flush()
        stats = runner.stats()
        log.info(
            "%s",
            "cache: {hits} hits, {misses} misses, {flushes} flushes, "
            "{entries} entries, {quarantined_shards} quarantined shards, "
            "{schema_mismatches} schema mismatches, "
            "{legacy_imported} legacy entries imported (jobs={jobs})".format(
                **stats
            ),
        )
        log.info("%s", runner.execution_health())
        obs.finalize(extra_metrics={"runner": runner.metrics})
    if interrupted is not None:
        return EXIT_INTERRUPTED
    if failed:
        log.error("completed with failures: %s", ", ".join(failed))
        return EXIT_FAILURES
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

"""Analysis and reporting: experiment runners for every table and figure
of the paper, scaling classification, text tables, ASCII plots, the
sharded simulation result store with its fault-tolerant parallel batch
executor, and the artifact-bundle exporter."""

from repro.analysis.classify import classify_scaling
from repro.analysis.faults import (
    BatchReport,
    ExecutionPolicy,
    FailureManifest,
    RunOutcome,
)
from repro.analysis.parallel import ParallelRunner, RunRequest
from repro.analysis.runner import CachedRunner
from repro.analysis.simcache import ResultStore

__all__ = [
    "classify_scaling",
    "BatchReport",
    "CachedRunner",
    "ExecutionPolicy",
    "FailureManifest",
    "ParallelRunner",
    "ResultStore",
    "RunOutcome",
    "RunRequest",
]

"""Analysis and reporting: experiment runners for every table and figure
of the paper, scaling classification, text tables, ASCII plots, the
cached simulation store and the artifact-bundle exporter."""

from repro.analysis.classify import classify_scaling
from repro.analysis.runner import CachedRunner

__all__ = ["classify_scaling", "CachedRunner"]

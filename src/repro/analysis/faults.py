"""Fault-tolerant execution primitives for the parallel runner.

Large simulation campaigns treat worker faults as expected events, not
fatal ones: a single raising run, a hung run or a dead worker process
must cost exactly that run, never the batch.  This module holds the
pieces :class:`repro.analysis.parallel.ParallelRunner` uses to deliver
that contract:

* :class:`ExecutionPolicy` — the retry/timeout/degradation knobs
  (``--max-retries``, ``--run-timeout``, ``--keep-going`` on the CLIs).
* :class:`RunOutcome` — the per-run execution record: ok, failed or
  timed out, with the attempt count and the captured traceback.
* :class:`BatchReport` — the per-batch aggregate: outcomes in key order,
  pool-death count, whether execution degraded to serial.
* :class:`FailureManifest` — append-only ``results/failures/<shard>.jsonl``
  records with enough context (kind, benchmark, size, scale, seed,
  method, traceback) to re-run every casualty.
* **Deterministic fault injection** — the ``REPRO_FAULT_INJECT``
  environment variable arms :func:`maybe_inject`, which the worker entry
  point calls before every attempt.  Tests (and CI) use it to exercise
  every failure path without patching simulator internals.

Fault-injection grammar (comma-separated directives)::

    fail:<prefix>[:<n>]        raise on attempts 1..n (always, if n omitted)
    hang:<prefix>[:<s>]        sleep s seconds (default 3600) — trips timeouts
    die:<prefix>               kill the worker process (BrokenProcessPool)
    die-at-kernel:<prefix>:<k> kill the worker right after the checkpoint
                               at kernel boundary ``k`` becomes durable —
                               the crash window checkpoint/resume covers

``die-at-kernel`` is armed through :func:`kernel_kill_hook` (wired into
the checkpointer's post-save callback) rather than :func:`maybe_inject`:
the kill must land *after* a snapshot is durable, mid-run.  A resumed
attempt restarts past boundary ``k``, so the directive fires at most
once per run directory — exactly one crash, then recovery.

A directive matches a run when ``<prefix>`` is a prefix of either the
cache key (``sim|<digest>|<digest>``) or the human-readable pseudo-id
``<kind>|<benchmark abbr>`` (e.g. ``sim|va``).  Prefixes therefore never
contain ``:`` or ``,``.
"""

from __future__ import annotations

import json
import os
import re
import time
import warnings
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError

__all__ = [
    "ExecutionPolicy",
    "RunOutcome",
    "BatchReport",
    "FailureManifest",
    "InjectedFaultError",
    "FAULT_INJECT_ENV",
    "OK",
    "FAILED",
    "TIMEOUT",
    "parse_fault_plan",
    "maybe_inject",
    "kernel_kill_hook",
]

FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

# RunOutcome.status values.
OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"

_SHARD_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")

_DEFAULT_HANG_SECONDS = 3600.0


class InjectedFaultError(ReproError):
    """A deliberate failure raised by the ``REPRO_FAULT_INJECT`` hook."""


@dataclass(frozen=True)
class ExecutionPolicy:
    """Retry, timeout and degradation knobs for one batch execution.

    ``max_retries`` bounds *re*-executions after the first attempt, so a
    run is tried at most ``max_retries + 1`` times.  ``run_timeout``
    (seconds, ``None`` = unlimited) arms the per-run watchdog — pool
    execution only; a serial run cannot be interrupted from within.
    ``keep_going`` turns end-of-batch failures into a report instead of
    an :class:`repro.exceptions.ExecutionError`.  After
    ``max_pool_deaths`` ``BrokenProcessPool`` events the batch degrades
    to serial in-process execution for the remaining runs.
    """

    max_retries: int = 2
    run_timeout: Optional[float] = None
    keep_going: bool = False
    backoff_base: float = 0.05
    max_pool_deaths: int = 2

    def backoff(self, attempt: int) -> float:
        """Exponential backoff before re-running a failed ``attempt``."""
        return self.backoff_base * (2.0 ** (attempt - 1))


@dataclass(frozen=True)
class RunOutcome:
    """How one run ended: status, attempt count, captured traceback.

    ``size``/``work_scale``/``seed``/``method`` mirror the originating
    :class:`repro.analysis.parallel.RunRequest` so a manifest entry can
    be turned back into a run without consulting anything else.
    """

    key: str
    kind: str
    shard: str
    status: str
    attempts: int = 1
    error: Optional[str] = None
    size: int = 0
    work_scale: float = 1.0
    seed: int = 0
    method: str = "stack"
    #: Kernel boundary a checkpoint resume restarted from (None = cold).
    resumed_from_kernel: Optional[int] = None
    #: Simulated cycles the resume skipped re-executing.
    cycles_saved: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    @property
    def resumed(self) -> bool:
        return self.resumed_from_kernel is not None


@dataclass(frozen=True)
class BatchReport:
    """Aggregate outcome of one ``run_batch`` call, in key order."""

    outcomes: Tuple[RunOutcome, ...] = ()
    pool_deaths: int = 0
    degraded_to_serial: bool = False

    @property
    def executed(self) -> int:
        """Number of runs that completed successfully."""
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def failures(self) -> Tuple[RunOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def retries(self) -> int:
        return sum(o.attempts - 1 for o in self.outcomes)

    @property
    def checkpoints_resumed(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    @property
    def cycles_saved(self) -> float:
        return sum(o.cycles_saved for o in self.outcomes if o.resumed)

    def counts(self) -> Dict[str, int]:
        return {
            "ok": self.executed,
            "failed": sum(1 for o in self.outcomes if o.status == FAILED),
            "timeout": sum(1 for o in self.outcomes if o.status == TIMEOUT),
            "retries": self.retries,
            "pool_deaths": self.pool_deaths,
            "resumed": self.checkpoints_resumed,
        }

    def summary(self) -> str:
        counts = self.counts()
        text = (
            "execution: {ok} ok, {failed} failed, {timeout} timed out, "
            "{retries} retries, {pool_deaths} pool deaths".format(**counts)
        )
        if self.checkpoints_resumed:
            text += (
                f", {self.checkpoints_resumed} resumed from checkpoints "
                f"({self.cycles_saved:.0f} cycles saved)"
            )
        if self.degraded_to_serial:
            text += " (degraded to serial)"
        return text


class FailureManifest:
    """Append-only JSONL record of failed runs, one shard per benchmark.

    Lives beside the result store (``results/failures/<shard>.jsonl``).
    Append-only like the store itself: a crash can at worst truncate the
    final line, and re-runs simply append fresh records.  ``root=None``
    disables persistence (memory-only stores).
    """

    def __init__(self, root: Optional[str]) -> None:
        self.root = root

    def path_for(self, shard: str) -> Optional[str]:
        if not self.root:
            return None
        name = _SHARD_SANITIZER.sub("_", shard) or "misc"
        return os.path.join(self.root, f"{name}.jsonl")

    def append(self, outcomes: Iterable[RunOutcome]) -> int:
        """Append one record per outcome; returns the number written.

        Manifest I/O must never mask the failure it is recording, so
        filesystem errors degrade to a warning.
        """
        if not self.root:
            return 0
        by_shard: Dict[str, List[str]] = {}
        # Deliberately wall-clock: ``recorded_at`` is a report timestamp
        # humans correlate with logs, not a duration measurement (those
        # use time.monotonic() elsewhere in this package).
        stamp = time.time()
        for outcome in outcomes:
            record = dict(asdict(outcome), recorded_at=stamp)
            by_shard.setdefault(outcome.shard, []).append(json.dumps(record))
        if not by_shard:
            return 0
        written = 0
        try:
            os.makedirs(self.root, exist_ok=True)
            for shard, lines in sorted(by_shard.items()):
                with open(self.path_for(shard), "a") as fh:
                    fh.write("".join(line + "\n" for line in lines))
                written += len(lines)
        except OSError as error:
            warnings.warn(
                f"failure manifest: cannot write under {self.root}: {error}"
            )
        return written


# --- deterministic fault injection ---------------------------------------------

@dataclass(frozen=True)
class _FaultDirective:
    action: str  # fail | hang | die
    prefix: str
    arg: Optional[float]  # fail: attempt bound; hang: sleep seconds


def parse_fault_plan(plan: str) -> Tuple[_FaultDirective, ...]:
    """Parse a ``REPRO_FAULT_INJECT`` value (see module docstring)."""
    directives = []
    for part in plan.split(","):
        part = part.strip()
        if not part:
            continue
        bits = part.split(":")
        if len(bits) == 2:
            action, prefix, arg = bits[0], bits[1], None
        elif len(bits) == 3:
            action, prefix = bits[0], bits[1]
            try:
                arg = float(bits[2])
            except ValueError:
                raise ReproError(
                    f"fault injection: non-numeric argument in {part!r}"
                )
        else:
            raise ReproError(
                f"fault injection: malformed directive {part!r} "
                "(expected action:prefix[:arg])"
            )
        if action not in ("fail", "hang", "die", "die-at-kernel"):
            raise ReproError(
                f"fault injection: unknown action {action!r} in {part!r}"
            )
        if not prefix:
            raise ReproError(f"fault injection: empty prefix in {part!r}")
        if action == "die-at-kernel" and arg is None:
            raise ReproError(
                f"fault injection: {part!r} needs a kernel boundary "
                "(die-at-kernel:<prefix>:<k>)"
            )
        directives.append(_FaultDirective(action, prefix, arg))
    return tuple(directives)


def maybe_inject(
    key: str,
    kind: str,
    shard: str,
    attempt: int,
    allow_exit: bool = True,
) -> None:
    """Apply the ``REPRO_FAULT_INJECT`` plan to one run attempt.

    No-op unless the environment variable is set and a directive's
    prefix matches the run (see module docstring for the grammar).
    ``allow_exit=False`` (serial, in-process execution) converts a
    ``die`` directive into a raised :class:`InjectedFaultError` so the
    host process survives.
    """
    plan = os.environ.get(FAULT_INJECT_ENV)
    if not plan:
        return
    targets = (key, f"{kind}|{shard}")
    for directive in parse_fault_plan(plan):
        if not any(t.startswith(directive.prefix) for t in targets):
            continue
        if directive.action == "die-at-kernel":
            # Armed mid-run via kernel_kill_hook, not per attempt.
            continue
        if directive.action == "fail":
            bound = directive.arg if directive.arg is not None else float("inf")
            if attempt <= bound:
                raise InjectedFaultError(
                    f"injected failure for {key} (attempt {attempt})"
                )
        elif directive.action == "hang":
            seconds = (
                directive.arg if directive.arg is not None
                else _DEFAULT_HANG_SECONDS
            )
            time.sleep(seconds)
            raise InjectedFaultError(
                f"injected hang for {key} expired after {seconds}s"
            )
        else:  # die
            if allow_exit:
                os._exit(3)
            raise InjectedFaultError(
                f"injected worker death for {key} (serial mode: raising)"
            )


def kernel_kill_hook(
    key: str,
    kind: str,
    shard: str,
    allow_exit: bool = True,
) -> Optional[Callable[[int], None]]:
    """Post-checkpoint kill callback for ``die-at-kernel`` directives.

    Returns ``None`` unless the ``REPRO_FAULT_INJECT`` plan holds a
    matching ``die-at-kernel`` directive; otherwise a callable suitable
    as :class:`repro.checkpoint.Checkpointer`'s ``on_checkpoint`` hook.
    The hook kills the process (or raises, serial mode) when the
    just-saved boundary is in the directive's kill set — *after* the
    snapshot became durable, so the retry exercises real resume.
    """
    plan = os.environ.get(FAULT_INJECT_ENV)
    if not plan:
        return None
    targets = (key, f"{kind}|{shard}")
    boundaries = {
        int(directive.arg)
        for directive in parse_fault_plan(plan)
        if directive.action == "die-at-kernel"
        and any(t.startswith(directive.prefix) for t in targets)
    }
    if not boundaries:
        return None

    def hook(kernels_completed: int) -> None:
        if kernels_completed not in boundaries:
            return
        if allow_exit:
            os._exit(3)
        raise InjectedFaultError(
            f"injected post-checkpoint death for {key} at kernel "
            f"boundary {kernels_completed} (serial mode: raising)"
        )

    return hook

"""Fault-tolerant execution primitives for the parallel runner.

Large simulation campaigns treat worker faults as expected events, not
fatal ones: a single raising run, a hung run or a dead worker process
must cost exactly that run, never the batch.  This module holds the
pieces :class:`repro.analysis.parallel.ParallelRunner` uses to deliver
that contract:

* :class:`ExecutionPolicy` — the retry/timeout/degradation knobs
  (``--max-retries``, ``--run-timeout``, ``--keep-going`` on the CLIs).
* :class:`RunOutcome` — the per-run execution record: ok, failed or
  timed out, with the attempt count and the captured traceback.
* :class:`BatchReport` — the per-batch aggregate: outcomes in key order,
  pool-death count, whether execution degraded to serial.
* :class:`FailureManifest` — append-only ``results/failures/<shard>.jsonl``
  records with enough context (kind, benchmark, size, scale, seed,
  method, traceback) to re-run every casualty.
* **Deterministic fault injection** — the ``REPRO_FAULT_INJECT``
  environment variable arms :func:`maybe_inject`, which the worker entry
  point calls before every attempt.  Tests (and CI) use it to exercise
  every failure path without patching simulator internals.

Fault-injection grammar (comma-separated directives)::

    fail:<prefix>[:<n>]        raise on attempts 1..n (always, if n omitted)
    hang:<prefix>[:<s>]        sleep s seconds (default 3600) — trips timeouts
    die:<prefix>               kill the worker process (BrokenProcessPool)
    die-at-kernel:<prefix>:<k> kill the worker right after the checkpoint
                               at kernel boundary ``k`` becomes durable —
                               the crash window checkpoint/resume covers
    enospc:<op>[:<n>]          raise OSError(ENOSPC) on the first n writes
                               of that seam (default 1)
    partial-write:<op>[:<n>]   persist a truncated prefix, then raise —
                               a disk that filled mid-write (default 1)
    slow-io:<op>[:<s>]         sleep s seconds before the write
                               (default 0.05; fires on every write)
    drop-miss:<prefix>[:<n>]   silently swallow the first n L1-miss
                               increments (default 1) of a matching
                               simulation — a seeded *model* corruption
                               that produces a plausible but wrong
                               result, invisible to crash handling and
                               caught only by repro.verify's invariants

``die-at-kernel`` is armed through :func:`kernel_kill_hook` (wired into
the checkpointer's post-save callback) rather than :func:`maybe_inject`:
the kill must land *after* a snapshot is durable, mid-run.  A resumed
attempt restarts past boundary ``k``, so the directive fires at most
once per run directory — exactly one crash, then recovery.

A run directive matches a run when ``<prefix>`` is a prefix of either
the cache key (``sim|<digest>|<digest>``) or the human-readable
pseudo-id ``<kind>|<benchmark abbr>`` (e.g. ``sim|va``).  Prefixes
therefore never contain ``:`` or ``,``.

The filesystem directives (``enospc``/``partial-write``/``slow-io``)
target *write seams*, not runs: ``<op>`` prefix-matches one of
:data:`IO_OPS` (``store``, ``checkpoint``, ``trace``, ``metrics``,
``manifest``, ``journal``), the labels :mod:`repro.fsio` writers are
called with.
They are consumed through :func:`next_io_fault`; the fired-count
bookkeeping is per process (pool workers count their own), and
:func:`reset_io_faults` rewinds it between chaos phases.

``drop-miss`` is an *engine* directive: it corrupts simulator counters
rather than execution or I/O.  :class:`repro.gpu.gpu.GPUSimulator` arms
it at run start via :func:`engine_fault_budget`, matching the directive
prefix against the workload trace name (e.g. ``drop-miss:va``).  Each
run attempt gets the full budget — the corruption is deterministic per
run, so a retried run misbehaves identically.
"""

from __future__ import annotations

import json
import os
import re
import time
import warnings
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro import fsio
from repro.exceptions import ReproError

__all__ = [
    "ExecutionPolicy",
    "RunOutcome",
    "BatchReport",
    "FailureManifest",
    "InjectedFaultError",
    "FAULT_INJECT_ENV",
    "IO_OPS",
    "MANIFEST_MAX_MB_ENV",
    "STREAK",
    "OK",
    "FAILED",
    "TIMEOUT",
    "OOM",
    "INTERRUPTED",
    "SKIPPED",
    "parse_fault_plan",
    "maybe_inject",
    "engine_fault_budget",
    "kernel_kill_hook",
    "next_io_fault",
    "reset_io_faults",
    "retryable",
]

FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

# RunOutcome.status values.
OK = "ok"
FAILED = "failed"
TIMEOUT = "timeout"
#: MemoryError under the REPRO_MAX_RSS ceiling: never retried (the same
#: allocation pattern would just OOM again, or worse, take the host).
OOM = "oom"
#: A graceful shutdown drained the run before/while it executed; the
#: config is fine — a rerun picks it up from the cache as a miss.
INTERRUPTED = "interrupted"
#: The per-config circuit breaker skipped the run (see
#: repro.resilience.CircuitBreaker); zero attempts were made.
SKIPPED = "skipped"

#: Statuses the failure manifest records (skipped runs are not
#: re-recorded: they already have the entries that tripped the breaker).
MANIFEST_STATUSES = frozenset((FAILED, TIMEOUT, OOM, INTERRUPTED))

#: Write-seam labels the filesystem directives can target.
IO_OPS = ("store", "checkpoint", "trace", "metrics", "manifest", "journal")

#: Size ceiling (MiB) for one failure-manifest shard before it is
#: compacted; 0 disables rotation.  Multi-hundred-workload campaigns
#: append a record per casualty per attempt, so shards are rotated into
#: synthetic per-key ``streak`` records that preserve the circuit
#: breaker's consecutive-failure counts while dropping the bulk.
MANIFEST_MAX_MB_ENV = "REPRO_MANIFEST_MAX_MB"
_DEFAULT_MANIFEST_MAX_MB = 16.0

#: Status of the synthetic records a rotation leaves behind: one per run
#: key, carrying that key's consecutive-failure count at rotation time.
STREAK = "streak"

_IO_ACTIONS = ("enospc", "partial-write", "slow-io")
_RUN_ACTIONS = ("fail", "hang", "die", "die-at-kernel")
_ENGINE_ACTIONS = ("drop-miss",)

_SHARD_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")

_DEFAULT_HANG_SECONDS = 3600.0


def retryable(error: BaseException) -> bool:
    """Whether the execution layer may re-run after this exception.

    ``MemoryError`` is terminal: under the ``REPRO_MAX_RSS`` ceiling the
    retry would make the same allocations and die the same death, and
    without the ceiling a retry invites the OOM killer.
    """
    return not isinstance(error, MemoryError)


class InjectedFaultError(ReproError):
    """A deliberate failure raised by the ``REPRO_FAULT_INJECT`` hook."""


@dataclass(frozen=True)
class ExecutionPolicy:
    """Retry, timeout and degradation knobs for one batch execution.

    ``max_retries`` bounds *re*-executions after the first attempt, so a
    run is tried at most ``max_retries + 1`` times.  ``run_timeout``
    (seconds, ``None`` = unlimited) arms the per-run watchdog — pool
    execution only; a serial run cannot be interrupted from within.
    ``keep_going`` turns end-of-batch failures into a report instead of
    an :class:`repro.exceptions.ExecutionError`.  After
    ``max_pool_deaths`` ``BrokenProcessPool`` events the batch degrades
    to serial in-process execution for the remaining runs.

    ``breaker_threshold`` (``None`` = ``REPRO_BREAKER_THRESHOLD`` or 3,
    ``0`` disables) arms the per-config circuit breaker on
    ``keep_going`` batches: configs with that many consecutive terminal
    failures in the manifest are skipped, not re-attempted, until
    ``retry_quarantined`` (``--retry-quarantined``) forces a re-run.
    """

    max_retries: int = 2
    run_timeout: Optional[float] = None
    keep_going: bool = False
    backoff_base: float = 0.05
    max_pool_deaths: int = 2
    retry_quarantined: bool = False
    breaker_threshold: Optional[int] = None

    def backoff(self, attempt: int) -> float:
        """Exponential backoff before re-running a failed ``attempt``."""
        return self.backoff_base * (2.0 ** (attempt - 1))


@dataclass(frozen=True)
class RunOutcome:
    """How one run ended: status, attempt count, captured traceback.

    ``size``/``work_scale``/``seed``/``method`` mirror the originating
    :class:`repro.analysis.parallel.RunRequest` so a manifest entry can
    be turned back into a run without consulting anything else.
    """

    key: str
    kind: str
    shard: str
    status: str
    attempts: int = 1
    error: Optional[str] = None
    size: int = 0
    work_scale: float = 1.0
    seed: int = 0
    method: str = "stack"
    #: Kernel boundary a checkpoint resume restarted from (None = cold).
    resumed_from_kernel: Optional[int] = None
    #: Simulated cycles the resume skipped re-executing.
    cycles_saved: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    @property
    def resumed(self) -> bool:
        return self.resumed_from_kernel is not None


@dataclass(frozen=True)
class BatchReport:
    """Aggregate outcome of one ``run_batch`` call, in key order."""

    outcomes: Tuple[RunOutcome, ...] = ()
    pool_deaths: int = 0
    degraded_to_serial: bool = False

    @property
    def executed(self) -> int:
        """Number of runs that completed successfully."""
        return sum(1 for outcome in self.outcomes if outcome.ok)

    @property
    def failures(self) -> Tuple[RunOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    @property
    def manifest_outcomes(self) -> Tuple[RunOutcome, ...]:
        """The failures the manifest records (skips are not re-recorded)."""
        return tuple(
            o for o in self.outcomes if o.status in MANIFEST_STATUSES
        )

    @property
    def interrupted(self) -> Tuple[RunOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == INTERRUPTED)

    @property
    def retries(self) -> int:
        return sum(o.attempts - 1 for o in self.outcomes)

    @property
    def checkpoints_resumed(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    @property
    def cycles_saved(self) -> float:
        return sum(o.cycles_saved for o in self.outcomes if o.resumed)

    def counts(self) -> Dict[str, int]:
        return {
            "ok": self.executed,
            "failed": sum(1 for o in self.outcomes if o.status == FAILED),
            "timeout": sum(1 for o in self.outcomes if o.status == TIMEOUT),
            "oom": sum(1 for o in self.outcomes if o.status == OOM),
            "interrupted": sum(
                1 for o in self.outcomes if o.status == INTERRUPTED
            ),
            "skipped": sum(1 for o in self.outcomes if o.status == SKIPPED),
            "retries": self.retries,
            "pool_deaths": self.pool_deaths,
            "resumed": self.checkpoints_resumed,
        }

    def summary(self) -> str:
        counts = self.counts()
        text = (
            "execution: {ok} ok, {failed} failed, {timeout} timed out, "
            "{retries} retries, {pool_deaths} pool deaths".format(**counts)
        )
        # Resilience statuses only appear when present, so the wording
        # scripts and tests grep stays byte-identical on healthy runs.
        if counts["oom"]:
            text += f", {counts['oom']} out of memory"
        if counts["interrupted"]:
            text += f", {counts['interrupted']} interrupted"
        if counts["skipped"]:
            text += f", {counts['skipped']} skipped (circuit breaker)"
        if self.checkpoints_resumed:
            text += (
                f", {self.checkpoints_resumed} resumed from checkpoints "
                f"({self.cycles_saved:.0f} cycles saved)"
            )
        if self.degraded_to_serial:
            text += " (degraded to serial)"
        return text


class FailureManifest:
    """Append-only JSONL record of failed runs, one shard per benchmark.

    Lives beside the result store (``results/failures/<shard>.jsonl``).
    Append-only like the store itself: a crash can at worst truncate the
    final line, and re-runs simply append fresh records.  ``root=None``
    disables persistence (memory-only stores).

    Shards are bounded: past ``REPRO_MANIFEST_MAX_MB`` (default 16 MiB,
    0 disables) a shard is *compacted* — its history collapses to one
    synthetic ``streak`` record per run key carrying that key's
    consecutive-failure count, so the circuit breaker sees exactly the
    streaks it would have counted from the raw records.  The raw shard
    is kept once as ``<shard>.jsonl.old`` (overwritten by the next
    rotation, so disk stays bounded at ~2x the ceiling per shard).
    """

    def __init__(self, root: Optional[str]) -> None:
        self.root = root

    def path_for(self, shard: str) -> Optional[str]:
        if not self.root:
            return None
        name = _SHARD_SANITIZER.sub("_", shard) or "misc"
        return os.path.join(self.root, f"{name}.jsonl")

    def append(self, outcomes: Iterable[RunOutcome]) -> int:
        """Append one record per outcome; returns the number written.

        Outcomes are recorded with their status as-is — ``ok`` records
        exist too: they close a key's failure streak so the circuit
        breaker (:class:`repro.resilience.CircuitBreaker`) re-admits a
        config that recovered.  Manifest I/O must never mask the failure
        it is recording, so filesystem errors degrade to a warning.
        """
        if not self.root:
            return 0
        by_shard: Dict[str, List[str]] = {}
        # Deliberately wall-clock: ``recorded_at`` is a report timestamp
        # humans correlate with logs, not a duration measurement (those
        # use time.monotonic() elsewhere in this package).
        stamp = time.time()
        for outcome in outcomes:
            record = dict(asdict(outcome), recorded_at=stamp)
            by_shard.setdefault(outcome.shard, []).append(json.dumps(record))
        if not by_shard:
            return 0
        written = 0
        try:
            os.makedirs(self.root, exist_ok=True)
            for shard, lines in sorted(by_shard.items()):
                path = self.path_for(shard)
                fsio.append_text(
                    path,
                    "".join(line + "\n" for line in lines),
                    op="manifest",
                )
                written += len(lines)
                self._rotate_if_oversized(shard, path, stamp)
        except OSError as error:
            warnings.warn(
                f"failure manifest: cannot write under {self.root}: {error}"
            )
        return written

    def _rotate_if_oversized(
        self, shard: str, path: str, stamp: float
    ) -> None:
        """Compact ``path`` to per-key streak records past the ceiling.

        Rotation must never mask the run failures being recorded, so any
        I/O error here degrades to a warning, like :meth:`append`.
        """
        limit = manifest_max_bytes()
        if limit <= 0:
            return
        try:
            if os.path.getsize(path) <= limit:
                return
            with open(path) as fh:
                raw_lines = fh.readlines()
        except OSError:
            return
        streaks = _streaks_from_lines(raw_lines)
        compact = [
            json.dumps(
                {
                    "key": key,
                    "status": STREAK,
                    "count": count,
                    "shard": shard,
                    "recorded_at": stamp,
                }
            )
            for key, count in sorted(streaks.items())
            if count > 0
        ]
        try:
            # Raw history survives one rotation for post-mortems; the
            # ``.old`` suffix keeps it off the breaker's ``*.jsonl`` scan
            # (it would double-count against the streak records).
            os.replace(path, path + ".old")
            fsio.atomic_write_text(
                path,
                "".join(line + "\n" for line in compact),
                op="manifest",
            )
        except OSError as error:
            warnings.warn(
                f"failure manifest: cannot rotate {path}: {error}"
            )
            return
        warnings.warn(
            f"failure manifest: rotated {path} "
            f"({len(raw_lines)} records -> {len(compact)} streak records)"
        )


def manifest_max_bytes() -> int:
    """The per-shard rotation ceiling in bytes (0 = rotation disabled)."""
    from repro.resilience import env_float

    megabytes = env_float(MANIFEST_MAX_MB_ENV, _DEFAULT_MANIFEST_MAX_MB)
    return int(megabytes * 1024 * 1024)


def _streaks_from_lines(lines: Iterable[str]) -> Dict[str, int]:
    """Per-key consecutive-failure counts, mirroring the breaker's scan:
    ``ok`` resets, terminal failures increment, ``streak`` records (from
    an earlier rotation) seed the count, anything else is ignored."""
    streaks: Dict[str, int] = {}
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # truncated trailing line: append-only contract
        if not isinstance(record, dict):
            continue
        key = record.get("key")
        status = record.get("status")
        if not isinstance(key, str):
            continue
        if status == OK:
            streaks[key] = 0
        elif status == STREAK:
            count = record.get("count")
            if isinstance(count, int) and not isinstance(count, bool):
                streaks[key] = max(0, count)
        elif status in (FAILED, TIMEOUT, OOM):
            streaks[key] = streaks.get(key, 0) + 1
    return streaks


# --- deterministic fault injection ---------------------------------------------

@dataclass(frozen=True)
class _FaultDirective:
    action: str  # fail | hang | die | die-at-kernel | enospc | partial-write | slow-io
    prefix: str
    arg: Optional[float]  # fail: attempt bound; hang/slow-io: seconds; io: fire count


def parse_fault_plan(plan: str) -> Tuple[_FaultDirective, ...]:
    """Parse a ``REPRO_FAULT_INJECT`` value (see module docstring)."""
    directives = []
    for part in plan.split(","):
        part = part.strip()
        if not part:
            continue
        bits = part.split(":")
        if len(bits) == 2:
            action, prefix, arg = bits[0], bits[1], None
        elif len(bits) == 3:
            action, prefix = bits[0], bits[1]
            try:
                arg = float(bits[2])
            except ValueError:
                raise ReproError(
                    f"fault injection: non-numeric argument in {part!r}"
                )
        else:
            raise ReproError(
                f"fault injection: malformed directive {part!r} "
                "(expected action:prefix[:arg])"
            )
        if action not in _RUN_ACTIONS + _IO_ACTIONS + _ENGINE_ACTIONS:
            raise ReproError(
                f"fault injection: unknown action {action!r} in {part!r}"
            )
        if not prefix:
            raise ReproError(f"fault injection: empty prefix in {part!r}")
        if action == "die-at-kernel" and arg is None:
            raise ReproError(
                f"fault injection: {part!r} needs a kernel boundary "
                "(die-at-kernel:<prefix>:<k>)"
            )
        directives.append(_FaultDirective(action, prefix, arg))
    return tuple(directives)


def maybe_inject(
    key: str,
    kind: str,
    shard: str,
    attempt: int,
    allow_exit: bool = True,
) -> None:
    """Apply the ``REPRO_FAULT_INJECT`` plan to one run attempt.

    No-op unless the environment variable is set and a directive's
    prefix matches the run (see module docstring for the grammar).
    ``allow_exit=False`` (serial, in-process execution) converts a
    ``die`` directive into a raised :class:`InjectedFaultError` so the
    host process survives.
    """
    plan = os.environ.get(FAULT_INJECT_ENV)
    if not plan:
        return
    targets = (key, f"{kind}|{shard}")
    for directive in parse_fault_plan(plan):
        if directive.action in _IO_ACTIONS:
            # Filesystem seams, consumed through next_io_fault.
            continue
        if directive.action in _ENGINE_ACTIONS:
            # Engine-corruption seams, consumed through engine_fault_budget.
            continue
        if not any(t.startswith(directive.prefix) for t in targets):
            continue
        if directive.action == "die-at-kernel":
            # Armed mid-run via kernel_kill_hook, not per attempt.
            continue
        if directive.action == "fail":
            bound = directive.arg if directive.arg is not None else float("inf")
            if attempt <= bound:
                raise InjectedFaultError(
                    f"injected failure for {key} (attempt {attempt})"
                )
        elif directive.action == "hang":
            seconds = (
                directive.arg if directive.arg is not None
                else _DEFAULT_HANG_SECONDS
            )
            time.sleep(seconds)
            raise InjectedFaultError(
                f"injected hang for {key} expired after {seconds}s"
            )
        else:  # die
            if allow_exit:
                os._exit(3)
            raise InjectedFaultError(
                f"injected worker death for {key} (serial mode: raising)"
            )


def engine_fault_budget(action: str, *targets: str) -> int:
    """Total corruption budget for an engine directive matching ``targets``.

    Engine directives (:data:`_ENGINE_ACTIONS`) corrupt simulator
    *counters* rather than execution: the simulator arms them at run
    start by asking for the budget and spending it internally (e.g.
    ``drop-miss`` swallows that many L1-miss increments).  A directive
    matches when its prefix is a prefix of any of ``targets`` (the
    workload trace name, at minimum).  Budgets of several matching
    directives add up; the default per directive is 1.
    """
    plan = os.environ.get(FAULT_INJECT_ENV)
    if not plan:
        return 0
    total = 0
    for directive in parse_fault_plan(plan):
        if directive.action != action or directive.action not in _ENGINE_ACTIONS:
            continue
        if not any(t.startswith(directive.prefix) for t in targets):
            continue
        total += int(directive.arg) if directive.arg is not None else 1
    return total


def kernel_kill_hook(
    key: str,
    kind: str,
    shard: str,
    allow_exit: bool = True,
) -> Optional[Callable[[int], None]]:
    """Post-checkpoint kill callback for ``die-at-kernel`` directives.

    Returns ``None`` unless the ``REPRO_FAULT_INJECT`` plan holds a
    matching ``die-at-kernel`` directive; otherwise a callable suitable
    as :class:`repro.checkpoint.Checkpointer`'s ``on_checkpoint`` hook.
    The hook kills the process (or raises, serial mode) when the
    just-saved boundary is in the directive's kill set — *after* the
    snapshot became durable, so the retry exercises real resume.
    """
    plan = os.environ.get(FAULT_INJECT_ENV)
    if not plan:
        return None
    targets = (key, f"{kind}|{shard}")
    boundaries = {
        int(directive.arg)
        for directive in parse_fault_plan(plan)
        if directive.action == "die-at-kernel"
        and any(t.startswith(directive.prefix) for t in targets)
    }
    if not boundaries:
        return None

    def hook(kernels_completed: int) -> None:
        if kernels_completed not in boundaries:
            return
        if allow_exit:
            os._exit(3)
        raise InjectedFaultError(
            f"injected post-checkpoint death for {key} at kernel "
            f"boundary {kernels_completed} (serial mode: raising)"
        )

    return hook


# --- filesystem fault directives -------------------------------------------------
#
# Fired-count bookkeeping for enospc/partial-write: per process, keyed
# by (action, prefix).  Pool workers inherit the *plan* through the
# environment but count independently — checkpoint writes happen inside
# workers, store/manifest writes in the coordinator, so each seam's
# budget is spent where the seam lives.

_IO_FIRED: Dict[Tuple[str, str], int] = {}

_DEFAULT_SLOW_IO_SECONDS = 0.05


def reset_io_faults() -> None:
    """Rewind the fired-count bookkeeping (chaos phases, tests)."""
    _IO_FIRED.clear()


def next_io_fault(op: str) -> Optional[Tuple[str, Optional[float]]]:
    """The io directive to apply to one write on seam ``op``, or ``None``.

    Called by the :mod:`repro.fsio` writers with their seam label.
    ``slow-io`` matches always (arg = sleep seconds); ``enospc`` and
    ``partial-write`` consume one firing from their budget (arg = how
    many writes to break, default 1) and go quiet afterwards — so a
    retried flush models a disk that recovered.  First matching
    directive wins.
    """
    plan = os.environ.get(FAULT_INJECT_ENV)
    if not plan:
        return None
    for directive in parse_fault_plan(plan):
        if directive.action not in _IO_ACTIONS:
            continue
        if not op.startswith(directive.prefix):
            continue
        if directive.action == "slow-io":
            return (
                "slow-io",
                directive.arg if directive.arg is not None
                else _DEFAULT_SLOW_IO_SECONDS,
            )
        budget = int(directive.arg) if directive.arg is not None else 1
        fired_key = (directive.action, directive.prefix)
        if _IO_FIRED.get(fired_key, 0) >= budget:
            continue
        _IO_FIRED[fired_key] = _IO_FIRED.get(fired_key, 0) + 1
        return (directive.action, directive.arg)
    return None

"""Sharded, append-only, crash-safe simulation result store.

The store keeps one JSONL shard per benchmark under a root directory
(``results/simcache/`` by default).  Records are only ever *appended*:
a flush writes the pending records for each shard in a single
``write()`` call, so a crash can at worst truncate the final line of a
shard — which the tolerant loader simply skips.  This replaces the old
single-file cache whose full rewrite on every miss was O(total entries)
per simulation and whose truncation made every later run crash at load.

Durability rules:

* **Appends are batched.** ``put()`` stages a record; once
  ``flush_every`` records are pending (default 1: flush per record) they
  are grouped by shard and appended, one ``write()`` per shard.
* **Records are content-addressed.** Every record carries a sha256
  digest of its payload's canonical JSON form; the loader verifies it
  and treats a mismatch like any other corrupt line (``digest_mismatches``
  stat, quarantine, recompute as a miss) — a payload silently altered on
  disk can never poison downstream experiments.  Records written before
  digests existed load unverified.
* **Loads are tolerant.** A shard line that fails to parse is counted
  and skipped.  A shard containing any bad line is *quarantined*: the
  original file moves to ``<root>/quarantine/`` and the salvaged records
  are rewritten atomically (tmp + rename), so the corruption never
  crashes a run and never survives to the next load.
* **Appends are durable and failure-tolerant.**  Writes go through
  :mod:`repro.fsio` (flush + fsync, ``REPRO_NO_FSYNC=1`` to skip), and a
  failed append — ``ENOSPC``, a partial write, a paused disk guard —
  keeps the records *pending* instead of raising: computation continues
  from memory and the next flush (e.g. after space recovers) retries.
  A shard whose append failed mid-line gets a newline guard first, so a
  torn record can never concatenate with the next one.
* **Legacy import.** A pre-existing single-file ``simcache.json`` is
  imported on load (entries the shards do not already have); a truncated
  or corrupt legacy file degrades to a warning, never a crash.

Telemetry (hits, misses, flushes, corrupt lines, quarantined shards,
legacy imports) is exposed through :meth:`ResultStore.stats` and logged
by the experiment CLI.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from typing import Dict, Iterator, List, Optional, Tuple

from repro import fsio
from repro.obs.metrics import CounterBag, get_registry
from repro.obs.tracing import get_tracer
from repro.resilience import get_disk_guard
from repro.verify.digest import content_digest

__all__ = ["ResultStore", "DEFAULT_STORE_ROOT", "LEGACY_CACHE_FILE"]

DEFAULT_STORE_ROOT = os.path.join("results", "simcache")
LEGACY_CACHE_FILE = os.path.join("results", "simcache.json")

QUARANTINE_DIR = "quarantine"

_SHARD_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")


def _shard_filename(shard: str) -> str:
    name = _SHARD_SANITIZER.sub("_", shard) or "misc"
    return f"{name}.jsonl"


def _record_line(key: str, payload: dict) -> str:
    """One shard record: key, payload and a sha256 content digest.

    The digest covers the payload's canonical JSON form; the loader
    verifies it, so a payload silently altered on disk (bit rot, a
    partial overwrite that still parses, a hand edit) degrades to a
    recomputed miss instead of poisoning every later experiment that
    trusts the cache.
    """
    return (
        json.dumps(
            {"key": key, "payload": payload, "digest": content_digest(payload)}
        )
        + "\n"
    )


class ResultStore:
    """Keyed result records, persisted as one append-only shard per benchmark.

    ``root=None`` keeps the store memory-only (no I/O at all).  Records
    are plain JSON-serializable dicts; keys are opaque strings built by
    :mod:`repro.analysis.runner`.
    """

    def __init__(
        self,
        root: Optional[str],
        legacy_path: Optional[str] = None,
        flush_every: int = 1,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.root = root
        self.legacy_path = legacy_path
        self.flush_every = flush_every
        self._entries: Dict[str, dict] = {}
        self._pending: List[Tuple[str, str, dict]] = []  # (shard, key, payload)
        # Per-store telemetry on the shared stat-bag primitive; the
        # process-wide registry additionally mirrors hit/miss totals
        # while observability is recording (see ``get``).
        self._stats = CounterBag({
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "puts": 0,
            "flushes": 0,
            "appended_records": 0,
            "shards_loaded": 0,
            "corrupt_lines": 0,
            "digest_mismatches": 0,
            "schema_mismatches": 0,
            "quarantined_shards": 0,
            "legacy_imported": 0,
            "legacy_corrupt": 0,
            "checkpoints_resumed": 0,
            "cycles_saved": 0.0,
            "skipped_flushes": 0,
            "write_errors": 0,
        })
        # Shards whose last append failed mid-write: the file may end
        # with a torn line, so the next successful append leads with a
        # newline (blank lines are skipped by the loader).
        self._dirty_shards: set = set()
        self._warned_write_failure = False
        if self.root:
            self._load_shards()
        if self.legacy_path:
            self._import_legacy()
            if self._pending:
                # Migrated entries become sharded immediately so the next
                # load is served from the store alone.
                self.flush()
        self._stats["entries"] = len(self._entries)

    # --- lookups ---------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        """Return the payload for ``key`` (counting a hit) or ``None``."""
        payload = self._entries.get(key)
        if payload is None:
            self._stats["misses"] += 1
        else:
            self._stats["hits"] += 1
        if get_tracer().enabled:
            get_registry().inc(
                "cache.misses" if payload is None else "cache.hits"
            )
        return payload

    def contains(self, key: str) -> bool:
        """Membership test that does not touch the hit/miss telemetry."""
        return key in self._entries

    def peek(self, key: str) -> Optional[dict]:
        """Payload lookup that does not touch the hit/miss telemetry.

        The service's admission path answers "would this be a cache
        hit?" without committing to serving it; counting those probes
        as hits would inflate the cache stats the ``/statsz`` endpoint
        and the CI smoke assert on.
        """
        return self._entries.get(key)

    @property
    def pending(self) -> int:
        """Records staged but not yet durably appended to a shard.

        Zero after a successful :meth:`flush`; the graceful-drain path
        asserts on it before exiting so "completed results flushed"
        is checked, not assumed.
        """
        return len(self._pending)

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[str]:
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[str, dict]]:
        return iter(self._entries.items())

    # --- writes ----------------------------------------------------------------
    def put(self, key: str, payload: dict, shard: str = "misc") -> None:
        """Stage one record; flushes once ``flush_every`` records pend."""
        self._entries[key] = payload
        self._stats["puts"] += 1
        self._stats["entries"] = len(self._entries)
        if not self.root:
            return
        self._pending.append((shard, key, payload))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> int:
        """Append all pending records to their shards; returns the count.

        Records for one shard go out in a single ``write()``, so a crash
        mid-flush can only truncate the last line of one shard — which
        the tolerant loader skips on the next run.

        A failed append (``ENOSPC``, partial write) or a low-disk verdict
        from the guard keeps the affected records *pending*: in-memory
        results stay queryable and the next flush retries, so transient
        pressure costs durability only until space recovers.
        """
        if not self._pending or not self.root:
            self._pending.clear()
            return 0
        if not get_disk_guard().ok(self.root):
            # Low disk: keep computing from memory, skip persistence.
            self._stats["skipped_flushes"] += 1
            return 0
        os.makedirs(self.root, exist_ok=True)
        by_shard: Dict[str, List[Tuple[str, str, dict]]] = {}
        for record in self._pending:
            by_shard.setdefault(record[0], []).append(record)
        written = 0
        remaining: List[Tuple[str, str, dict]] = []
        for shard, records in sorted(by_shard.items()):
            path = os.path.join(self.root, _shard_filename(shard))
            text = "".join(
                _record_line(key, payload) for _, key, payload in records
            )
            if shard in self._dirty_shards:
                # The previous append may have torn its last line; a
                # leading newline isolates the fragment as one corrupt
                # line instead of letting it corrupt this record too.
                text = "\n" + text
            try:
                fsio.append_text(path, text, op="store")
            except OSError as error:
                self._dirty_shards.add(shard)
                self._stats["write_errors"] += 1
                remaining.extend(records)
                get_disk_guard().note_failure(self.root)
                if not self._warned_write_failure:
                    self._warned_write_failure = True
                    warnings.warn(
                        f"simcache: append to shard {path} failed "
                        f"({error}); keeping records pending and "
                        "continuing from memory"
                    )
            else:
                self._dirty_shards.discard(shard)
                written += len(records)
        self._pending = remaining
        if written:
            self._stats["flushes"] += 1
            self._stats["appended_records"] += written
        return written

    def clear(self) -> None:
        """Drop every record, in memory and on disk."""
        self._entries.clear()
        self._pending.clear()
        self._stats["entries"] = 0
        if not self.root or not os.path.isdir(self.root):
            return
        for fname in os.listdir(self.root):
            if fname.endswith(".jsonl"):
                os.remove(os.path.join(self.root, fname))

    # --- telemetry -------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """A snapshot of the store's counters (see module docstring)."""
        return self._stats.as_dict()

    def record_resume(self, cycles_saved: float = 0.0) -> None:
        """Count one run resumed from a checkpoint instead of cold-started;
        ``cycles_saved`` is the simulated progress the resume skipped."""
        self._stats["checkpoints_resumed"] += 1
        self._stats["cycles_saved"] += float(cycles_saved)

    def record_schema_mismatch(self, key: str = "") -> None:
        """Count a cached payload whose schema drifted from the current
        record type; the caller treats the entry as a miss and recomputes."""
        self._stats["schema_mismatches"] += 1
        if key:
            warnings.warn(
                f"simcache: cached payload for {key} no longer matches the "
                "current result schema; recomputing"
            )

    # --- loading ---------------------------------------------------------------
    def _load_shards(self) -> None:
        if not os.path.isdir(self.root):
            return
        for fname in sorted(os.listdir(self.root)):
            if not fname.endswith(".jsonl"):
                continue
            self._load_one_shard(os.path.join(self.root, fname))

    def _load_one_shard(self, path: str) -> None:
        try:
            with open(path) as fh:
                raw_lines = fh.readlines()
        except OSError as error:
            warnings.warn(f"simcache: cannot read shard {path}: {error}")
            return
        good: List[Tuple[str, dict]] = []
        bad = 0
        digest_bad = 0
        for line in raw_lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                key, payload = record["key"], record["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                bad += 1
                continue
            if not isinstance(key, str) or not isinstance(payload, dict):
                bad += 1
                continue
            # Records written before content digests existed carry none;
            # they load unverified (re-written on quarantine with one).
            digest = record.get("digest")
            if digest is not None and digest != content_digest(payload):
                digest_bad += 1
                continue
            good.append((key, payload))
        for key, payload in good:
            self._entries[key] = payload
        self._stats["shards_loaded"] += 1
        if digest_bad:
            self._stats["digest_mismatches"] += digest_bad
        if bad:
            self._stats["corrupt_lines"] += bad
        if bad or digest_bad:
            self._quarantine(path, good)

    def _quarantine(self, path: str, salvaged: List[Tuple[str, dict]]) -> None:
        """Move a corrupt shard aside and rewrite only its salvaged records."""
        qdir = os.path.join(self.root, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        base = os.path.basename(path)
        dest = os.path.join(qdir, base)
        suffix = 0
        while os.path.exists(dest):
            suffix += 1
            dest = os.path.join(qdir, f"{base}.{suffix}")
        fsio.replace_file(path, dest)
        if salvaged:
            fsio.atomic_write_text(
                path,
                "".join(_record_line(k, p) for k, p in salvaged),
                op="store",
            )
        self._stats["quarantined_shards"] += 1
        warnings.warn(
            f"simcache: shard {path} had corrupt lines; original moved to "
            f"{dest}, {len(salvaged)} records salvaged"
        )

    def _import_legacy(self) -> None:
        """Import a legacy single-file ``simcache.json`` if one exists.

        Imported entries are staged as pending so they reach the shards
        with the next flush; the legacy file itself is left untouched
        (imports are idempotent: keys already in a shard are skipped).
        """
        path = self.legacy_path
        if not path or not os.path.isfile(path):
            return
        try:
            with open(path) as fh:
                legacy = json.load(fh)
            if not isinstance(legacy, dict):
                raise ValueError("legacy cache is not a JSON object")
        except (json.JSONDecodeError, ValueError, OSError, UnicodeDecodeError) as error:
            self._stats["legacy_corrupt"] += 1
            warnings.warn(
                f"simcache: legacy cache {path} is unreadable ({error}); "
                "starting from the sharded store only"
            )
            return
        imported = 0
        for key, payload in legacy.items():
            if not isinstance(key, str) or not isinstance(payload, dict):
                self._stats["corrupt_lines"] += 1
                continue
            if key in self._entries:
                continue
            shard = str(payload.get("workload", "misc"))
            self._entries[key] = payload
            if self.root:
                self._pending.append((shard, key, payload))
            imported += 1
        self._stats["legacy_imported"] += imported

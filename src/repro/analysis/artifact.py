"""Artifact bundle export — the paper's figshare package, regenerated.

The paper's artifact distributes, per benchmark: (1) scale-model and
target IPC numbers, (2) miss-rate curves, (3) system configuration files
and (4) the prediction tool's outputs, so reviewers can verify every
reported error without re-simulation.  :func:`export_artifact` writes the
equivalent JSON bundle from this repository's (cached) runs:

    artifact/
      configs.json            Table I / Table V configurations
      strong/<bench>.json     IPCs, f_mem, MRC, predictions, errors
      weak/<bench>.json       weak-scaling equivalents
      summary.json            per-method avg/max error per experiment

Each per-benchmark file is exactly the input the ``gpu-scale-model`` CLI
needs, so the artifact round-trips: predictions can be re-derived from
the bundle alone.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence

from repro.analysis.parallel import RunRequest
from repro.analysis.runner import CachedRunner
from repro.core.baselines import METHOD_NAMES, make_predictor
from repro.core.model import ScaleModelPredictor
from repro.core.profile import ScaleModelProfile
from repro.gpu.config import GPUConfig, McmConfig, PAPER_SYSTEM_SIZES
from repro.workloads import (
    STRONG_SCALING,
    WEAK_SCALING,
    strong_scaling_names,
    weak_scaling_names,
)


def _predictions(profile: ScaleModelProfile, targets: Sequence[int]) -> Dict:
    predictor = ScaleModelPredictor(profile)
    out: Dict[str, Dict[str, float]] = {}
    for method in METHOD_NAMES:
        if method == "scale-model":
            out[method] = {str(t): predictor.predict(t).ipc for t in targets}
        else:
            fitted = make_predictor(method).fit(profile.sizes, profile.ipcs)
            out[method] = {str(t): fitted.predict(t) for t in targets}
    return out


def _errors(predictions: Dict, actuals: Dict[str, float]) -> Dict:
    out: Dict[str, Dict[str, float]] = {}
    for method, per_target in predictions.items():
        out[method] = {
            t: abs(pred - actuals[t]) / actuals[t]
            for t, pred in per_target.items()
            if t in actuals
        }
    return out


def strong_benchmark_record(
    abbr: str,
    runner: CachedRunner,
    scale_sizes: Sequence[int] = (8, 16),
    target_sizes: Sequence[int] = (32, 64, 128),
) -> Dict:
    """The artifact record for one strong-scaling benchmark."""
    spec = STRONG_SCALING[abbr]
    sims = {n: runner.simulate(spec, n) for n in (*scale_sizes, *target_sizes)}
    curve = runner.miss_rate_curve(spec)
    profile = ScaleModelProfile(
        workload=abbr,
        sizes=tuple(scale_sizes),
        ipcs=tuple(sims[n].ipc for n in scale_sizes),
        f_mem=sims[max(scale_sizes)].memory_stall_fraction,
        curve=curve,
    )
    predictions = _predictions(profile, target_sizes)
    actuals = {str(t): sims[t].ipc for t in target_sizes}
    return {
        "benchmark": abbr,
        "suite": spec.suite,
        "scenario": "strong",
        "scale_model_ipc": {str(n): sims[n].ipc for n in scale_sizes},
        "f_mem": profile.f_mem,
        "miss_rate_curve": {
            "capacities_mb": list(curve.capacities_mb),
            "mpki": list(curve.mpki),
        },
        "target_ipc": actuals,
        "predictions": predictions,
        "errors": _errors(predictions, actuals),
    }


def weak_benchmark_record(
    abbr: str,
    runner: CachedRunner,
    scale_sizes: Sequence[int] = (8, 16),
    target_sizes: Sequence[int] = (32, 64, 128),
    base_size: int = 8,
) -> Dict:
    """The artifact record for one weak-scaling benchmark."""
    spec = WEAK_SCALING[abbr]
    sims = {
        n: runner.simulate(spec, n, work_scale=n / base_size)
        for n in (*scale_sizes, *target_sizes)
    }
    profile = ScaleModelProfile(
        workload=abbr,
        sizes=tuple(scale_sizes),
        ipcs=tuple(sims[n].ipc for n in scale_sizes),
        f_mem=sims[max(scale_sizes)].memory_stall_fraction,
    )
    predictions = _predictions(profile, target_sizes)
    actuals = {str(t): sims[t].ipc for t in target_sizes}
    return {
        "benchmark": abbr,
        "suite": spec.suite,
        "scenario": "weak",
        "scale_model_ipc": {str(n): sims[n].ipc for n in scale_sizes},
        "f_mem": profile.f_mem,
        "target_ipc": actuals,
        "predictions": predictions,
        "errors": _errors(predictions, actuals),
        "simulation_seconds": {
            str(n): sims[n].wall_time_s for n in sims
        },
    }


def configs_record() -> Dict:
    """Table I + Table V configurations as plain data."""
    return {
        "monolithic": [
            GPUConfig.paper_system(n).describe() for n in PAPER_SYSTEM_SIZES
        ],
        "mcm_target": McmConfig.paper_target().describe(),
    }


def export_artifact(
    out_dir: str,
    runner: Optional[CachedRunner] = None,
    benchmarks: Optional[Sequence[str]] = None,
    weak_benchmarks: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Write the full artifact bundle; returns file counts per section."""
    runner = runner or CachedRunner()
    strong = list(benchmarks or strong_scaling_names())
    weak = list(weak_benchmarks or weak_scaling_names())
    requests = [
        RunRequest("sim", STRONG_SCALING[abbr], size=n)
        for abbr in strong
        for n in (8, 16, 32, 64, 128)
    ]
    requests += [RunRequest("mrc", STRONG_SCALING[abbr]) for abbr in strong]
    requests += [
        RunRequest("sim", WEAK_SCALING[abbr], size=n, work_scale=n / 8)
        for abbr in weak
        for n in (8, 16, 32, 64, 128)
    ]
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None:
        prefetch(requests)
    counts = {"strong": 0, "weak": 0}
    os.makedirs(os.path.join(out_dir, "strong"), exist_ok=True)
    os.makedirs(os.path.join(out_dir, "weak"), exist_ok=True)

    with open(os.path.join(out_dir, "configs.json"), "w") as fh:
        json.dump(configs_record(), fh, indent=2)

    summary: Dict[str, Dict] = {"strong": {}, "weak": {}}
    for abbr in strong:
        record = strong_benchmark_record(abbr, runner)
        with open(os.path.join(out_dir, "strong", f"{abbr}.json"), "w") as fh:
            json.dump(record, fh, indent=2)
        summary["strong"][abbr] = record["errors"]
        counts["strong"] += 1
    for abbr in weak:
        record = weak_benchmark_record(abbr, runner)
        with open(os.path.join(out_dir, "weak", f"{abbr}.json"), "w") as fh:
            json.dump(record, fh, indent=2)
        summary["weak"][abbr] = record["errors"]
        counts["weak"] += 1

    with open(os.path.join(out_dir, "summary.json"), "w") as fh:
        json.dump(summary, fh, indent=2)
    return counts

"""Scaling-behaviour classification (Table II, rightmost column).

The paper calls a workload *linear* when performance grows about
proportionally with system size, *super-linear* when some doubling of the
system more than doubles performance (the miss-rate-curve cliff), and
*sub-linear* when growth falls clearly short of proportional.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import PredictionError
from repro.workloads.spec import ScalingBehavior

#: Overall IPC growth below this fraction of ideal is sub-linear.
SUB_LINEAR_THRESHOLD = 0.78
#: Overall IPC growth above this fraction of ideal is super-linear.
SUPER_LINEAR_THRESHOLD = 1.15
#: A single doubling ratio at or above this marks a cliff (super-linear).
CLIFF_DOUBLING_RATIO = 2.35


def classify_scaling(
    ipcs: Sequence[float], sizes: Sequence[int]
) -> ScalingBehavior:
    """Classify the scaling behaviour of an IPC-versus-size profile.

    ``ipcs[i]`` is the performance at ``sizes[i]``; at least two points
    are required.  Sizes may arrive in any order — the profile is
    sorted jointly with its IPCs before the doubling ratios are formed,
    so caller ordering cannot silently change the classification.
    Duplicate sizes are rejected: two IPC readings for one size have no
    meaningful doubling ratio between them (the 0-size step would make
    the per-doubling growth factor explode).
    """
    if len(ipcs) != len(sizes) or len(ipcs) < 2:
        raise PredictionError(
            f"need matching ipcs/sizes with >= 2 points, got {len(ipcs)}/{len(sizes)}"
        )
    if len(set(sizes)) != len(sizes):
        raise PredictionError(f"duplicate sizes in profile: {list(sizes)}")
    if any(s <= 0 for s in sizes):
        raise PredictionError(f"sizes must be positive: {list(sizes)}")
    if any(x <= 0 for x in ipcs):
        raise PredictionError("IPC values must be positive")
    pairs = sorted(zip(sizes, ipcs))
    sizes = [s for s, __ in pairs]
    ipcs = [ipc for __, ipc in pairs]

    ideal = sizes[-1] / sizes[0]
    normalized = (ipcs[-1] / ipcs[0]) / ideal
    step_ratios = [
        (ipcs[i + 1] / ipcs[i]) / (sizes[i + 1] / sizes[i]) * 2.0
        for i in range(len(ipcs) - 1)
    ]
    # step_ratios are per-doubling-equivalent growth factors.
    if max(step_ratios) >= CLIFF_DOUBLING_RATIO:
        return ScalingBehavior.SUPER_LINEAR
    if normalized > SUPER_LINEAR_THRESHOLD:
        return ScalingBehavior.SUPER_LINEAR
    if normalized < SUB_LINEAR_THRESHOLD:
        return ScalingBehavior.SUB_LINEAR
    return ScalingBehavior.LINEAR

"""Cached simulation running for the experiment harness.

Every table/figure of the paper reuses the same underlying runs (scale
models, targets, miss-rate curves).  On a single-core host those runs are
the dominant cost, so :class:`CachedRunner` memoizes them on disk keyed by
a digest of the benchmark spec, the scenario and the system configuration;
editing a generator parameter in the catalog automatically invalidates the
affected entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import Dict, Optional

from repro.gpu import GPUConfig, McmConfig, simulate, simulate_mcm
from repro.gpu.results import SimulationResult
from repro.mrc import MissRateCurve, collect_miss_rate_curve
from repro.workloads import get_benchmark, build_trace
from repro.workloads.spec import BenchmarkSpec

DEFAULT_CACHE = os.path.join("results", "simcache.json")


def _spec_digest(spec: BenchmarkSpec, extra: str = "") -> str:
    payload = repr(
        (
            spec.abbr,
            spec.family,
            sorted(spec.params.items()),
            [(k.num_ctas, k.threads_per_cta) for k in spec.kernels],
            spec.footprint_mb,
            extra,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _config_digest(config) -> str:
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


class CachedRunner:
    """Runs (and memoizes) timing simulations and MRC collections."""

    def __init__(self, cache_path: Optional[str] = DEFAULT_CACHE) -> None:
        self.cache_path = cache_path
        self._cache: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if cache_path and os.path.exists(cache_path):
            with open(cache_path) as fh:
                self._cache = json.load(fh)

    # --- persistence ----------------------------------------------------------
    def _save(self) -> None:
        if not self.cache_path:
            return
        directory = os.path.dirname(self.cache_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = self.cache_path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self._cache, fh)
        os.replace(tmp, self.cache_path)

    # --- timing runs ------------------------------------------------------------
    def simulate(
        self,
        spec: BenchmarkSpec,
        num_sms: int,
        work_scale: float = 1.0,
        seed: int = 0,
    ) -> SimulationResult:
        config = GPUConfig.paper_baseline().scaled(num_sms)
        key = "|".join(
            (
                "sim",
                _spec_digest(spec, f"w={work_scale},seed={seed}"),
                _config_digest(config),
            )
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return SimulationResult(**cached)
        self.misses += 1
        trace = build_trace(
            spec,
            work_scale=work_scale,
            capacity_scale=config.capacity_scale,
            seed=seed,
        )
        result = simulate(config, trace)
        self._cache[key] = asdict(result)
        self._save()
        return result

    def simulate_mcm(
        self,
        spec: BenchmarkSpec,
        num_chiplets: int,
        work_scale: float,
        seed: int = 0,
    ) -> SimulationResult:
        config = McmConfig.paper_target().scaled(num_chiplets)
        key = "|".join(
            (
                "mcm",
                _spec_digest(spec, f"w={work_scale},seed={seed}"),
                _config_digest(config),
            )
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return SimulationResult(**cached)
        self.misses += 1
        trace = build_trace(
            spec,
            work_scale=work_scale,
            capacity_scale=config.chiplet.capacity_scale,
            seed=seed,
        )
        result = simulate_mcm(config, trace)
        self._cache[key] = asdict(result)
        self._save()
        return result

    # --- miss-rate curves ------------------------------------------------------
    def miss_rate_curve(
        self,
        spec: BenchmarkSpec,
        work_scale: float = 1.0,
        method: str = "stack",
        seed: int = 0,
    ) -> MissRateCurve:
        config = GPUConfig.paper_baseline()
        key = "|".join(
            (
                "mrc",
                _spec_digest(spec, f"w={work_scale},m={method},seed={seed}"),
                _config_digest(config),
            )
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return MissRateCurve(
                workload=cached["workload"],
                capacities_bytes=tuple(cached["capacities_bytes"]),
                mpki=tuple(cached["mpki"]),
                miss_ratio=tuple(cached["miss_ratio"]),
                metadata=cached["metadata"],
            )
        self.misses += 1
        trace = build_trace(
            spec,
            work_scale=work_scale,
            capacity_scale=config.capacity_scale,
            seed=seed,
        )
        curve = collect_miss_rate_curve(trace, config=config, method=method)
        self._cache[key] = {
            "workload": curve.workload,
            "capacities_bytes": list(curve.capacities_bytes),
            "mpki": list(curve.mpki),
            "miss_ratio": list(curve.miss_ratio),
            "metadata": curve.metadata,
        }
        self._save()
        return curve

    def clear(self) -> None:
        self._cache.clear()
        self._save()

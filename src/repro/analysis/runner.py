"""Cached simulation running for the experiment harness.

Every table/figure of the paper reuses the same underlying runs (scale
models, targets, miss-rate curves).  :class:`CachedRunner` memoizes them
on disk keyed by a digest of the benchmark spec, the scenario and the
system configuration; editing a generator parameter in the catalog —
including a kernel's ``work_share`` — automatically invalidates the
affected entries.

Persistence goes through :class:`repro.analysis.simcache.ResultStore`:
one append-only JSONL shard per benchmark under ``results/simcache/``,
tolerant of corruption and crash-safe (see that module's docstring).  A
legacy single-file ``results/simcache.json`` is imported transparently.

Cache misses can be fanned out across processes: build the run list up
front, wrap each run in a :class:`repro.analysis.parallel.RunRequest`
and call :meth:`CachedRunner.prefetch`.  Parallel and serial execution
produce identical results for every deterministic field — each run is a
pure function of (spec, scale, seed); only ``wall_time_s``, a host-time
measurement, varies between executions.

Execution is fault-tolerant (see :mod:`repro.analysis.faults` and
``docs/ARCHITECTURE.md`` § "Fault tolerance"): worker failures are
isolated per run, retried, timed out and recorded; completed results
always reach the store, and :meth:`CachedRunner.execution_health`
summarizes the casualties.  Cached payloads whose schema drifted (e.g.
after a field was added to :class:`SimulationResult`) degrade to a miss
plus a ``schema_mismatches`` stat, never a ``TypeError``.
"""

from __future__ import annotations

import hashlib
import os
import traceback
import warnings
from dataclasses import MISSING, asdict, fields
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.analysis.faults import (
    FAILED,
    OK,
    OOM,
    BatchReport,
    ExecutionPolicy,
    FailureManifest,
    RunOutcome,
    kernel_kill_hook,
    maybe_inject,
)
from repro.analysis.simcache import ResultStore
from repro.checkpoint import CheckpointPolicy, default_checkpoint_interval
from repro.exceptions import ExecutionError, ReproError
from repro.resilience import CircuitBreaker, get_coordinator, tolerant_env
from repro.verify.runtime import ensure_paranoia
from repro.gpu import GPUConfig, McmConfig, simulate, simulate_mcm
from repro.gpu.results import SimulationResult
from repro.mrc import MissRateCurve, collect_miss_rate_curve
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import get_tracer
from repro.workloads import build_trace
from repro.workloads.spec import BenchmarkSpec

DEFAULT_CACHE = os.path.join("results", "simcache")


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else ``cpu_count() - 1``."""
    jobs = tolerant_env("REPRO_JOBS", None, int, expected="an integer")
    if jobs is not None:
        return max(1, jobs)
    return max(1, (os.cpu_count() or 2) - 1)


# --- cache keys ----------------------------------------------------------------

def _spec_digest(spec: BenchmarkSpec, extra: str = "") -> str:
    payload = repr(
        (
            spec.abbr,
            spec.family,
            sorted(spec.params.items()),
            # Every KernelShape field participates, so editing any grid
            # property (num_ctas, threads_per_cta, work_share, ...)
            # invalidates the cached runs.
            [tuple(sorted(asdict(k).items())) for k in spec.kernels],
            spec.footprint_mb,
            extra,
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _config_digest(config) -> str:
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def sim_key(spec: BenchmarkSpec, num_sms: int, work_scale: float, seed: int) -> str:
    config = GPUConfig.paper_baseline().scaled(num_sms)
    return "|".join(
        (
            "sim",
            _spec_digest(spec, f"w={work_scale},seed={seed}"),
            _config_digest(config),
        )
    )


def mcm_key(
    spec: BenchmarkSpec, num_chiplets: int, work_scale: float, seed: int
) -> str:
    config = McmConfig.paper_target().scaled(num_chiplets)
    return "|".join(
        (
            "mcm",
            _spec_digest(spec, f"w={work_scale},seed={seed}"),
            _config_digest(config),
        )
    )


def mrc_key(spec: BenchmarkSpec, work_scale: float, method: str, seed: int) -> str:
    config = GPUConfig.paper_baseline()
    return "|".join(
        (
            "mrc",
            _spec_digest(spec, f"w={work_scale},m={method},seed={seed}"),
            _config_digest(config),
        )
    )


# --- pure compute functions (shared by the lazy path and pool workers) ---------

def compute_sim(
    spec: BenchmarkSpec,
    num_sms: int,
    work_scale: float,
    seed: int,
    checkpointer=None,
) -> SimulationResult:
    config = GPUConfig.paper_baseline().scaled(num_sms)
    trace = build_trace(
        spec,
        work_scale=work_scale,
        capacity_scale=config.capacity_scale,
        seed=seed,
    )
    return simulate(config, trace, checkpointer=checkpointer)


def compute_mcm(
    spec: BenchmarkSpec,
    num_chiplets: int,
    work_scale: float,
    seed: int,
    checkpointer=None,
) -> SimulationResult:
    config = McmConfig.paper_target().scaled(num_chiplets)
    trace = build_trace(
        spec,
        work_scale=work_scale,
        capacity_scale=config.chiplet.capacity_scale,
        seed=seed,
    )
    return simulate_mcm(config, trace, checkpointer=checkpointer)


def compute_mrc(
    spec: BenchmarkSpec, work_scale: float, method: str, seed: int
) -> MissRateCurve:
    config = GPUConfig.paper_baseline()
    trace = build_trace(
        spec,
        work_scale=work_scale,
        capacity_scale=config.capacity_scale,
        seed=seed,
    )
    return collect_miss_rate_curve(trace, config=config, method=method)


def curve_payload(curve: MissRateCurve) -> dict:
    return {
        "workload": curve.workload,
        "capacities_bytes": list(curve.capacities_bytes),
        "mpki": list(curve.mpki),
        "miss_ratio": list(curve.miss_ratio),
        "metadata": curve.metadata,
    }


def curve_from_payload(payload: dict) -> MissRateCurve:
    return MissRateCurve(
        workload=payload["workload"],
        capacities_bytes=tuple(payload["capacities_bytes"]),
        mpki=tuple(payload["mpki"]),
        miss_ratio=tuple(payload["miss_ratio"]),
        metadata=payload["metadata"],
    )


# --- cached-payload validation (schema drift tolerance) ------------------------
#
# A cached payload written by an older (or newer) version of the code may
# be missing fields the current record type requires, or carry fields it
# no longer knows.  Rehydrating such a payload must degrade to a cache
# miss — recompute and overwrite — never to a ``TypeError`` that kills
# the run.

_RESULT_FIELD_NAMES = frozenset(f.name for f in fields(SimulationResult))
_RESULT_REQUIRED = frozenset(
    f.name
    for f in fields(SimulationResult)
    if f.default is MISSING and f.default_factory is MISSING
)


def result_from_payload(payload: object) -> Optional[SimulationResult]:
    """Rehydrate a cached :class:`SimulationResult`, or ``None`` on drift.

    ``None`` means the payload does not match the current schema (missing
    required fields, unknown extra fields, or values the record rejects)
    and the entry should be treated as a miss.
    """
    if not isinstance(payload, dict):
        return None
    names = set(payload)
    if not _RESULT_REQUIRED <= names or not names <= _RESULT_FIELD_NAMES:
        return None
    try:
        return SimulationResult(**payload)
    except (TypeError, ValueError, ReproError):
        return None


def safe_curve_from_payload(payload: object) -> Optional[MissRateCurve]:
    """Rehydrate a cached :class:`MissRateCurve`, or ``None`` on drift."""
    if not isinstance(payload, dict):
        return None
    try:
        return curve_from_payload(payload)
    except (KeyError, TypeError, ValueError, ReproError):
        return None


def default_checkpoint_policy(
    cache_path: Optional[str],
    interval: Optional[int] = None,
    resume: bool = True,
    root: Optional[str] = None,
) -> Optional[CheckpointPolicy]:
    """The checkpoint policy matching a cache location.

    Checkpoints live beside the result store and the failure manifest
    (``<cache parent>/checkpoints/``) unless ``root`` overrides the
    location.  A memory-only cache (``cache_path=None``) without an
    explicit ``root`` disables checkpointing — there is no durable
    result for the snapshots to protect.  ``interval=None`` defers to
    ``REPRO_CHECKPOINT_INTERVAL`` (default: every kernel boundary).
    """
    if root is None:
        store_root, _ = _resolve_cache_path(cache_path)
        if not store_root:
            return None
        root = os.path.join(os.path.dirname(store_root) or ".", "checkpoints")
    return CheckpointPolicy(
        root=root,
        interval=(
            interval if interval is not None else default_checkpoint_interval()
        ),
        resume=resume,
    )


def _resolve_cache_path(
    cache_path: Optional[str],
) -> Tuple[Optional[str], Optional[str]]:
    """Map a user-facing cache path to ``(store_root, legacy_json_path)``.

    A ``.json`` path (the pre-sharding cache location) selects the
    sibling directory as the store root and imports the file itself;
    anything else is the store root directly, with ``<root>.json``
    imported when present.
    """
    if cache_path is None:
        return None, None
    if cache_path.endswith(".json"):
        return cache_path[: -len(".json")], cache_path
    return cache_path, cache_path + ".json"


class CachedRunner:
    """Runs (and memoizes) timing simulations and MRC collections.

    ``jobs`` sets the worker-pool size used by :meth:`prefetch`; the
    individual ``simulate``/``miss_rate_curve`` calls always execute
    in-process so their results are bit-identical regardless of ``jobs``.
    """

    def __init__(
        self,
        cache_path: Optional[str] = DEFAULT_CACHE,
        jobs: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
        checkpoint: Optional[CheckpointPolicy] = None,
    ) -> None:
        self.cache_path = cache_path
        root, legacy = _resolve_cache_path(cache_path)
        self.store = ResultStore(root, legacy_path=legacy)
        self.jobs = jobs if jobs is not None else 1
        self.policy = policy
        if checkpoint is None:
            checkpoint = default_checkpoint_policy(cache_path)
        self.checkpoint = checkpoint
        self.last_report: Optional[BatchReport] = None
        # The lazy in-process paths share the pool path's failure
        # manifest (and therefore its circuit breaker): serial runs must
        # feed the same per-config failure accounting as parallel ones.
        manifest_root = (
            os.path.join(os.path.dirname(self.store.root) or ".", "failures")
            if self.store.root
            else None
        )
        self.manifest = FailureManifest(manifest_root)
        self._breaker: Optional[CircuitBreaker] = None
        # Per-instance registry: tests build several runners per process,
        # so hit/miss/execution telemetry must not conflate through the
        # process-wide registry.  Exporters merge it in with a ``runner.``
        # prefix (see ``repro.obs.export.write_metrics``).
        self.metrics = MetricsRegistry()

    @property
    def hits(self) -> int:
        """Cache hits served by this runner (view over the registry)."""
        return self.metrics.counter("runner.hits").value

    @property
    def misses(self) -> int:
        """Cache misses this runner had to compute (registry view)."""
        return self.metrics.counter("runner.misses").value

    # --- batched execution -----------------------------------------------------
    def prefetch(self, requests: Iterable) -> int:
        """Execute the cache misses among ``requests`` across the pool.

        Returns the number of runs executed.  With ``jobs <= 1`` this is
        a no-op — the lazy in-process path computes the same values on
        demand, so serial and parallel invocations stay interchangeable.
        Execution outcomes (failures, timeouts, retries, pool deaths)
        accumulate into :meth:`stats` / :meth:`execution_health` even
        when the batch raises.
        """
        if self.jobs <= 1:
            return 0
        from repro.analysis.parallel import ParallelRunner

        runner = ParallelRunner(
            self.store, jobs=self.jobs, policy=self.policy,
            checkpoint=self.checkpoint,
        )
        try:
            return runner.run_batch(requests)
        finally:
            self._absorb_report(runner.last_report)

    def _absorb_report(self, report: Optional[BatchReport]) -> None:
        if report is None:
            return
        self.last_report = report
        for status, count in report.counts().items():
            self.metrics.inc(f"exec.{status}", count)

    def _checkpointer_for(self, key: str, kind: str, shard: str):
        """Per-run checkpointer for the lazy in-process path, or None.

        ``allow_exit=False``: an injected ``die-at-kernel`` crash raises
        instead of killing the host process, mirroring serial execution
        everywhere else.
        """
        if self.checkpoint is None:
            return None
        return self.checkpoint.checkpointer_for(
            key,
            on_checkpoint=kernel_kill_hook(key, kind, shard, allow_exit=False),
        )

    # --- cache telemetry -------------------------------------------------------
    def _record_hit(self, kind: str) -> None:
        self.metrics.inc("runner.hits")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("run.hit", cat="run", args={"kind": kind})

    def _record_miss(self, kind: str) -> None:
        self.metrics.inc("runner.misses")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("run.miss", cat="run", args={"kind": kind})

    def _absorb_result(self, result: SimulationResult) -> None:
        """Mirror a computed result's event counts into the registry."""
        for name, value in result.counters().items():
            self.metrics.inc(f"sim.{name}", value)

    # --- resilience (lazy in-process paths) ------------------------------------
    def _lazy_breaker(self) -> CircuitBreaker:
        if self._breaker is None:
            policy = self.policy or ExecutionPolicy()
            self._breaker = CircuitBreaker(
                self.manifest.root, policy.breaker_threshold
            )
        return self._breaker

    def _run_guarded(
        self,
        key: str,
        kind: str,
        shard: str,
        compute: Callable[[], object],
        size: int = 0,
        work_scale: float = 1.0,
        seed: int = 0,
        method: str = "stack",
    ):
        """Breaker gate + manifest accounting around one lazy run.

        Mirrors the pool path's contract for serial execution: a tripped
        config on a ``keep_going`` policy raises immediately (the CLI's
        keep-going handler skips it without burning a compute attempt),
        a failed compute lands in the failure manifest before the
        exception propagates, and a success after recorded failures
        appends the ``ok`` record that closes the breaker streak.
        """
        # Serial campaigns drain at run granularity: a requested
        # shutdown stops before the next compute starts (everything
        # completed so far is already flushed, flush_every=1).
        get_coordinator().check()
        # Self-arm paranoia mode for the lazy in-process paths — MRC
        # collections in particular never pass through a simulator's own
        # self-arm, and the curve check hooks this module's compute_mrc.
        ensure_paranoia()
        policy = self.policy or ExecutionPolicy()
        breaker = self._lazy_breaker()
        if (
            policy.keep_going
            and not policy.retry_quarantined
            and breaker.tripped(key)
        ):
            raise ExecutionError(
                f"circuit breaker open for {kind}|{shard}: "
                f"{breaker.consecutive_failures(key)} consecutive terminal "
                f"failures in {self.manifest.root}; rerun with "
                "--retry-quarantined to retry this config"
            )

        def outcome(status: str, error: Optional[str] = None) -> RunOutcome:
            return RunOutcome(
                key=key, kind=kind, shard=shard, status=status,
                attempts=1, error=error, size=size,
                work_scale=work_scale, seed=seed, method=method,
            )

        try:
            result = compute()
        except Exception as error:
            status = OOM if isinstance(error, MemoryError) else FAILED
            self.manifest.append([outcome(status, traceback.format_exc())])
            raise
        if breaker.enabled and breaker.consecutive_failures(key) > 0:
            self.manifest.append([outcome(OK)])
        return result

    # --- timing runs ------------------------------------------------------------
    def simulate(
        self,
        spec: BenchmarkSpec,
        num_sms: int,
        work_scale: float = 1.0,
        seed: int = 0,
    ) -> SimulationResult:
        key = sim_key(spec, num_sms, work_scale, seed)
        cached = self.store.get(key)
        if cached is not None:
            result = result_from_payload(cached)
            if result is not None:
                self._record_hit("sim")
                return result
            self.store.record_schema_mismatch(key)
        self._record_miss("sim")

        def compute() -> SimulationResult:
            # The lazy path is one in-process attempt; the fault-injection
            # hook arms here too so REPRO_FAULT_INJECT exercises the CLIs'
            # keep-going handling end to end, not just the pool workers.
            maybe_inject(key, "sim", spec.abbr, attempt=1, allow_exit=False)
            ckpt = self._checkpointer_for(key, "sim", spec.abbr)
            with get_tracer().span(
                f"run.sim:{spec.abbr}", cat="run", sms=num_sms
            ):
                result = compute_sim(
                    spec, num_sms, work_scale, seed, checkpointer=ckpt
                )
            if ckpt is not None and ckpt.resumed_from is not None:
                self.store.record_resume(ckpt.cycles_saved)
            return result

        result = self._run_guarded(
            key, "sim", spec.abbr, compute,
            size=num_sms, work_scale=work_scale, seed=seed,
        )
        self._absorb_result(result)
        self.store.put(key, asdict(result), shard=spec.abbr)
        return result

    def simulate_mcm(
        self,
        spec: BenchmarkSpec,
        num_chiplets: int,
        work_scale: float,
        seed: int = 0,
    ) -> SimulationResult:
        key = mcm_key(spec, num_chiplets, work_scale, seed)
        cached = self.store.get(key)
        if cached is not None:
            result = result_from_payload(cached)
            if result is not None:
                self._record_hit("mcm")
                return result
            self.store.record_schema_mismatch(key)
        self._record_miss("mcm")

        def compute() -> SimulationResult:
            maybe_inject(key, "mcm", spec.abbr, attempt=1, allow_exit=False)
            ckpt = self._checkpointer_for(key, "mcm", spec.abbr)
            with get_tracer().span(
                f"run.mcm:{spec.abbr}", cat="run", chiplets=num_chiplets
            ):
                result = compute_mcm(
                    spec, num_chiplets, work_scale, seed, checkpointer=ckpt
                )
            if ckpt is not None and ckpt.resumed_from is not None:
                self.store.record_resume(ckpt.cycles_saved)
            return result

        result = self._run_guarded(
            key, "mcm", spec.abbr, compute,
            size=num_chiplets, work_scale=work_scale, seed=seed,
        )
        self._absorb_result(result)
        self.store.put(key, asdict(result), shard=spec.abbr)
        return result

    # --- miss-rate curves ------------------------------------------------------
    def miss_rate_curve(
        self,
        spec: BenchmarkSpec,
        work_scale: float = 1.0,
        method: str = "stack",
        seed: int = 0,
    ) -> MissRateCurve:
        key = mrc_key(spec, work_scale, method, seed)
        cached = self.store.get(key)
        if cached is not None:
            curve = safe_curve_from_payload(cached)
            if curve is not None:
                self._record_hit("mrc")
                return curve
            self.store.record_schema_mismatch(key)
        self._record_miss("mrc")

        def compute() -> MissRateCurve:
            maybe_inject(key, "mrc", spec.abbr, attempt=1, allow_exit=False)
            with get_tracer().span(
                f"run.mrc:{spec.abbr}", cat="run", method=method
            ):
                return compute_mrc(spec, work_scale, method, seed)

        curve = self._run_guarded(
            key, "mrc", spec.abbr, compute,
            work_scale=work_scale, seed=seed, method=method,
        )
        self.store.put(key, curve_payload(curve), shard=spec.abbr)
        return curve

    # --- housekeeping ----------------------------------------------------------
    def _exec_counts(self) -> Dict[str, int]:
        """Execution-outcome counters in their historical ``exec_*`` keys."""
        return {
            f"exec_{status}": self.metrics.counter(f"exec.{status}").value
            for status in (
                "ok", "failed", "timeout", "retries", "pool_deaths",
                "oom", "interrupted", "skipped",
            )
        }

    def stats(self) -> Dict[str, int]:
        """Runner + store + execution telemetry (hits, misses, flushes,
        quarantines, failed/timed-out/retried runs, pool deaths)."""
        merged = self.store.stats()
        merged["runner_hits"] = self.hits
        merged["runner_misses"] = self.misses
        merged["jobs"] = self.jobs
        merged.update(self._exec_counts())
        return merged

    def execution_health(self) -> str:
        """One-line end-of-run execution summary for CLI/script output.

        A formatted view over the runner's metrics registry; the wording
        predates the registry and is kept stable for scripts and tests
        that grep it.
        """
        counts = self._exec_counts()
        text = (
            "execution: {exec_ok} ok, {exec_failed} failed, "
            "{exec_timeout} timed out, {exec_retries} retries, "
            "{exec_pool_deaths} pool deaths".format(**counts)
        )
        # Resilience statuses only appear when present, keeping the
        # baseline wording byte-identical on healthy runs.
        if counts["exec_oom"]:
            text += f", {counts['exec_oom']} out of memory"
        if counts["exec_interrupted"]:
            text += f", {counts['exec_interrupted']} interrupted"
        if counts["exec_skipped"]:
            text += f", {counts['exec_skipped']} skipped (circuit breaker)"
        store = self.store.stats()
        resumed = store.get("checkpoints_resumed", 0)
        if resumed:
            text += (
                f", {resumed} resumed from checkpoints "
                f"({store.get('cycles_saved', 0.0):.0f} cycles saved)"
            )
        if self.last_report is not None and self.last_report.degraded_to_serial:
            text += " (degraded to serial)"
        return text

    def flush(self) -> None:
        self.store.flush()

    def clear(self) -> None:
        self.store.clear()

"""Minimal ASCII line plots for figure-style experiment output.

The benchmark harness reproduces the paper's *figures* as data series; a
small ASCII rendering keeps the shape visible in terminal output without a
plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKS = "*o+x#@%&"


def plot_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
) -> str:
    """Render named y-series over shared x values as an ASCII chart."""
    if not series:
        raise ValueError("no series to plot")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length != x length")
    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x), max(x)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for __ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for xi, yi in zip(x, ys):
            col = round((xi - x_min) / (x_max - x_min) * (width - 1))
            row = round((yi - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    lines.append(f"{y_max:10.1f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.1f} +" + "-" * width)
    footer = f"{x_min:<10.0f}{x_label:^{max(0, width - 10)}}{x_max:>10.0f}"
    lines.append(" " * 12 + footer)
    return "\n".join(lines)

"""The simulation kernel: clock plus event loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.event import Event, EventQueue
from repro.exceptions import SimulationError


class SimulationKernel:
    """A discrete-event simulation clock.

    The kernel owns the global clock (in cycles, as a float so fractional
    service times compose without rounding drift) and the event queue.
    Model components schedule callbacks with :meth:`schedule` (relative
    delay) or :meth:`schedule_at` (absolute time) and the loop in
    :meth:`run` fires them in deterministic time order.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    # --- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far; a deterministic work proxy."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # --- scheduling ------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` at absolute ``time`` cycles."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._queue.push(time, callback, *args)

    # --- execution ------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Fire events until the queue drains, ``until`` passes, or
        ``max_events`` have been processed this call.

        ``until`` is inclusive: an event at exactly ``until`` still fires.
        """
        self._running = True
        fired = 0
        queue = self._queue
        try:
            while self._running:
                if max_events is not None and fired >= max_events:
                    break
                popped = queue.pop_entry()
                if popped is None:
                    break
                time, seq, callback, args = popped
                if until is not None and time > until:
                    # Re-insert with the original seq so the paused event
                    # keeps its FIFO slot among same-time events.
                    queue.push_entry(time, callback, args, seq=seq)
                    self._now = until
                    break
                self._now = time
                callback(*args)
                self._events_processed += 1
                fired += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current event."""
        self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0

"""The simulation kernel: clock plus event loop."""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Optional

from repro.engine.event import Event, EventQueue
from repro.exceptions import SimulationError

#: Optional observability hook, set by ``repro.obs.profile_hooks.install``.
#: Called as ``_run_observer(kernel, fired, duration_s)`` after each
#: :meth:`SimulationKernel.run` returns.  ``None`` (the default) keeps the
#: event loop's disabled-observability cost at a single ``is None`` check
#: per ``run()`` call — never per event.
_run_observer: Optional[Callable[["SimulationKernel", int, float], None]] = None


class SimulationKernel:
    """A discrete-event simulation clock.

    The kernel owns the global clock (in cycles, as a float so fractional
    service times compose without rounding drift) and the event queue.
    Model components schedule callbacks with :meth:`schedule` (relative
    delay) or :meth:`schedule_at` (absolute time) and the loop in
    :meth:`run` fires them in deterministic time order.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    # --- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far; a deterministic work proxy."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # --- scheduling ------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` at absolute ``time`` cycles."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        return self._queue.push(time, callback, *args)

    # --- execution ------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Fire events until the queue drains, ``until`` passes, or
        ``max_events`` have been processed this call.

        ``until`` is inclusive: an event at exactly ``until`` still fires.
        """
        self._running = True
        fired = 0
        queue = self._queue
        observer = _run_observer
        start = _time.perf_counter() if observer is not None else 0.0
        try:
            while self._running:
                if max_events is not None and fired >= max_events:
                    break
                popped = queue.pop_entry()
                if popped is None:
                    break
                time, seq, callback, args = popped[:4]
                if until is not None and time > until:
                    # Re-insert the *same* entry list: its seq keeps the
                    # FIFO slot among same-time events, and Event handles
                    # wrapping it stay live (cancellable) across the pause.
                    queue.push_entry(time, callback, args, seq=seq, entry=popped)
                    self._now = until
                    break
                self._now = time
                # Count before firing: checkpoints are taken *inside* a
                # callback (kernel boundaries), and the snapshot must
                # include the event that carried the simulation there.
                self._events_processed += 1
                callback(*args)
                fired += 1
        finally:
            self._running = False
            if observer is not None:
                observer(self, fired, _time.perf_counter() - start)

    def stop(self) -> None:
        """Ask a running :meth:`run` loop to return after the current event."""
        self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        The event queue's sequence counter rewinds with it: a reset
        kernel must be indistinguishable from a fresh one, or
        checkpoints taken after a reset carry a different ``queue_seq``
        and bit-identical state comparison across resets breaks.
        """
        self._queue.reset()
        self._now = 0.0
        self._events_processed = 0

    # --- checkpointing ----------------------------------------------------------
    def state_dict(self) -> dict:
        """Clock state for a checkpoint taken with an *empty* event queue.

        Callbacks cannot be serialized, so snapshots are only defined at
        points where no events are pending (kernel boundaries in the GPU
        model); the queue's seq counter is captured so event ordering
        stays deterministic across a resume.
        """
        if len(self._queue):
            raise SimulationError(
                f"cannot snapshot the clock with {len(self._queue)} "
                "events pending"
            )
        return {
            "now": self._now,
            "events_processed": self._events_processed,
            "queue_seq": self._queue.seq,
        }

    def load_state(self, state: dict) -> None:
        """Restore clock state captured by :meth:`state_dict`."""
        if len(self._queue):
            raise SimulationError(
                "cannot restore the clock over a non-empty event queue"
            )
        self._now = float(state["now"])
        self._events_processed = int(state["events_processed"])
        self._queue.seq = int(state["queue_seq"])

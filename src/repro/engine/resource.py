"""Contended-resource primitives with next-free-time accounting.

The GPU model computes a memory request's end-to-end latency analytically
at issue time by walking a chain of resources.  Because the simulation
kernel fires events in global time order, successive ``acquire`` calls on a
resource arrive with non-decreasing timestamps, which makes simple
next-free-time bookkeeping an exact FIFO queueing model (not an
approximation) for non-preemptive servers.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.exceptions import SimulationError


class FifoServer:
    """A single non-preemptive FIFO server.

    A request arriving at ``now`` with a given ``service_time`` starts at
    ``max(now, next_free)`` and finishes ``service_time`` later.  Busy time
    is tracked so utilization can be reported.
    """

    def __init__(self, name: str = "server") -> None:
        self.name = name
        self._next_free = 0.0
        self._busy_time = 0.0
        self._requests = 0

    @property
    def next_free(self) -> float:
        return self._next_free

    @property
    def busy_time(self) -> float:
        return self._busy_time

    @property
    def requests(self) -> int:
        return self._requests

    def service(self, now: float, service_time: float) -> float:
        """Enqueue a request; return its completion time."""
        if service_time < 0:
            raise SimulationError(
                f"{self.name}: negative service time {service_time}"
            )
        start = now if now > self._next_free else self._next_free
        finish = start + service_time
        self._next_free = finish
        self._busy_time += service_time
        self._requests += 1
        return finish

    def utilization(self, total_time: float) -> float:
        """Fraction of ``total_time`` the server was busy."""
        if total_time <= 0:
            return 0.0
        return min(1.0, self._busy_time / total_time)

    def reset(self) -> None:
        self._next_free = 0.0
        self._busy_time = 0.0
        self._requests = 0

    def state_dict(self) -> dict:
        """JSON-able snapshot of the server's accounting state."""
        return {
            "next_free": self._next_free,
            "busy_time": self._busy_time,
            "requests": self._requests,
        }

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self._next_free = float(state["next_free"])
        self._busy_time = float(state["busy_time"])
        self._requests = int(state["requests"])


class BandwidthResource(FifoServer):
    """A link or channel with a fixed transfer rate in bytes per cycle.

    Transfers serialize FIFO; a transfer of ``nbytes`` occupies the link
    for ``nbytes / bytes_per_cycle`` cycles.  This models bisection
    bandwidth for the NoC and per-controller DRAM bandwidth.
    """

    def __init__(self, bytes_per_cycle: float, name: str = "link") -> None:
        super().__init__(name=name)
        if bytes_per_cycle <= 0:
            raise SimulationError(
                f"{name}: bytes/cycle must be positive, got {bytes_per_cycle}"
            )
        self.bytes_per_cycle = bytes_per_cycle
        self._bytes_moved = 0.0

    @property
    def bytes_moved(self) -> float:
        return self._bytes_moved

    def transfer(self, now: float, nbytes: float) -> float:
        """Enqueue a transfer; return the cycle at which it completes."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative transfer size {nbytes}")
        self._bytes_moved += nbytes
        return self.service(now, nbytes / self.bytes_per_cycle)

    def reset(self) -> None:
        super().reset()
        self._bytes_moved = 0.0

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["bytes_moved"] = self._bytes_moved
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._bytes_moved = float(state["bytes_moved"])


class TokenPool:
    """A counted resource (e.g. an MSHR file) held for a time interval.

    ``acquire(now)`` returns the earliest time a token is available; the
    caller then calls ``hold(start, release_time)`` once it knows when the
    token frees.  Internally a min-heap of release times models "wait for
    the earliest slot" semantics exactly, again relying on time-ordered
    arrivals.
    """

    def __init__(self, capacity: int, name: str = "tokens") -> None:
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._releases: List[float] = []
        self._acquired = 0
        self._wait_time = 0.0

    @property
    def acquired(self) -> int:
        return self._acquired

    @property
    def total_wait_time(self) -> float:
        """Aggregate cycles requests spent waiting for a free token."""
        return self._wait_time

    def acquire(self, now: float) -> float:
        """Return the earliest time a token is free for a request arriving now."""
        if len(self._releases) < self.capacity:
            return now
        earliest = self._releases[0]
        start = now if now > earliest else earliest
        self._wait_time += start - now
        return start

    def hold(self, release_time: float) -> None:
        """Commit a token acquisition that frees at ``release_time``."""
        if len(self._releases) >= self.capacity:
            heapq.heappop(self._releases)
        heapq.heappush(self._releases, release_time)
        self._acquired += 1

    def in_flight(self, now: float) -> int:
        """Number of tokens still held at time ``now``."""
        return sum(1 for t in self._releases if t > now)

    def reset(self) -> None:
        self._releases.clear()
        self._acquired = 0
        self._wait_time = 0.0

    def state_dict(self) -> dict:
        """JSON-able snapshot; the release heap serializes as a list."""
        return {
            "releases": list(self._releases),
            "acquired": self._acquired,
            "wait_time": self._wait_time,
        }

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        releases = [float(t) for t in state["releases"]]
        heapq.heapify(releases)
        self._releases = releases
        self._acquired = int(state["acquired"])
        self._wait_time = float(state["wait_time"])

"""Event and event-queue primitives for the simulation kernel.

Heap entries are plain lists ``[time, seq, callback, args, in_heap]`` so
ordering comparisons run in C (tuple/list lexicographic compare); the
unique ``seq`` guarantees the comparison never reaches the callback and
gives deterministic FIFO ordering among same-time events.  :class:`Event`
is a thin handle wrapping the entry, kept for cancellation and
introspection.

Cancellation is lazy: a cancelled entry stays in the heap (marked dead
by a ``None`` callback) until a pop or peek compacts past it.  The queue
therefore tracks the *live* entry count separately — ``len(queue)``
reports only events that will still fire, so a queue holding nothing but
cancelled corpses is empty for every caller that matters (the kernel's
snapshot gate above all).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.exceptions import InvariantError

#: Paranoia mode (set by ``repro.verify.hooks.install``): firing a
#: cancelled event becomes a hard :class:`InvariantError` instead of a
#: counted no-op, and the kernel's checked run loop calls
#: :meth:`EventQueue.consistency_check` periodically.  A module flag
#: rather than per-queue state so the zero-overhead-off contract holds:
#: the fast path reads it only on the (cold) cancelled-fire branch.
PARANOIA = False

_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3
# Whether the entry list currently sits in a queue's heap.  The unique
# seq at index 1 guarantees lexicographic comparison never reads this
# far, so the extra slot cannot affect heap ordering.  It lets
# ``Event.cancel`` decide whether the owning queue's live count must
# drop: cancelling an entry that was already popped (fired, or re-owned
# by the caller) must not touch the count.
_IN_HEAP = 4


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("_entry", "_queue")

    def __init__(self, entry: list, queue: Optional["EventQueue"] = None) -> None:
        self._entry = entry
        self._queue = queue

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Mark the event dead; the queue drops it instead of firing it."""
        entry = self._entry
        if entry[_CALLBACK] is None:
            return  # already cancelled; never double-decrement
        entry[_CALLBACK] = None
        entry[_ARGS] = ()
        if self._queue is not None and entry[_IN_HEAP]:
            self._queue._discard_live()

    def fire(self) -> None:
        """Invoke the callback now, unless the event was cancelled.

        An event cancelled *between* being popped and being fired (the
        pop hands ownership to the caller, so a model component may still
        hold a handle and cancel it) is a counted no-op — the owning
        queue's ``cancelled_fires`` tally — or, under paranoia mode, a
        hard :class:`repro.exceptions.InvariantError`: the simulation
        kernel never fires through :class:`Event`, so a cancelled fire
        here means a model component is replaying a handle it gave up.
        """
        entry = self._entry
        callback = entry[_CALLBACK]
        if callback is None:
            if PARANOIA:
                raise InvariantError(
                    f"fired a cancelled event (time={entry[_TIME]}, "
                    f"seq={entry[_SEQ]})"
                )
            if self._queue is not None:
                self._queue.cancelled_fires += 1
            return
        callback(*entry[_ARGS])


class EventQueue:
    """A deterministic min-heap of scheduled callbacks.

    ``len(queue)`` counts *live* (uncancelled) events only; cancelled
    entries linger in the heap until compacted past but are invisible to
    every observer.
    """

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._seq = 0
        self._live = 0
        #: Cancelled events whose handles were fired anyway (no-op'd).
        #: Telemetry only — never part of checkpoint state.
        self.cancelled_fires = 0

    def __len__(self) -> int:
        return self._live

    @property
    def seq(self) -> int:
        """Next sequence number to be assigned (checkpointable state)."""
        return self._seq

    @seq.setter
    def seq(self, value: int) -> None:
        self._seq = int(value)

    def _discard_live(self) -> None:
        """A live in-heap entry was cancelled; forget it from the count."""
        self._live -= 1

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``; return a handle."""
        entry = [time, self._seq, callback, args, True]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._live += 1
        return Event(entry, self)

    def pop_entry(self) -> Optional[list]:
        """Remove and return the earliest live entry
        ``[time, seq, callback, args, ...]``, or ``None`` when the queue
        is empty.

        The *live* entry list is returned (its first four slots unpack
        exactly like the old ``(time, seq, callback, args)`` tuple) so a
        caller that re-inserts it (e.g. a horizon pause) can hand the
        same list back to :meth:`push_entry`; any :class:`Event` handle
        wrapping the entry then stays valid across the re-insert —
        ``cancel()`` keeps working.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            entry[_IN_HEAP] = False
            if entry[_CALLBACK] is not None:
                self._live -= 1
                return entry
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when empty."""
        entry = self.pop_entry()
        if entry is None:
            return None
        return Event(entry, self)

    def push_entry(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        seq: Optional[int] = None,
        entry: Optional[list] = None,
    ) -> None:
        """Re-insert a popped entry (used when a run stops at a horizon).

        Pass the entry's original ``seq`` to preserve its FIFO position:
        a fresh seq would sort the entry *behind* same-time events pushed
        since it was popped, leaking scheduling nondeterminism across
        horizon pauses.

        Pass the popped ``entry`` list itself (as returned by
        :meth:`pop_entry`) to re-insert it in place.  Building a fresh
        list would orphan any :class:`Event` handle still wrapping the
        old one — ``cancel()`` on such a handle would silently mutate a
        discarded list and the event would fire anyway.
        """
        if entry is not None:
            entry[_IN_HEAP] = True
            heapq.heappush(self._heap, entry)
            if entry[_CALLBACK] is not None:
                self._live += 1
            return
        if seq is None:
            seq = self._seq
            self._seq += 1
        heapq.heappush(self._heap, [time, seq, callback, args, True])
        self._live += 1

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heapq.heappop(heap)[_IN_HEAP] = False
        if not heap:
            return None
        return heap[0][_TIME]

    def clear(self) -> None:
        """Drop every pending entry (live or cancelled)."""
        for entry in self._heap:
            entry[_IN_HEAP] = False
        self._heap.clear()
        self._live = 0

    def reset(self) -> None:
        """Return the queue to its just-constructed state.

        Unlike :meth:`clear`, the sequence counter rewinds too, so a
        reset queue schedules events with the same seqs as a fresh one —
        checkpoints taken after a reset compare bit-identical to those
        from a new kernel.
        """
        self.clear()
        self._seq = 0
        self.cancelled_fires = 0

    def consistency_check(self) -> None:
        """Assert the live count and heap bookkeeping agree (paranoia).

        O(heap size); called periodically by the checked run loop that
        :mod:`repro.verify.hooks` installs, never on the fast path.
        Verifies three facts the event loop's correctness rests on:
        every heap member is marked in-heap, the tracked live count
        equals the number of uncancelled heap members, and the heap
        ordering property holds (a corrupted entry list — e.g. a time
        mutated after push — would silently reorder event delivery).
        """
        heap = self._heap
        live = 0
        for index, entry in enumerate(heap):
            if not entry[_IN_HEAP]:
                raise InvariantError(
                    f"heap entry at index {index} (seq={entry[_SEQ]}) is "
                    "marked out-of-heap but still sits in the heap"
                )
            if entry[_CALLBACK] is not None:
                live += 1
            parent = (index - 1) >> 1
            if index > 0 and heap[index] < heap[parent]:
                raise InvariantError(
                    f"heap property violated at index {index}: entry "
                    f"(time={entry[_TIME]}, seq={entry[_SEQ]}) sorts "
                    f"before its parent (time={heap[parent][_TIME]}, "
                    f"seq={heap[parent][_SEQ]})"
                )
        if live != self._live:
            raise InvariantError(
                f"event-queue live count drifted: tracked {self._live}, "
                f"heap scan found {live} live of {len(heap)} entries"
            )

"""Event and event-queue primitives for the simulation kernel.

Heap entries are plain lists ``[time, seq, callback, args]`` so ordering
comparisons run in C (tuple/list lexicographic compare); the unique ``seq``
guarantees the comparison never reaches the callback and gives
deterministic FIFO ordering among same-time events.  :class:`Event` is a
thin handle wrapping the entry, kept for cancellation and introspection.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3


class Event:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Mark the event dead; the queue drops it instead of firing it."""
        self._entry[_CALLBACK] = None
        self._entry[_ARGS] = ()

    def fire(self) -> None:
        callback = self._entry[_CALLBACK]
        if callback is not None:
            callback(*self._entry[_ARGS])


class EventQueue:
    """A deterministic min-heap of scheduled callbacks."""

    def __init__(self) -> None:
        self._heap: List[list] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def seq(self) -> int:
        """Next sequence number to be assigned (checkpointable state)."""
        return self._seq

    @seq.setter
    def seq(self, value: int) -> None:
        self._seq = int(value)

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``; return a handle."""
        entry = [time, self._seq, callback, args]
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def pop_entry(self) -> Optional[list]:
        """Remove and return the earliest live entry
        ``[time, seq, callback, args]``, or ``None`` when the queue is empty.

        The *live* entry list is returned (it unpacks exactly like the old
        ``(time, seq, callback, args)`` tuple) so a caller that re-inserts
        it (e.g. a horizon pause) can hand the same list back to
        :meth:`push_entry`; any :class:`Event` handle wrapping the entry
        then stays valid across the re-insert — ``cancel()`` keeps working.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[_CALLBACK] is not None:
                return entry
        return None

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` when empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[_CALLBACK] is not None:
                return Event(entry)
        return None

    def push_entry(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        seq: Optional[int] = None,
        entry: Optional[list] = None,
    ) -> None:
        """Re-insert a popped entry (used when a run stops at a horizon).

        Pass the entry's original ``seq`` to preserve its FIFO position:
        a fresh seq would sort the entry *behind* same-time events pushed
        since it was popped, leaking scheduling nondeterminism across
        horizon pauses.

        Pass the popped ``entry`` list itself (as returned by
        :meth:`pop_entry`) to re-insert it in place.  Building a fresh
        list would orphan any :class:`Event` handle still wrapping the
        old one — ``cancel()`` on such a handle would silently mutate a
        discarded list and the event would fire anyway.
        """
        if entry is not None:
            heapq.heappush(self._heap, entry)
            return
        if seq is None:
            seq = self._seq
            self._seq += 1
        heapq.heappush(self._heap, [time, seq, callback, args])

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event without removing it."""
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][_TIME]

    def clear(self) -> None:
        self._heap.clear()

"""Statistics helpers: counters, busy trackers and time-weighted states."""

from __future__ import annotations

from typing import Dict

from repro.obs.metrics import CounterBag


class Counter(CounterBag):
    """A named bag of integer counters with dict-like access.

    Thin shim over :class:`repro.obs.metrics.CounterBag`, the shared
    stat-bag primitive of the observability subsystem; kept so existing
    engine components and callers are untouched.
    """

    def get(self, key: str, default: int = 0) -> int:
        return int(super().get(key, default))


class BusyTracker:
    """Accumulates busy time from explicit (start, end) intervals.

    Overlapping intervals are the caller's responsibility to avoid; the GPU
    model only reports disjoint per-warp service intervals per resource.
    """

    def __init__(self) -> None:
        self._busy = 0.0
        self._last_end = 0.0

    @property
    def busy_time(self) -> float:
        return self._busy

    @property
    def last_end(self) -> float:
        return self._last_end

    def record(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: [{start}, {end}]")
        self._busy += end - start
        if end > self._last_end:
            self._last_end = end

    def utilization(self, total_time: float) -> float:
        if total_time <= 0:
            return 0.0
        return min(1.0, self._busy / total_time)

    def reset(self) -> None:
        self._busy = 0.0
        self._last_end = 0.0


class StateTimeTracker:
    """Tracks how long an entity spends in each named state.

    Used for SM memory-stall accounting: the SM is in state ``"mem_stall"``
    whenever every resident warp is waiting on a memory response, and the
    fraction of time in that state is the paper's ``f_mem``.
    """

    def __init__(self, initial_state: str, start_time: float = 0.0) -> None:
        self._state = initial_state
        self._since = start_time
        self._time_in: Dict[str, float] = {}

    @property
    def state(self) -> str:
        return self._state

    def transition(self, now: float, new_state: str) -> None:
        """Leave the current state at ``now`` and enter ``new_state``."""
        if now < self._since:
            raise ValueError(
                f"time went backwards: now={now} < since={self._since}"
            )
        self._time_in[self._state] = self._time_in.get(self._state, 0.0) + (
            now - self._since
        )
        self._state = new_state
        self._since = now

    def finish(self, now: float) -> None:
        """Close the open interval at end of simulation."""
        self.transition(now, self._state)

    def time_in(self, state: str) -> float:
        return self._time_in.get(state, 0.0)

    def fraction_in(self, state: str, total_time: float) -> float:
        if total_time <= 0:
            return 0.0
        return self.time_in(state) / total_time

    def as_dict(self) -> Dict[str, float]:
        return dict(self._time_in)

    def state_dict(self) -> dict:
        """JSON-able snapshot of the tracker (state, since, accumulators)."""
        return {
            "state": self._state,
            "since": self._since,
            "time_in": dict(self._time_in),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        self._state = str(state["state"])
        self._since = float(state["since"])
        self._time_in = {
            str(name): float(value)
            for name, value in state["time_in"].items()
        }

"""A small discrete-event simulation kernel.

This package is the substrate underneath the GPU timing simulator
(:mod:`repro.gpu`).  It provides:

* :class:`~repro.engine.kernel.SimulationKernel` — the event loop and clock;
* resource primitives (:class:`~repro.engine.resource.FifoServer`,
  :class:`~repro.engine.resource.BandwidthResource`,
  :class:`~repro.engine.resource.TokenPool`) that model contended hardware
  structures with *next-free-time* accounting, so a request's queueing delay
  can be computed analytically at issue time;
* statistics helpers (:mod:`repro.engine.stats`) for utilization and
  time-weighted state tracking.

The design goal is throughput: the GPU model schedules roughly one heap
event per warp resume, which keeps full benchmark runs in pure Python at
interactive speeds.
"""

from repro.engine.event import Event, EventQueue
from repro.engine.kernel import SimulationKernel
from repro.engine.resource import BandwidthResource, FifoServer, TokenPool
from repro.engine.stats import BusyTracker, Counter, StateTimeTracker

__all__ = [
    "Event",
    "EventQueue",
    "SimulationKernel",
    "FifoServer",
    "BandwidthResource",
    "TokenPool",
    "Counter",
    "BusyTracker",
    "StateTimeTracker",
]

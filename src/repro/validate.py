"""Boundary-layer input validation: configs, traces, predictor inputs.

The dataclasses in :mod:`repro.gpu.config` and :mod:`repro.trace.kernel`
reject structurally impossible inputs at construction; this module adds
the *physical-plausibility* layer the checkpoint/resume machinery and
long batch runs depend on — a nonsense input should fail loudly at the
boundary, with an actionable message, instead of producing a simulation
that silently runs forever or divides by zero three layers down.

Three families of checks:

* :func:`validate_config` / :func:`validate_mcm_config` — non-positive
  clocks and bandwidths, an LLC smaller than one cache line, degenerate
  issue/warp geometry (→ :class:`repro.exceptions.ConfigurationError`);
* :func:`validate_proportional_scaling` — a (scale-model, target) pair
  whose shared-resource ratios break the proportional-scaling rule that
  Eq. 1 of the paper assumes (→ ``ConfigurationError``);
* :func:`validate_trace` — structural trace health sampled per kernel:
  finite, non-negative compute bursts, line addresses and launch
  offsets (→ :class:`repro.exceptions.TraceError`);
* :func:`degenerate_curve_reason` — miss-rate curves with NaN/infinite
  points or non-positive capacities; the predictor degrades these to
  proportional scaling with a warning instead of raising (see
  :class:`repro.core.model.ScaleModelPredictor`).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.exceptions import ConfigurationError, TraceError
from repro.gpu.config import GPUConfig, McmConfig
from repro.trace.kernel import WorkloadTrace

__all__ = [
    "validate_config",
    "validate_mcm_config",
    "validate_proportional_scaling",
    "validate_trace",
    "degenerate_curve_reason",
]

#: Relative tolerance for proportional-scaling ratio checks (Eq. 1 rests
#: on resources scaling with SM count; rounding to whole slices/MCs makes
#: exact ratios unattainable at small sizes).
RATIO_TOLERANCE = 0.35


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def validate_config(config: GPUConfig) -> GPUConfig:
    """Physical-plausibility checks for one GPU configuration.

    Returns ``config`` unchanged so call sites can validate inline.
    Everything here is a property the timing model silently *mis*-handles
    rather than rejects: a zero clock collapses every bandwidth to zero
    bytes/cycle, an LLC smaller than one line means every "slice" is a
    zero-set cache, and negative latencies schedule events into the past.
    """
    name = config.name
    _require(
        config.sm_clock_hz > 0,
        f"{name}: sm_clock_hz must be positive, got {config.sm_clock_hz}",
    )
    _require(
        config.issue_width >= 1,
        f"{name}: issue_width must be >= 1, got {config.issue_width}",
    )
    _require(
        config.warps_per_sm >= 1,
        f"{name}: warps_per_sm must be >= 1, got {config.warps_per_sm}",
    )
    _require(
        config.threads_per_warp >= 1,
        f"{name}: threads_per_warp must be >= 1, got {config.threads_per_warp}",
    )
    _require(
        config.line_size >= 1,
        f"{name}: line_size must be >= 1, got {config.line_size}",
    )
    _require(
        config.llc_size >= config.line_size,
        f"{name}: LLC ({config.llc_size} B) is smaller than one cache "
        f"line ({config.line_size} B); no working set fits",
    )
    _require(
        config.l1_size >= config.line_size,
        f"{name}: L1 ({config.l1_size} B) is smaller than one cache "
        f"line ({config.line_size} B)",
    )
    _require(
        config.l1_assoc >= 1 and config.llc_assoc >= 1,
        f"{name}: cache associativity must be >= 1 "
        f"(l1={config.l1_assoc}, llc={config.llc_assoc})",
    )
    _require(
        config.l1_mshrs >= 1,
        f"{name}: l1_mshrs must be >= 1, got {config.l1_mshrs}",
    )
    _require(
        config.noc_bisection_bps > 0,
        f"{name}: NoC bisection bandwidth must be positive, "
        f"got {config.noc_bisection_bps}",
    )
    _require(
        config.noc_request_bytes >= 1,
        f"{name}: noc_request_bytes must be >= 1, "
        f"got {config.noc_request_bytes}",
    )
    _require(
        config.mc_bandwidth_bps > 0,
        f"{name}: per-MC bandwidth must be positive, "
        f"got {config.mc_bandwidth_bps}",
    )
    _require(
        config.llc_slice_throughput > 0,
        f"{name}: llc_slice_throughput must be positive, "
        f"got {config.llc_slice_throughput}",
    )
    for field in (
        "l1_hit_latency", "llc_latency", "dram_latency", "noc_latency"
    ):
        value = getattr(config, field)
        _require(
            math.isfinite(value) and value >= 0,
            f"{name}: {field} must be finite and >= 0, got {value}",
        )
    return config


def validate_mcm_config(config: McmConfig) -> McmConfig:
    """Plausibility checks for an MCM package (chiplet + interconnect)."""
    validate_config(config.chiplet)
    _require(
        config.inter_chiplet_bw_per_chiplet_bps > 0,
        f"{config.name}: inter-chiplet bandwidth must be positive, "
        f"got {config.inter_chiplet_bw_per_chiplet_bps}",
    )
    _require(
        math.isfinite(config.inter_chiplet_latency)
        and config.inter_chiplet_latency >= 0,
        f"{config.name}: inter_chiplet_latency must be finite and >= 0, "
        f"got {config.inter_chiplet_latency}",
    )
    return config


def validate_proportional_scaling(
    small: GPUConfig, large: GPUConfig, tolerance: float = RATIO_TOLERANCE
) -> float:
    """Check that ``(small, large)`` form a valid Eq.-1 scale-model pair.

    Eq. 1 compares IPC across sizes assuming the paper's proportional
    scaling rule: shared resources (LLC capacity, NoC bisection
    bandwidth, MC count) scale with the SM count while per-SM resources
    stay fixed.  Returns the scale factor ``large/small`` on success;
    raises :class:`ConfigurationError` naming the resource whose ratio
    deviates by more than ``tolerance`` (relative).
    """
    factor = large.num_sms / small.num_sms
    _require(
        factor >= 1.0,
        f"scale pair: target {large.name} ({large.num_sms} SMs) is "
        f"smaller than model {small.name} ({small.num_sms} SMs)",
    )
    for field in (
        "warps_per_sm", "threads_per_warp", "issue_width",
        "l1_size", "l1_assoc", "line_size",
    ):
        small_value, large_value = getattr(small, field), getattr(large, field)
        _require(
            small_value == large_value,
            f"scale pair {small.name} → {large.name}: per-SM resource "
            f"{field} changed ({small_value} → {large_value}); Eq. 1 "
            "requires fixed per-SM resources",
        )
    for field in ("llc_size", "noc_bisection_bps", "num_mcs"):
        small_value, large_value = getattr(small, field), getattr(large, field)
        ratio = large_value / small_value
        _require(
            abs(ratio - factor) <= tolerance * factor,
            f"scale pair {small.name} → {large.name}: shared resource "
            f"{field} scales by {ratio:.2f} but the SM count scales by "
            f"{factor:.2f}; proportional scaling (Eq. 1) is broken",
        )
    return factor


def _is_count(value) -> bool:
    """True for a finite, non-negative, integral number (int or float)."""
    try:
        return math.isfinite(value) and value >= 0 and value == int(value)
    except (TypeError, ValueError, OverflowError):
        return False


def validate_trace(workload: WorkloadTrace) -> WorkloadTrace:
    """Structural health checks on a workload trace, sampled per kernel.

    CTAs are built lazily and must be deterministic in ``cta_id``, so
    checking the first CTA of every kernel validates each generator at
    O(kernels) cost.  Catches what the dataclasses cannot: NaN launch
    offsets (NaN compares false against every bound), negative compute
    bursts and negative line addresses.
    """
    for kernel in workload.kernels:
        cta = kernel.build_cta(0)
        for warp_id, warp in enumerate(cta.warps):
            if not math.isfinite(warp.start_offset):
                raise TraceError(
                    f"{workload.name}/{kernel.name}: warp {warp_id} has "
                    f"non-finite start_offset {warp.start_offset}"
                )
            for burst in warp.compute:
                if not _is_count(burst):
                    raise TraceError(
                        f"{workload.name}/{kernel.name}: warp {warp_id} "
                        f"has invalid compute burst {burst!r} (need a "
                        "non-negative integer instruction count)"
                    )
            for line in warp.lines:
                if not _is_count(line):
                    raise TraceError(
                        f"{workload.name}/{kernel.name}: warp {warp_id} "
                        f"has invalid line address {line!r} (need a "
                        "non-negative integer line number)"
                    )
    return workload


def degenerate_curve_reason(curve) -> Optional[str]:
    """Why a miss-rate curve cannot drive cliff analysis, or ``None``.

    A degenerate curve (NaN/infinite miss rates, non-positive or
    unsorted capacities, fewer than two points) would poison the drop
    ratios Eq. 3 keys on; the predictor treats such profiles as
    curveless — every target pre-cliff, i.e. proportional scaling.
    """
    if len(curve.capacities_bytes) < 2:
        return f"miss-rate curve has {len(curve.capacities_bytes)} point(s)"
    previous = 0.0
    for capacity in curve.capacities_bytes:
        if not (capacity > 0) or not math.isfinite(capacity):
            return f"miss-rate curve capacity {capacity!r} is not positive"
        if capacity <= previous:
            return "miss-rate curve capacities are not strictly increasing"
        previous = capacity
    for series_name, series in (
        ("mpki", curve.mpki), ("miss_ratio", curve.miss_ratio)
    ):
        for value in series:
            if not math.isfinite(value):
                return f"miss-rate curve has non-finite {series_name} {value!r}"
    return None

"""Seeded workload fuzzer: random specs through the verify machinery.

Each :class:`FuzzCase` is a randomly generated :class:`BenchmarkSpec`
(family, grid shapes, generator knobs, footprint) plus a system size and
seed.  :func:`check_case` drives the case through the strongest oracles
the verify subsystem has:

* a paranoia-mode run (every invariant at every boundary and event);
* a determinism differential (two runs of the same case must digest
  identically at every boundary);
* a cold-vs-resume differential replay for multi-kernel cases.

Everything is seeded: the same ``seed`` always generates the same spec
and the same verdict, so CI runs a fixed seed list and a red case is
reproducible with one number.  Failing cases are *shrunk* greedily —
fewer kernels, fewer CTAs, narrower CTAs, less work — to the smallest
configuration that still fails, which is what lands in the report.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior

__all__ = [
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "check_case",
    "random_case",
    "run_fuzz",
    "shrink",
]

_FAMILY_NAMES = ("sweep", "irregular", "stream", "tiled", "chase", "hotcold")

#: Generator knobs the fuzzer perturbs, with (low, high) sampling ranges.
#: All are optional for every family (``spec.param`` has defaults), so a
#: knob landing on a family that ignores it is harmless by construction.
_PARAM_RANGES = {
    "cpa": (2.0, 16.0),
    "apw": (8, 32),
    "sigma": (0.0, 0.5),
    "cold_frac": (0.0, 0.6),
    "l1_reuse": (1, 4),
    "zipf_exp": (0.0, 1.3),
    "hot_lines": (64, 512),
    "reps": (1, 4),
    "levels": (3, 6),
}


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzed configuration: a spec plus how to run it."""

    spec: BenchmarkSpec
    size: int
    work_scale: float
    seed: int

    def describe(self) -> str:
        shapes = ", ".join(
            f"{k.num_ctas}x{k.threads_per_cta}" for k in self.spec.kernels
        )
        return (
            f"{self.spec.abbr} family={self.spec.family} kernels=[{shapes}] "
            f"footprint={self.spec.footprint_mb:.2f}MB "
            f"params={dict(self.spec.params)} size={self.size} "
            f"work_scale={self.work_scale} seed={self.seed}"
        )


@dataclass(frozen=True)
class FuzzFailure:
    case: FuzzCase
    error: str
    shrunk: FuzzCase


@dataclass(frozen=True)
class FuzzReport:
    cases_run: int
    failures: Tuple[FuzzFailure, ...]
    elapsed_s: float

    @property
    def ok(self) -> bool:
        return not self.failures


def random_case(seed: int) -> FuzzCase:
    """Deterministically generate one fuzz case from a seed."""
    rng = random.Random(seed)
    family = rng.choice(_FAMILY_NAMES)
    kernels = tuple(
        KernelShape(
            num_ctas=rng.randint(2, 6),
            threads_per_cta=rng.choice((32, 64, 128)),
        )
        for _ in range(rng.randint(1, 3))
    )
    params = {}
    for name, (low, high) in _PARAM_RANGES.items():
        if rng.random() < 0.4:
            if isinstance(low, int):
                params[name] = float(rng.randint(low, high))
            else:
                params[name] = round(rng.uniform(low, high), 3)
    spec = BenchmarkSpec(
        abbr=f"fuzz{seed}",
        name=f"fuzzed workload (seed {seed})",
        suite="fuzz",
        footprint_mb=round(rng.uniform(0.5, 4.0), 2),
        insns_m=1.0,
        kernels=kernels,
        scaling=ScalingBehavior.LINEAR,
        family=family,
        params=params,
    )
    return FuzzCase(
        spec=spec,
        size=rng.choice((2, 4)),
        work_scale=round(rng.uniform(0.05, 0.25), 3),
        seed=seed,
    )


def check_case(case: FuzzCase) -> Optional[str]:
    """Run every oracle on one case; ``None`` means it survived them all.

    Returns a one-line failure description otherwise (invariant
    violation, nondeterminism, or replay divergence).
    """
    from repro.gpu import GPUConfig
    from repro.gpu.gpu import GPUSimulator
    from repro.verify import hooks
    from repro.verify.replay import (
        digest_run,
        first_divergence,
        replay_cold_vs_resume,
    )
    from repro.workloads import build_trace

    config = GPUConfig.paper_baseline().scaled(case.size)

    def factory():
        return GPUSimulator(config)

    try:
        trace = build_trace(
            case.spec,
            work_scale=case.work_scale,
            capacity_scale=config.capacity_scale,
            seed=case.seed,
        )
        with hooks.paranoia(True):
            first = digest_run(factory, trace)
            second = digest_run(factory, trace)
            divergence = first_divergence(first, second)
            if divergence is not None:
                return f"nondeterministic replay: {divergence}"
            if len(trace.kernels) >= 2:
                _, _, divergence = replay_cold_vs_resume(factory, trace)
                if divergence is not None:
                    return f"cold-vs-resume divergence: {divergence}"
    except ReproError as error:
        return f"{type(error).__name__}: {error}"
    return None


def _candidates(case: FuzzCase) -> List[FuzzCase]:
    """Strictly-simpler variants of a case, most aggressive first."""
    out: List[FuzzCase] = []
    spec = case.spec
    if len(spec.kernels) > 1:
        for drop in range(len(spec.kernels)):
            kernels = spec.kernels[:drop] + spec.kernels[drop + 1:]
            out.append(replace(case, spec=replace(spec, kernels=kernels)))
    smaller = tuple(
        KernelShape(
            num_ctas=max(1, k.num_ctas // 2),
            threads_per_cta=k.threads_per_cta,
            work_share=k.work_share,
        )
        for k in spec.kernels
    )
    if smaller != spec.kernels:
        out.append(replace(case, spec=replace(spec, kernels=smaller)))
    narrower = tuple(
        KernelShape(
            num_ctas=k.num_ctas, threads_per_cta=32, work_share=k.work_share
        )
        for k in spec.kernels
    )
    if narrower != spec.kernels:
        out.append(replace(case, spec=replace(spec, kernels=narrower)))
    if spec.params:
        out.append(replace(case, spec=replace(spec, params={})))
    if case.work_scale > 0.05:
        out.append(
            replace(case, work_scale=round(case.work_scale / 2, 3))
        )
    if case.size > 2:
        out.append(replace(case, size=2))
    return out


def shrink(
    case: FuzzCase,
    failing: Callable[[FuzzCase], Optional[str]] = check_case,
    max_rounds: int = 32,
) -> FuzzCase:
    """Greedily minimize a failing case while it keeps failing."""
    current = case
    for _ in range(max_rounds):
        for candidate in _candidates(current):
            try:
                still_fails = failing(candidate) is not None
            except Exception:
                # A candidate that fails *differently* (e.g. now too
                # small to build) is not a simplification of this bug.
                still_fails = False
            if still_fails:
                current = candidate
                break
        else:
            return current
    return current


def run_fuzz(
    seeds,
    time_budget_s: Optional[float] = None,
    shrink_failures: bool = True,
) -> FuzzReport:
    """Check every seed (stopping early at the time budget if given)."""
    start = time.monotonic()
    failures: List[FuzzFailure] = []
    cases_run = 0
    for seed in seeds:
        if (
            time_budget_s is not None
            and time.monotonic() - start > time_budget_s
        ):
            break
        case = random_case(seed)
        error = check_case(case)
        cases_run += 1
        if error is not None:
            shrunk = shrink(case) if shrink_failures else case
            failures.append(FuzzFailure(case, error, shrunk))
    return FuzzReport(
        cases_run=cases_run,
        failures=tuple(failures),
        elapsed_s=time.monotonic() - start,
    )

"""Differential replay: one workload, two execution paths, diffed digests.

A :class:`DigestRecorder` rides the simulator's checkpoint seam — it is
a drop-in ``Checkpointer`` whose policy is "every boundary" and whose
storage is an in-memory digest list — so :func:`digest_run` captures a
canonical fingerprint of the complete simulator state at every internal
kernel boundary plus the final result, without touching the engine.

:func:`first_divergence` then compares two such traces and names the
*first* kernel boundary and state field where they part ways — ``sms``
vs. ``memory`` vs. ``clock`` — which localizes an engine bug to one
kernel's execution and one component, instead of one opaque "results
differ" at the end of the run.

Shipped differentials:

* :func:`replay_cold_vs_resume` — an uninterrupted run vs. one resumed
  from a mid-run checkpoint of the first; every boundary after the
  resume point and the final result must digest identically.
* :func:`replay_checked_vs_plain` — the paranoia-mode checked event loop
  vs. the pristine one; guards the checked loop's semantics against
  drifting from the code it replaces.

The serial-vs-parallel differential lives at the analysis layer (store
payload comparison; see ``tests/verify/``): worker processes cannot ship
an in-memory recorder back, but a run's payload digest is exactly the
fingerprint that must match.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.verify.digest import payload_digest, state_field_digests

__all__ = [
    "BoundarySnapshot",
    "DigestRecorder",
    "Divergence",
    "ReplayTrace",
    "digest_run",
    "first_divergence",
    "replay_checked_vs_plain",
    "replay_cold_vs_resume",
]

#: Comparison order for state fields: clock first (a clock divergence
#: usually explains everything downstream), then execution state.
_STATE_FIELDS = ("clock", "accesses", "cta_seq", "sms", "memory")


@dataclass(frozen=True)
class BoundarySnapshot:
    """Digest fingerprint of one kernel boundary."""

    kernels_completed: int
    cycles: float
    field_digests: Dict[str, str]
    #: The full checkpoint payload, kept only when the caller plans to
    #: resume from this boundary (``keep_payloads=True``).
    payload: Optional[dict] = None


@dataclass(frozen=True)
class ReplayTrace:
    """One execution path's boundary digests plus its final result."""

    workload: str
    boundaries: Tuple[BoundarySnapshot, ...]
    result_digest: str
    result: object
    resumed_from: Optional[int] = None

    def boundary_map(self) -> Dict[int, BoundarySnapshot]:
        return {b.kernels_completed: b for b in self.boundaries}


@dataclass(frozen=True)
class Divergence:
    """The first point where two replay traces disagree.

    ``kernel`` is the boundary's kernels-completed count, or ``None``
    when the divergence only shows in the final result.
    """

    kernel: Optional[int]
    field: str
    a_digest: str
    b_digest: str

    def __str__(self) -> str:
        where = (
            f"kernel boundary {self.kernel}" if self.kernel is not None
            else "final result"
        )
        return (
            f"first divergence at {where}, field {self.field!r}: "
            f"{self.a_digest} != {self.b_digest}"
        )


class DigestRecorder:
    """A ``Checkpointer`` that records digests instead of writing files.

    Satisfies the full checkpointer interface the simulator drives
    (``should_checkpoint`` / ``save`` / ``load_latest`` /
    ``mark_resumed`` / ``cleanup``), so replay needs no engine seam of
    its own: the checkpoint payload *is* the canonical boundary state.
    """

    def __init__(
        self,
        resume_payload: Optional[dict] = None,
        keep_payloads: bool = False,
    ) -> None:
        self.snapshots: List[BoundarySnapshot] = []
        self.resumed_from: Optional[int] = None
        self.cycles_saved: float = 0.0
        self._resume_payload = resume_payload
        self._keep_payloads = keep_payloads

    def should_checkpoint(self, kernels_completed: int) -> bool:
        return True

    def save(self, payload: dict) -> None:
        self.snapshots.append(
            BoundarySnapshot(
                kernels_completed=int(payload["kernels_completed"]),
                cycles=float(payload["cycles"]),
                field_digests=state_field_digests(payload["state"]),
                payload=payload if self._keep_payloads else None,
            )
        )

    def load_latest(self) -> Optional[dict]:
        return self._resume_payload

    def mark_resumed(self, kernels_completed: int, cycles: float) -> None:
        self.resumed_from = kernels_completed
        self.cycles_saved = cycles

    def cleanup(self) -> None:
        """Snapshots are the product here, not crash insurance: keep them."""


def digest_run(
    simulator_factory: Callable[[], object],
    workload,
    resume_payload: Optional[dict] = None,
    keep_payloads: bool = False,
) -> ReplayTrace:
    """Run ``workload`` once, fingerprinting every kernel boundary.

    ``simulator_factory`` must build a fresh simulator per call
    (simulators are single-use).  With ``resume_payload`` the run resumes
    from that checkpoint instead of starting cold — the replayed half
    must then digest identically to the original's same boundaries.
    """
    recorder = DigestRecorder(
        resume_payload=resume_payload, keep_payloads=keep_payloads
    )
    result = simulator_factory().run(workload, checkpointer=recorder)
    return ReplayTrace(
        workload=workload.name,
        boundaries=tuple(recorder.snapshots),
        result_digest=payload_digest(asdict(result)),
        result=result,
        resumed_from=recorder.resumed_from,
    )


def first_divergence(a: ReplayTrace, b: ReplayTrace) -> Optional[Divergence]:
    """The first kernel boundary and field where two traces disagree.

    Only boundaries both traces recorded are compared (a resumed trace
    starts at its resume point), in kernel order; the final result digest
    is compared last.  ``None`` means the paths are indistinguishable.
    """
    a_map, b_map = a.boundary_map(), b.boundary_map()
    for kernel in sorted(a_map.keys() & b_map.keys()):
        snap_a, snap_b = a_map[kernel], b_map[kernel]
        for name in _STATE_FIELDS:
            da = snap_a.field_digests.get(name, "<absent>")
            db = snap_b.field_digests.get(name, "<absent>")
            if da != db:
                return Divergence(kernel, name, da, db)
        # Unknown extra fields (future state additions) still compared,
        # after the canonical ones, in sorted order.
        extra = (
            set(snap_a.field_digests) | set(snap_b.field_digests)
        ) - set(_STATE_FIELDS)
        for name in sorted(extra):
            da = snap_a.field_digests.get(name, "<absent>")
            db = snap_b.field_digests.get(name, "<absent>")
            if da != db:
                return Divergence(kernel, name, da, db)
        if snap_a.cycles != snap_b.cycles:
            return Divergence(
                kernel, "cycles", repr(snap_a.cycles), repr(snap_b.cycles)
            )
    if a.result_digest != b.result_digest:
        return Divergence(None, "result", a.result_digest, b.result_digest)
    return None


def replay_cold_vs_resume(
    simulator_factory: Callable[[], object],
    workload,
    resume_at: Optional[int] = None,
) -> Tuple[ReplayTrace, ReplayTrace, Optional[Divergence]]:
    """Differential: uninterrupted run vs. checkpoint-resume replay.

    Runs cold once (keeping full boundary payloads), then replays from
    the ``resume_at``-th boundary's checkpoint (default: the middle one).
    Requires a workload with at least two kernels — single-kernel runs
    have no internal boundary to resume from.
    """
    cold = digest_run(simulator_factory, workload, keep_payloads=True)
    if not cold.boundaries:
        raise ValueError(
            f"{workload.name}: no internal kernel boundaries to resume "
            "from (needs >= 2 kernels)"
        )
    if resume_at is None:
        resume_at = cold.boundaries[len(cold.boundaries) // 2].kernels_completed
    by_kernel = cold.boundary_map()
    if resume_at not in by_kernel:
        raise ValueError(
            f"{workload.name}: no boundary at kernels_completed="
            f"{resume_at}; have {sorted(by_kernel)}"
        )
    resumed = digest_run(
        simulator_factory, workload, resume_payload=by_kernel[resume_at].payload
    )
    return cold, resumed, first_divergence(cold, resumed)


def replay_checked_vs_plain(
    simulator_factory: Callable[[], object],
    workload,
) -> Tuple[ReplayTrace, ReplayTrace, Optional[Divergence]]:
    """Differential: paranoia-mode checked event loop vs. the pristine one.

    The checked loop is a reimplementation of ``SimulationKernel.run``;
    this differential is the sync guard that keeps the two semantically
    identical.
    """
    import os

    from repro.verify import hooks
    from repro.verify.runtime import VERIFY_ENV

    # The plain run must stay plain even under REPRO_VERIFY=1: simulators
    # self-arm at run start, so the env override comes off for its leg.
    saved = os.environ.pop(VERIFY_ENV, None)
    try:
        with hooks.paranoia(False):
            plain = digest_run(simulator_factory, workload)
    finally:
        if saved is not None:
            os.environ[VERIFY_ENV] = saved
    with hooks.paranoia(True):
        checked = digest_run(simulator_factory, workload)
    return plain, checked, first_divergence(plain, checked)

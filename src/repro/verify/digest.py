"""Canonical content digests over JSON-able state and result payloads.

Everything the verify subsystem compares — kernel-boundary snapshots in
differential replay, result payloads in the golden ledger, simcache
records — reduces to one canonical form: JSON with sorted keys and no
whitespace, hashed with sha256.  Float formatting goes through Python's
``repr`` (shortest round-trip), which is deterministic for identical
doubles across platforms, so equal state always digests equally and a
single flipped counter always shows.

This module imports nothing from the rest of the package (only the
standard library) so any layer — including :mod:`repro.analysis.simcache`
below the analysis stack — can use it without import cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, FrozenSet, Iterable

__all__ = [
    "VOLATILE_RESULT_FIELDS",
    "canonical_json",
    "content_digest",
    "payload_digest",
    "state_digest",
    "state_field_digests",
]

#: Result-payload fields that legitimately differ between identical runs
#: (host-time measurements); excluded — at any nesting depth — from every
#: result digest.  ``wall_time_s`` is the simulation payloads' wall
#: clock, ``collection_seconds`` its counterpart in MRC payloads'
#: ``metadata`` block.
VOLATILE_RESULT_FIELDS: FrozenSet[str] = frozenset(
    {"wall_time_s", "collection_seconds"}
)

_PREFIX = "sha256:"


def _scrub(value: object, excluded: FrozenSet[str]) -> object:
    """Recursively drop excluded keys from dicts (lists descended too)."""
    if isinstance(value, dict):
        return {
            key: _scrub(item, excluded)
            for key, item in value.items()
            if key not in excluded
        }
    if isinstance(value, (list, tuple)):
        return [_scrub(item, excluded) for item in value]
    return value


def canonical_json(value: object) -> str:
    """One canonical serialization per value: sorted keys, no whitespace.

    Raises ``TypeError`` on non-JSON-able input — digests over silently
    coerced state would compare equal when the state is not.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_digest(value: object) -> str:
    """``sha256:<hex>`` over the canonical JSON form of ``value``."""
    return _PREFIX + hashlib.sha256(canonical_json(value).encode()).hexdigest()


def payload_digest(
    payload: Dict[str, object],
    exclude: Iterable[str] = VOLATILE_RESULT_FIELDS,
) -> str:
    """Digest of a result payload with its volatile fields dropped.

    The exclusion applies at every nesting depth: host-time measurements
    are volatile wherever they sit (``wall_time_s`` at a simulation
    payload's top level, ``collection_seconds`` inside an MRC payload's
    ``metadata``), and everything else must digest identically between
    serial/parallel and cold/resumed runs of the same config.
    """
    return content_digest(_scrub(payload, frozenset(exclude)))


def state_field_digests(state: Dict[str, object]) -> Dict[str, str]:
    """Per-field digests of a simulator ``_state_dict()`` snapshot.

    Differential replay compares these field by field so a divergence
    names the component that drifted (``clock``, ``sms``, ``memory``,
    ``accesses``, ``cta_seq``) instead of reporting one opaque mismatch.
    """
    return {field: content_digest(value) for field, value in state.items()}


def state_digest(state: Dict[str, object]) -> str:
    """One digest over a whole simulator state snapshot."""
    return content_digest(state)

"""Correctness verification: invariants, differential replay, goldens.

Four pillars, all opt-in (``REPRO_VERIFY=1`` or ``--verify``) and
zero-cost when off:

* :mod:`repro.verify.invariants` — the runtime invariant catalog
  paranoia mode asserts at kernel boundaries and event-queue operations.
* :mod:`repro.verify.hooks` — the opt-in seam that installs those
  checks over the live engine (mirrors the ``repro.obs`` pattern).
* :mod:`repro.verify.replay` — differential replay: one workload, two
  execution paths, first-divergence reporting at kernel-boundary
  granularity.
* :mod:`repro.verify.golden` — content-addressed golden-result ledger
  for the Tier-1 workloads (``results/golden/``).
* :mod:`repro.verify.fuzz` — seeded workload fuzzer with shrinking,
  driving the invariant checker and differential replay.

Only the import-light leaves (:mod:`repro.verify.digest`,
:mod:`repro.verify.runtime`) load at package scope; :mod:`repro.gpu.gpu`
imports this package, so anything that reaches back into the model or
analysis layers must stay behind deferred imports.
"""

from repro.verify.digest import (
    VOLATILE_RESULT_FIELDS,
    canonical_json,
    content_digest,
    payload_digest,
    state_digest,
    state_field_digests,
)
from repro.verify.runtime import VERIFY_ENV, ensure_paranoia, verify_enabled

__all__ = [
    "VERIFY_ENV",
    "VOLATILE_RESULT_FIELDS",
    "canonical_json",
    "content_digest",
    "ensure_paranoia",
    "install",
    "payload_digest",
    "state_digest",
    "state_field_digests",
    "uninstall",
    "verify_enabled",
]


def install() -> None:
    """Install paranoia-mode hooks over the engine (idempotent)."""
    from repro.verify import hooks

    hooks.install()


def uninstall() -> None:
    """Remove paranoia-mode hooks, restoring the pristine engine."""
    from repro.verify import hooks

    hooks.uninstall()

"""The invariant catalog paranoia mode asserts.

Each check guards a specific piece of the model's algebra (see
``docs/ARCHITECTURE.md`` § Verification for the full table):

* **Event queue** — live-count/heap consistency and heap ordering
  (:meth:`repro.engine.event.EventQueue.consistency_check`), plus clock
  monotonicity per fired event in the checked run loop.
* **Kernel boundaries** — the queue must be drained, the clock and event
  counter must not run backwards across boundaries, and the conservation
  identities must hold exactly:
  ``sum(sm.accesses) == memory_accesses == l1_hits + l1_misses`` and
  ``llc_hits + llc_misses == l1_misses - merged`` (every L1 miss either
  merges with an in-flight fill or probes the LLC exactly once).  These
  are integer identities — any drift is a dropped or double-counted
  event, precisely the class of bug a vectorized engine rewrite risks.
* **Simulation results** — the same conservation identities on the final
  counters, plus range checks on ``f_mem`` (the Eq. 3 input) and
  instruction accounting.
* **Miss-rate curves** — MPKI and miss ratio monotone non-increasing in
  capacity (the LRU inclusion property Eq. 1's cliff detection rests
  on), miss ratios within [0, 1].
* **Predictions** — the published Eq. 2/3/4 algebra recomputed from the
  predictor's own profile must reproduce the returned IPC, and the
  ``details`` dict must be consistent with the inputs.

Checks are pure observers: they read simulator state, never mutate it,
and raise :class:`repro.exceptions.InvariantError` with enough context
to localize the violation (workload, kernel boundary, the two sides of
the broken identity).
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.exceptions import InvariantError
from repro.mrc.cliff import Region

__all__ = [
    "check_queue",
    "check_boundary",
    "check_conservation",
    "check_result",
    "check_curve",
    "check_prediction",
]

#: Relative tolerance for floating-point identities (Eq. 2-4 recompute).
_REL_TOL = 1e-9

#: Absolute slack for MRC monotonicity: the statstack estimator is a
#: statistical approximation and may wobble at the last digit; anything
#: beyond this is a real inversion.
_CURVE_TOL = 1e-9


def _workload_of(sim) -> str:
    workload = getattr(sim, "_workload", None)
    return getattr(workload, "name", "?")


def check_queue(queue) -> None:
    """Live-count/heap consistency scan (delegates to the queue)."""
    queue.consistency_check()


def _l1_caches(memory) -> List:
    """Every L1 cache of a memory backend (monolithic or MCM)."""
    subsystems = getattr(memory, "subsystems", None)
    if subsystems is None:
        return list(memory.l1s)
    l1s: List = []
    for subsystem in subsystems:
        l1s.extend(subsystem.l1s)
    return l1s


def check_conservation(sim) -> None:
    """Instruction & miss conservation across SMs vs. the totals.

    Exact integer identities; see the module docstring.  ``sim`` is the
    (flat) :class:`repro.gpu.gpu.GPUSimulator` — the MCM model wraps one,
    and its aggregate counters sum over chiplets, so both machine models
    are checked by the same identities.
    """
    name = _workload_of(sim)
    memory = sim.memory
    sm_accesses = sum(sm.accesses for sm in sim.sms)
    if sm_accesses != sim._accesses:
        raise InvariantError(
            f"{name}: access conservation broken: per-SM accesses sum to "
            f"{sm_accesses} but the simulator counted {sim._accesses}"
        )
    l1_total = memory.l1_hits + memory.l1_misses
    if l1_total != sim._accesses:
        raise InvariantError(
            f"{name}: miss conservation broken: l1_hits ({memory.l1_hits}) "
            f"+ l1_misses ({memory.l1_misses}) = {l1_total}, but "
            f"{sim._accesses} accesses were issued — an increment was "
            "dropped or double-counted"
        )
    expected_llc = memory.l1_misses - memory.merged
    llc_total = memory.llc_hits + memory.llc_misses
    if llc_total != expected_llc:
        raise InvariantError(
            f"{name}: LLC conservation broken: llc_hits ({memory.llc_hits})"
            f" + llc_misses ({memory.llc_misses}) = {llc_total}, expected "
            f"l1_misses - merged = {memory.l1_misses} - {memory.merged} "
            f"= {expected_llc}"
        )
    per_l1_merged = sum(l1.merged for l1 in _l1_caches(memory))
    if per_l1_merged != memory.merged:
        raise InvariantError(
            f"{name}: merge accounting broken: per-L1 merged counters sum "
            f"to {per_l1_merged}, aggregate says {memory.merged}"
        )


def check_boundary(sim, kernels_completed: int) -> None:
    """Full invariant sweep at a kernel boundary.

    Called by the installed boundary observer after kernel
    ``kernels_completed - 1`` drains.  The ``_verify_prev_boundary``
    attribute this leaves on the simulator is bookkeeping for the
    cross-boundary monotonicity checks only — it is not model state and
    never reaches a checkpoint.
    """
    name = _workload_of(sim)
    clock = sim.kernel_clock
    if clock.pending_events:
        raise InvariantError(
            f"{name}: kernel boundary {kernels_completed} reached with "
            f"{clock.pending_events} events still pending — boundaries "
            "are defined by a drained queue"
        )
    check_queue(clock._queue)
    previous = getattr(sim, "_verify_prev_boundary", None)
    if previous is not None:
        prev_k, prev_now, prev_events = previous
        if kernels_completed != prev_k + 1:
            raise InvariantError(
                f"{name}: kernel boundaries out of order: "
                f"{prev_k} -> {kernels_completed}"
            )
        if clock.now < prev_now:
            raise InvariantError(
                f"{name}: clock ran backwards across kernel boundaries: "
                f"{prev_now} -> {clock.now}"
            )
        if clock.events_processed < prev_events:
            raise InvariantError(
                f"{name}: event counter ran backwards across kernel "
                f"boundaries: {prev_events} -> {clock.events_processed}"
            )
    sim._verify_prev_boundary = (
        kernels_completed, clock.now, clock.events_processed,
    )
    check_conservation(sim)


def check_result(result) -> None:
    """Conservation and range checks on a finished simulation result."""
    name = result.workload
    if result.l1_hits + result.l1_misses != result.memory_accesses:
        raise InvariantError(
            f"{name}: result miss conservation broken: l1_hits "
            f"({result.l1_hits}) + l1_misses ({result.l1_misses}) != "
            f"memory_accesses ({result.memory_accesses})"
        )
    merged = result.extra.get("l1_merged")
    if merged is not None:
        expected_llc = result.l1_misses - int(merged)
        if result.llc_hits + result.llc_misses != expected_llc:
            raise InvariantError(
                f"{name}: result LLC conservation broken: llc_hits "
                f"({result.llc_hits}) + llc_misses ({result.llc_misses}) "
                f"!= l1_misses - merged = {expected_llc}"
            )
    if result.cycles <= 0:
        raise InvariantError(f"{name}: non-positive cycle count {result.cycles}")
    if not 0.0 <= result.memory_stall_fraction <= 1.0:
        raise InvariantError(
            f"{name}: f_mem out of range: {result.memory_stall_fraction} "
            "(Eq. 3 divides by 1 - f_mem)"
        )
    if (
        result.warp_instructions > 0
        and result.thread_instructions % result.warp_instructions
    ):
        raise InvariantError(
            f"{name}: thread instructions ({result.thread_instructions}) "
            "are not a whole multiple of warp instructions "
            f"({result.warp_instructions})"
        )


def check_curve(curve) -> None:
    """MRC monotonicity in capacity (LRU inclusion) and ratio ranges."""
    name = curve.workload
    for a, b in zip(curve.mpki, curve.mpki[1:]):
        if b > a + _CURVE_TOL:
            raise InvariantError(
                f"{name}: MPKI increases with LLC capacity ({a} -> {b}); "
                "a larger LRU cache can never miss more (inclusion "
                "property) — the MRC collector is broken"
            )
    for ratio in curve.miss_ratio:
        if not 0.0 <= ratio <= 1.0:
            raise InvariantError(
                f"{name}: miss ratio {ratio} outside [0, 1]"
            )
    for a, b in zip(curve.miss_ratio, curve.miss_ratio[1:]):
        if b > a + _CURVE_TOL:
            raise InvariantError(
                f"{name}: miss ratio increases with LLC capacity "
                f"({a} -> {b})"
            )


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=0.0)


def check_prediction(predictor, result) -> None:
    """Eq. 2-4 algebraic consistency of one prediction.

    Recomputes the published formulas from the predictor's own profile
    and requires the returned IPC (and the ``details`` the predictor
    reports alongside it) to match to within floating-point noise.
    """
    profile = predictor.profile
    name = profile.workload
    large_size, ipc_l = profile.largest
    correction = profile.correction_factor()
    if not _close(result.correction_factor, correction):
        raise InvariantError(
            f"{name}: reported correction factor {result.correction_factor}"
            f" != profile correction factor {correction}"
        )
    scale = result.target_size / large_size
    details = result.details
    if result.region is Region.PRE_CLIFF:
        expected = ipc_l * scale * correction
    elif result.region is Region.CLIFF:
        f_mem = details.get("f_mem", profile.f_mem)
        if f_mem is None or not 0.0 <= f_mem < 1.0:
            raise InvariantError(
                f"{name}: Eq. 3 needs f_mem in [0, 1), got {f_mem}"
            )
        if profile.f_mem is not None and not _close(f_mem, profile.f_mem):
            raise InvariantError(
                f"{name}: details carry f_mem={f_mem}, profile says "
                f"{profile.f_mem}"
            )
        expected = ipc_l * scale / (1.0 - f_mem)
    else:  # POST_CLIFF (Eq. 4)
        f_mem = details.get("f_mem", profile.f_mem)
        anchor_size = details.get("anchor_size")
        anchor_ipc = details.get("anchor_ipc")
        if f_mem is None or not 0.0 <= f_mem < 1.0:
            raise InvariantError(
                f"{name}: Eq. 4 needs f_mem in [0, 1), got {f_mem}"
            )
        if not anchor_size or anchor_ipc is None:
            raise InvariantError(
                f"{name}: Eq. 4 details missing the anchor: {details}"
            )
        expected_anchor = ipc_l * (anchor_size / large_size) / (1.0 - f_mem)
        if not _close(anchor_ipc, expected_anchor):
            raise InvariantError(
                f"{name}: Eq. 4 anchor IPC {anchor_ipc} != Eq. 3 at the "
                f"anchor size ({expected_anchor})"
            )
        expected = anchor_ipc * (result.target_size / anchor_size) * correction
    if result.ipc <= 0:
        raise InvariantError(f"{name}: non-positive predicted IPC {result.ipc}")
    if not _close(result.ipc, expected):
        raise InvariantError(
            f"{name}@{result.target_size} ({result.region.name}): "
            f"predicted IPC {result.ipc} does not reproduce from the "
            f"profile (expected {expected}) — Eq. 2-4 algebra drifted"
        )

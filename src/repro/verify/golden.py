"""The golden-result ledger: content-addressed Tier-1 result digests.

``results/golden/ledger.json`` pins a sha256 digest of every quick-tier
run's payload (volatile host-time fields excluded, so the digests are
machine-independent).  ``scripts/verify_golden.py`` recomputes the tier
and audits against the ledger:

* a **drift** (same key, different digest) means the engine's output
  changed — either a bug, or an intentional model change that must be
  re-blessed explicitly (``--bless --reason "..."``), never silently;
* an **absence** means the tier definition and the ledger disagree —
  the ledger must be re-blessed after matrix changes.

Because serial and parallel execution produce identical payloads for
every deterministic field, a ledger blessed from a serial run audited
against a ``--jobs N`` recomputation *is* the serial-vs-parallel
differential: any scheduling-dependent nondeterminism shows up as drift.

The chaos harnesses (``scripts/chaos_soak.py``, ``service_chaos.py``)
use the same audit to assert that a fault schedule corrupted nothing:
results computed under injected crashes/ENOSPC must digest identically
to a clean run's.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.fsio import atomic_write_text
from repro.verify.digest import payload_digest

__all__ = [
    "AuditReport",
    "DEFAULT_LEDGER_PATH",
    "LEDGER_VERSION",
    "audit_store",
    "build_ledger",
    "ledger_requests",
    "load_ledger",
    "pin_store",
    "save_ledger",
]

DEFAULT_LEDGER_PATH = os.path.join("results", "golden", "ledger.json")
LEDGER_VERSION = 1


def ledger_requests(matrix) -> List:
    """The runs a bench matrix pins: one sim per size plus one MRC per case.

    Mirrors the bench harness's request list exactly — the golden tier
    and the perf tier must cover the same runs or drift could hide in
    the gap between them.
    """
    from repro.analysis.parallel import RunRequest

    requests = [
        RunRequest("sim", case.spec, size=size, seed=matrix.seed)
        for case in matrix.cases
        for size in case.sizes
    ]
    requests.extend(
        RunRequest("mrc", case.spec, seed=matrix.seed) for case in matrix.cases
    )
    return requests


def _entry_for(request, digest: str) -> Dict[str, object]:
    return {
        "kind": request.kind,
        "workload": request.spec.abbr,
        "size": request.size,
        "work_scale": request.work_scale,
        "seed": request.seed,
        "method": request.method,
        "digest": digest,
    }


def build_ledger(
    matrix,
    runner,
    reason: str,
    blessed_at: Optional[str] = None,
) -> dict:
    """Compute (or reuse cached) tier runs and pin their digests.

    ``runner`` is a :class:`repro.analysis.runner.CachedRunner`; misses
    execute through its normal guarded paths, so a ledger build under
    ``REPRO_VERIFY=1`` is also a full paranoia sweep of the tier.
    """
    entries: Dict[str, Dict[str, object]] = {}
    for request in ledger_requests(matrix):
        if request.kind == "sim":
            runner.simulate(
                request.spec, request.size, request.work_scale, request.seed
            )
        else:
            runner.miss_rate_curve(
                request.spec, request.work_scale, request.method, request.seed
            )
        payload = runner.store.get(request.key)
        if payload is None:
            raise ReproError(
                f"golden ledger: run {request.key} left no payload in the "
                "store (memory-only store evicted, or key drift)"
            )
        entries[request.key] = _entry_for(request, payload_digest(payload))
    if blessed_at is None:
        blessed_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    return {
        "version": LEDGER_VERSION,
        "tier": matrix.tier,
        "seed": matrix.seed,
        "blessed_at": blessed_at,
        "reason": reason,
        "entries": entries,
    }


def pin_store(store, keys, reason: str, tier: str = "adhoc") -> dict:
    """Build an ad-hoc ledger from payloads already sitting in a store.

    The chaos harnesses pin their clean reference campaign this way and
    then :func:`audit_store` the post-fault stores against it: any
    payload a fault schedule corrupted digests differently.
    """
    entries: Dict[str, Dict[str, object]] = {}
    for key in keys:
        payload = store.get(key)
        if payload is None:
            raise ReproError(
                f"golden ledger: reference store has no payload for {key}"
            )
        entries[key] = {"digest": payload_digest(payload)}
    return {
        "version": LEDGER_VERSION,
        "tier": tier,
        "seed": None,
        "blessed_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "reason": reason,
        "entries": entries,
    }


def save_ledger(document: dict, path: str = DEFAULT_LEDGER_PATH) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    atomic_write_text(
        path, json.dumps(document, indent=2, sort_keys=True) + "\n"
    )


def load_ledger(path: str = DEFAULT_LEDGER_PATH) -> dict:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise ReproError(
            f"golden ledger not found at {path}; bless one first "
            "(scripts/verify_golden.py --bless --reason '...')"
        )
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"golden ledger at {path} is unreadable: {error}")
    version = document.get("version")
    if version != LEDGER_VERSION:
        raise ReproError(
            f"golden ledger at {path} has version {version!r}, expected "
            f"{LEDGER_VERSION}"
        )
    if not isinstance(document.get("entries"), dict):
        raise ReproError(f"golden ledger at {path} has no entries mapping")
    return document


@dataclass(frozen=True)
class AuditReport:
    """Outcome of auditing a result store against a ledger."""

    matched: Tuple[str, ...]
    #: ``(key, expected_digest, actual_digest)`` per drifted entry.
    drifted: Tuple[Tuple[str, str, str], ...]
    #: Ledger keys the store has no payload for.
    absent: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.drifted and not self.absent

    def summary(self) -> str:
        text = (
            f"golden audit: {len(self.matched)} matched, "
            f"{len(self.drifted)} drifted, {len(self.absent)} absent"
        )
        return text


def audit_store(
    ledger: dict, store, require_all: bool = True
) -> AuditReport:
    """Compare a result store's payload digests against a ledger.

    With ``require_all=False``, ledger entries the store never computed
    are skipped instead of reported absent — the chaos harnesses audit
    partial campaigns where some runs were legitimately interrupted.
    """
    matched: List[str] = []
    drifted: List[Tuple[str, str, str]] = []
    absent: List[str] = []
    for key in sorted(ledger["entries"]):
        entry = ledger["entries"][key]
        payload = store.get(key)
        if payload is None:
            if require_all:
                absent.append(key)
            continue
        actual = payload_digest(payload)
        expected = entry["digest"]
        if actual == expected:
            matched.append(key)
        else:
            drifted.append((key, expected, actual))
    return AuditReport(tuple(matched), tuple(drifted), tuple(absent))

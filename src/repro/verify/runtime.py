"""Activation gate for paranoia mode: the ``REPRO_VERIFY`` switch.

Kept import-light on purpose — :mod:`repro.gpu.gpu` imports this module
at package scope so simulators can self-arm, and nothing here may import
back into the model layers.  The hook installation itself lives in
:mod:`repro.verify.hooks` and is reached only through a deferred import
once the environment actually asks for verification.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["VERIFY_ENV", "arm_from_flag", "ensure_paranoia", "verify_enabled"]

VERIFY_ENV = "REPRO_VERIFY"

_FALSY = {"", "0", "false", "off", "no"}


def verify_enabled(value: Optional[str] = None) -> bool:
    """Is paranoia mode requested? (``REPRO_VERIFY``, tolerantly parsed)."""
    if value is None:
        value = os.environ.get(VERIFY_ENV, "")
    return value.strip().lower() not in _FALSY


def ensure_paranoia() -> None:
    """Install the verify hooks when ``REPRO_VERIFY`` asks (idempotent).

    Called at simulator run start and at the execution layer's worker /
    serial entry points, mirroring how ``repro.obs`` workers self-arm.
    One env lookup when the variable is unset — the entire disabled cost.
    """
    if verify_enabled():
        from repro.verify.hooks import install

        install()


def arm_from_flag(enabled: bool) -> None:
    """CLI ``--verify`` handler: arm this process *and* its children.

    Exports ``REPRO_VERIFY=1`` (pool workers inherit the environment and
    self-arm through :func:`ensure_paranoia`) and installs the hooks in
    the current process immediately.  A no-op when ``enabled`` is false —
    an unset flag must not clear an operator's exported variable.
    """
    if enabled:
        os.environ[VERIFY_ENV] = "1"
        ensure_paranoia()

"""The paranoia-mode seam: install/uninstall verification hooks.

Mirrors the ``repro.obs.profile_hooks`` opt-in pattern: the pristine
engine carries no verification code on its hot paths — just a module
global read once per run (``repro.engine.kernel._run_observer`` for
observability, ``repro.gpu.gpu._boundary_observer`` here) — and
:func:`install` monkeypatches the checked variants in.  :func:`uninstall`
restores every original object, so with ``REPRO_VERIFY`` unset the
simulator is byte-for-byte the code that shipped.

What install() patches:

* ``repro.engine.event.PARANOIA`` — firing a cancelled event escalates
  from a counted no-op to a hard :class:`InvariantError`.
* ``SimulationKernel.run`` — replaced by a checked loop with identical
  semantics (same pop/re-insert/horizon/count-before-fire behaviour)
  plus per-event clock-monotonicity checks and periodic + final
  :meth:`EventQueue.consistency_check` scans.
* ``repro.gpu.gpu._boundary_observer`` — full invariant sweep
  (:func:`repro.verify.invariants.check_boundary`) at every kernel
  boundary, including the final one.
* ``GPUSimulator._build_result`` — conservation + range checks on the
  finished result.
* ``ScaleModelPredictor.predict`` — Eq. 2-4 algebra recomputed and
  compared on every prediction.
* ``repro.analysis.runner.compute_mrc`` — MRC monotonicity checked on
  every curve collection (both the serial path and the pool workers
  resolve this module attribute at call time).
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.exceptions import InvariantError

__all__ = [
    "QUEUE_CHECK_INTERVAL",
    "VERIFY_STATS",
    "install",
    "installed",
    "paranoia",
    "reset_stats",
    "uninstall",
]

#: Events between full O(n) event-queue consistency scans in the checked
#: run loop.  Small enough to localize a corruption to a tight event
#: window, large enough that paranoia mode stays usable on the quick tier.
QUEUE_CHECK_INTERVAL = 2048

#: What paranoia mode has checked so far (process-wide, cumulative).
#: Plain counters for tests and the CLIs' ``--verify`` summary lines.
VERIFY_STATS: Dict[str, int] = {}

_installed = False
_originals: Dict[str, object] = {}


def reset_stats() -> None:
    VERIFY_STATS.update(
        runs_checked=0,
        events_checked=0,
        queue_scans=0,
        boundaries_checked=0,
        results_checked=0,
        curves_checked=0,
        predictions_checked=0,
    )


reset_stats()


def installed() -> bool:
    return _installed


def _make_checked_run(kernel_mod):
    """Build the checked replacement for ``SimulationKernel.run``.

    Every semantic of the original loop is preserved exactly — events
    counted *before* their callback fires, inclusive ``until`` with the
    same-entry re-insert (``seq`` kept, entry list reused so handles stay
    cancellable), observer read once at entry — because differential
    replay diffs checked runs against unchecked ones and any drift here
    would read as an engine bug.
    """
    interval = QUEUE_CHECK_INTERVAL
    stats = VERIFY_STATS

    def run(self, until=None, max_events=None):
        stats["runs_checked"] += 1
        self._running = True
        fired = 0
        queue = self._queue
        # Module attribute, not a closed-over value: obs hooks may
        # install or uninstall while verify hooks stay resident.
        observer = kernel_mod._run_observer
        start = _time.perf_counter() if observer is not None else 0.0
        try:
            while self._running:
                if max_events is not None and fired >= max_events:
                    break
                popped = queue.pop_entry()
                if popped is None:
                    break
                time, seq, callback, args = popped[:4]
                if callback is None:
                    raise InvariantError(
                        f"pop_entry returned a cancelled entry "
                        f"(time={time}, seq={seq}); the queue's lazy-"
                        "cancellation compaction is broken"
                    )
                if time < self._now:
                    raise InvariantError(
                        f"clock would run backwards: event (time={time}, "
                        f"seq={seq}) fired at now={self._now}"
                    )
                if until is not None and time > until:
                    queue.push_entry(time, callback, args, seq=seq, entry=popped)
                    self._now = until
                    break
                self._now = time
                self._events_processed += 1
                callback(*args)
                fired += 1
                stats["events_checked"] += 1
                if fired % interval == 0:
                    queue.consistency_check()
                    stats["queue_scans"] += 1
        finally:
            self._running = False
            if observer is not None:
                observer(self, fired, _time.perf_counter() - start)
        queue.consistency_check()
        stats["queue_scans"] += 1

    return run


def _check_boundary(sim, kernels_completed: int) -> None:
    from repro.verify import invariants

    invariants.check_boundary(sim, kernels_completed)
    VERIFY_STATS["boundaries_checked"] += 1


def install() -> None:
    """Install every paranoia hook (idempotent)."""
    global _installed
    if _installed:
        return
    # Deferred imports: this module is reached through
    # ``repro.verify.runtime.ensure_paranoia`` at run time, never at
    # package import, so the analysis->gpu->verify import chain is
    # already settled when these execute.
    import repro.analysis.runner as runner_mod
    import repro.engine.event as event_mod
    import repro.engine.kernel as kernel_mod
    import repro.gpu.gpu as gpu_mod
    from repro.core.model import ScaleModelPredictor
    from repro.engine.kernel import SimulationKernel
    from repro.gpu.gpu import GPUSimulator
    from repro.verify import invariants

    _originals["event.PARANOIA"] = event_mod.PARANOIA
    event_mod.PARANOIA = True

    _originals["SimulationKernel.run"] = SimulationKernel.run
    SimulationKernel.run = _make_checked_run(kernel_mod)

    _originals["gpu._boundary_observer"] = gpu_mod._boundary_observer
    gpu_mod._boundary_observer = _check_boundary

    original_build = GPUSimulator._build_result
    _originals["GPUSimulator._build_result"] = original_build

    def checked_build_result(self, wall_time_s):
        result = original_build(self, wall_time_s)
        invariants.check_conservation(self)
        invariants.check_result(result)
        VERIFY_STATS["results_checked"] += 1
        return result

    GPUSimulator._build_result = checked_build_result

    original_predict = ScaleModelPredictor.predict
    _originals["ScaleModelPredictor.predict"] = original_predict

    def checked_predict(self, target_size):
        result = original_predict(self, target_size)
        invariants.check_prediction(self, result)
        VERIFY_STATS["predictions_checked"] += 1
        return result

    ScaleModelPredictor.predict = checked_predict

    original_compute_mrc = runner_mod.compute_mrc
    _originals["runner.compute_mrc"] = original_compute_mrc

    def checked_compute_mrc(spec, work_scale, method, seed):
        curve = original_compute_mrc(spec, work_scale, method, seed)
        invariants.check_curve(curve)
        VERIFY_STATS["curves_checked"] += 1
        return curve

    runner_mod.compute_mrc = checked_compute_mrc

    _installed = True


def uninstall() -> None:
    """Restore every patched object to its pristine original (idempotent)."""
    global _installed
    if not _installed:
        return
    import repro.analysis.runner as runner_mod
    import repro.engine.event as event_mod
    import repro.engine.kernel as kernel_mod  # noqa: F401 - symmetry
    import repro.gpu.gpu as gpu_mod
    from repro.core.model import ScaleModelPredictor
    from repro.engine.kernel import SimulationKernel
    from repro.gpu.gpu import GPUSimulator

    event_mod.PARANOIA = _originals.pop("event.PARANOIA")
    SimulationKernel.run = _originals.pop("SimulationKernel.run")
    gpu_mod._boundary_observer = _originals.pop("gpu._boundary_observer")
    GPUSimulator._build_result = _originals.pop("GPUSimulator._build_result")
    ScaleModelPredictor.predict = _originals.pop("ScaleModelPredictor.predict")
    runner_mod.compute_mrc = _originals.pop("runner.compute_mrc")
    _installed = False


@contextmanager
def paranoia(enabled: bool = True):
    """Scoped paranoia mode for tests: install, run, restore prior state."""
    was_installed = _installed
    if enabled:
        install()
    else:
        uninstall()
    try:
        yield
    finally:
        if was_installed:
            install()
        else:
            uninstall()

"""Supervised worker pool: process workers with a watchdog per run.

Each :class:`WorkerSlot` owns a single-process
``ProcessPoolExecutor`` — one slot, one OS process — because the unit
of recycling *is* the process: a hung or dead worker is put down with
:func:`repro.analysis.parallel.shutdown_pool` (terminate, never wait)
and the slot respawns a fresh pool, exactly the watchdog contract the
batch runner established.  Runs execute through the same
:func:`repro.analysis.parallel.execute_attempt` entry point, so fault
injection, memory ceilings and observability hooks behave identically
in batch and service mode.

Every dispatch races three futures:

* the worker result,
* the job's **abort** event (the last interested client gave up — the
  worker is killed, not left burning),
* the job's **deadline** (the run timeout; a hang cannot outlive it).

The :class:`Supervisor` also runs the autoscaler: queue depth above
zero grows the fleet toward ``workers_max``; a slot that has polled an
empty queue ``scale_down_idle_polls`` times retires itself down to
``workers_min``.  Scaling decisions are taken by the slots themselves
against a shared target — there is no central scaling actor to hang.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional

from repro.analysis.faults import (
    FAILED as RUN_FAILED,
    INTERRUPTED as RUN_INTERRUPTED,
    OK as RUN_OK,
    OOM as RUN_OOM,
    TIMEOUT as RUN_TIMEOUT,
    RunOutcome,
    retryable,
)
from repro.analysis.parallel import (
    execute_attempt,
    shutdown_pool,
    worker_init,
)
from repro.obs.metrics import get_registry
from repro.service.config import ServiceConfig
from repro.service.jobs import COMPLETED, FAILED, RUNNING, SHED, Job
from repro.service.queue import AdmissionQueue

__all__ = ["Supervisor", "WorkerSlot"]


def _swallow_result(future: asyncio.Future) -> None:
    """Consume an abandoned worker future so its exception (the
    BrokenProcessPool a recycle provokes) never logs as unretrieved."""
    if not future.cancelled():
        future.exception()


def _job_outcome(
    job: Job, status: str, error: Optional[str] = None
) -> RunOutcome:
    request = job.request
    return RunOutcome(
        key=job.key,
        kind=request.kind,
        shard=job.shard,
        status=status,
        attempts=job.attempts,
        error=error,
        size=request.size,
        work_scale=request.work_scale,
        seed=request.seed,
        method=request.method,
    )


class WorkerSlot:
    """One supervised worker process and its dispatch loop."""

    def __init__(self, supervisor: "Supervisor", index: int) -> None:
        self.supervisor = supervisor
        self.index = index
        self.pool: Optional[ProcessPoolExecutor] = None
        self.task: Optional[asyncio.Task] = None
        self.busy = False
        self.recycles = 0
        self._idle_polls = 0

    def start(self) -> None:
        self.task = asyncio.get_running_loop().create_task(
            self._run(), name=f"worker-slot-{self.index}"
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self.pool is None:
            # Spawn, not fork: a forked worker inherits every open fd,
            # including accepted client sockets — it would hold those
            # connections open (no FIN to the client) for as long as the
            # worker lives.  Spawned workers start clean; the ~1s spawn
            # cost is paid only at scale-up and recycle, never per run.
            self.pool = ProcessPoolExecutor(
                max_workers=1,
                initializer=worker_init,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self.pool

    def _recycle(self) -> None:
        """Put the worker process down; the next run gets a fresh one."""
        if self.pool is not None:
            shutdown_pool(self.pool)
            self.pool = None
        self.recycles += 1
        get_registry().inc("service.worker_recycles")

    async def _run(self) -> None:
        supervisor = self.supervisor
        try:
            while not supervisor.stopping:
                job = await supervisor.queue.get(
                    timeout=supervisor.config.scale_interval_s
                )
                if job is None:
                    self._idle_polls += 1
                    if supervisor.should_retire(self):
                        break
                    continue
                self._idle_polls = 0
                self.busy = True
                try:
                    await self._execute(job)
                finally:
                    self.busy = False
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
                self.pool = None
            supervisor.slot_exited(self)

    async def _execute(self, job: Job) -> None:
        """Run one job to a terminal state, retrying within its deadline."""
        loop = asyncio.get_running_loop()
        supervisor = self.supervisor
        job.state = RUNNING
        if job.abort.is_set() or job.waiters == 0:
            # Every waiter left while the job sat queued but before the
            # queue skipped it; don't burn a worker on an answer nobody
            # will read.
            job.finish(SHED, error="no waiters remained at dispatch")
            supervisor.job_finished(job, _job_outcome(job, RUN_INTERRUPTED))
            return
        policy_retries = supervisor.config.max_retries
        while True:
            remaining = job.deadline - loop.time()
            if remaining <= 0:
                job.finish(SHED, error="deadline expired before the run started")
                supervisor.job_finished(
                    job, _job_outcome(job, RUN_TIMEOUT, "deadline expired")
                )
                return
            job.attempts += 1
            pool = self._ensure_pool()
            try:
                worker_future = asyncio.wrap_future(
                    pool.submit(execute_attempt, job.request, job.attempts),
                    loop=loop,
                )
            except (BrokenProcessPool, RuntimeError) as error:
                self._recycle()
                if job.attempts <= policy_retries:
                    continue
                self._fail(job, f"worker pool unavailable: {error}")
                return
            abort_task = loop.create_task(job.abort.wait())
            try:
                done, _ = await asyncio.wait(
                    {worker_future, abort_task},
                    timeout=remaining,
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                abort_task.cancel()
            if worker_future in done:
                try:
                    key, shard, payload, _meta = worker_future.result()
                except BrokenProcessPool:
                    # The worker died (segfault, injected `die`).  The
                    # pool is useless now either way; retry only if the
                    # budget and the deadline both allow.
                    self._recycle()
                    if job.attempts <= policy_retries:
                        continue
                    self._fail(job, "worker process died repeatedly")
                    return
                except Exception as error:  # noqa: BLE001 - worker verdicts
                    if retryable(error) and job.attempts <= policy_retries:
                        continue
                    status = (
                        RUN_OOM if isinstance(error, MemoryError) else RUN_FAILED
                    )
                    self._fail(job, traceback.format_exc(), status=status)
                    return
                else:
                    job.finish(COMPLETED, payload=payload)
                    supervisor.store_result(key, shard, payload)
                    supervisor.job_finished(job, _job_outcome(job, RUN_OK))
                    return
            # Abort or timeout won the race: the worker is still running
            # something nobody wants — kill it, don't abandon it.
            worker_future.add_done_callback(_swallow_result)
            worker_future.cancel()
            self._recycle()
            if job.abort.is_set():
                job.finish(SHED, error="every waiter gave up mid-run")
                supervisor.job_finished(job, _job_outcome(job, RUN_INTERRUPTED))
            else:
                job.finish(
                    SHED,
                    error=f"run exceeded its deadline after {job.attempts} "
                    "attempt(s); worker recycled",
                )
                supervisor.job_finished(
                    job,
                    _job_outcome(job, RUN_TIMEOUT, "run exceeded its deadline"),
                )
            return

    def _fail(self, job: Job, error: str, status: str = RUN_FAILED) -> None:
        job.finish(FAILED, error=error)
        self.supervisor.job_finished(job, _job_outcome(job, status, error))


class Supervisor:
    """Owns the worker slots, the autoscaler policy and job accounting."""

    def __init__(
        self,
        queue: AdmissionQueue,
        config: ServiceConfig,
        on_result: Callable[[str, str, dict], None],
        on_outcome: Callable[[Job, RunOutcome], None],
    ) -> None:
        self.queue = queue
        self.config = config
        self.stopping = False
        self._on_result = on_result
        self._on_outcome = on_outcome
        self._slots: List[WorkerSlot] = []
        self._next_index = 0
        self._retired_recycles = 0
        self._scaler_task: Optional[asyncio.Task] = None
        self._all_exited = asyncio.Event()
        self._all_exited.set()

    # --- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        self._all_exited.clear()
        for _ in range(self.config.workers_min):
            self._add_slot()
        self._scaler_task = asyncio.get_running_loop().create_task(
            self._autoscale(), name="worker-autoscaler"
        )

    async def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Stop dispatching and wait for busy slots to finish.

        Slots notice ``stopping`` at their next queue poll; a busy slot
        finishes its current run first (the run's own deadline bounds
        that wait).  ``drain_timeout`` is a belt over those suspenders.
        """
        self.stopping = True
        if self._scaler_task is not None:
            self._scaler_task.cancel()
            self._scaler_task = None
        if self._slots:
            try:
                await asyncio.wait_for(
                    self._all_exited.wait(), timeout=drain_timeout
                )
            except asyncio.TimeoutError:
                for slot in list(self._slots):
                    if slot.pool is not None:
                        shutdown_pool(slot.pool)
                        slot.pool = None
                    if slot.task is not None:
                        slot.task.cancel()

    # --- scaling -----------------------------------------------------------
    @property
    def worker_count(self) -> int:
        return len(self._slots)

    @property
    def busy_count(self) -> int:
        return sum(1 for slot in self._slots if slot.busy)

    @property
    def recycles(self) -> int:
        return sum(slot.recycles for slot in self._slots) + self._retired_recycles

    def _add_slot(self) -> None:
        slot = WorkerSlot(self, self._next_index)
        self._next_index += 1
        self._slots.append(slot)
        slot.start()
        get_registry().set_gauge("service.workers", float(len(self._slots)))

    def slot_exited(self, slot: WorkerSlot) -> None:
        if slot in self._slots:
            self._slots.remove(slot)
        self._retired_recycles += slot.recycles
        get_registry().set_gauge("service.workers", float(len(self._slots)))
        if not self._slots:
            self._all_exited.set()

    def should_retire(self, slot: WorkerSlot) -> bool:
        """A persistently idle slot above the floor retires itself."""
        return (
            not self.stopping
            and len(self._slots) > self.config.workers_min
            and slot._idle_polls >= self.config.scale_down_idle_polls
        )

    async def _autoscale(self) -> None:
        """Grow toward ``workers_max`` while demand outruns the fleet."""
        interval = self.config.scale_interval_s
        while not self.stopping:
            await asyncio.sleep(interval)
            backlog = self.queue.depth
            if (
                backlog > 0
                and self.worker_count < self.config.workers_max
                and self.busy_count >= self.worker_count
            ):
                self._add_slot()
                get_registry().inc("service.scale_ups")

    # --- job accounting ----------------------------------------------------
    def store_result(self, key: str, shard: str, payload: dict) -> None:
        self._on_result(key, shard, payload)

    def job_finished(self, job: Job, outcome: RunOutcome) -> None:
        self._on_outcome(job, outcome)

"""Admission control: the decisions made before a job earns a queue slot.

Two gates live here:

* :class:`ServiceBreaker` — the live, per-config circuit breaker.  It
  seeds its streak counts from the on-disk failure manifest (the same
  :class:`repro.resilience.CircuitBreaker` accounting the batch CLIs
  use, so service and batch share one quarantine history) and then
  tracks outcomes in memory as they happen, appending each to the
  manifest so the history survives a restart.  An open breaker is a
  fast-fail 503: no queue slot, no worker, and the response says which
  config is quarantined and how deep the streak is.
* :func:`retry_after_hint` — the backoff the 429 path advertises.  It
  scales with queue depth over drain rate so the hint reflects reality
  instead of a constant the client learns to ignore.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.analysis.faults import (
    FAILED as RUN_FAILED,
    OK as RUN_OK,
    OOM as RUN_OOM,
    TIMEOUT as RUN_TIMEOUT,
    FailureManifest,
    RunOutcome,
)
from repro.resilience import CircuitBreaker

__all__ = ["ServiceBreaker", "retry_after_hint"]


def retry_after_hint(
    depth: int, workers: int, mean_run_s: float, floor_s: float = 1.0
) -> float:
    """Seconds a refused client should wait before retrying.

    Depth over drain rate: with ``depth`` jobs ahead and ``workers``
    slots clearing about one job per ``mean_run_s``, the queue frees a
    slot in roughly ``depth * mean_run_s / workers`` seconds.  Clamped
    to ``[floor_s, 60]`` — sub-second hints cause retry storms, and
    anything past a minute is a guess dressed up as precision.
    """
    workers = max(1, workers)
    mean_run_s = mean_run_s if mean_run_s > 0 else floor_s
    estimate = depth * mean_run_s / workers
    return min(60.0, max(floor_s, estimate))


class ServiceBreaker:
    """Per-config circuit breaker with live accounting.

    The batch :class:`~repro.resilience.CircuitBreaker` counts streaks
    at *load* time — right for a CLI that starts, runs, exits.  A
    service trips and recovers while running, so this wrapper keeps the
    streaks in memory (seeded from the manifest once) and mirrors every
    transition back into the manifest.  Streak mutation is guarded by a
    lock: outcomes normally arrive on the event loop, but nothing in
    the contract forbids racing recorders (tests do, harnesses may),
    and a lost increment here would mean a config that fails forever
    without ever tripping — or trips counted twice.
    """

    def __init__(
        self, manifest_root: Optional[str], threshold: Optional[int] = None
    ) -> None:
        self._seed = CircuitBreaker(manifest_root, threshold)
        self.threshold = self._seed.threshold
        self.manifest = FailureManifest(manifest_root)
        self._streaks: Optional[Dict[str, int]] = None
        self._lock = threading.Lock()
        self.trips = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def _counts(self) -> Dict[str, int]:
        if self._streaks is None:
            with self._lock:
                if self._streaks is None:
                    seeded: Dict[str, int] = {}
                    if self._seed.enabled:
                        seeded = {
                            key: streak
                            for key, streak in self._seed._load().items()
                            if streak > 0
                        }
                    self._streaks = seeded
        return self._streaks

    def streak(self, key: str) -> int:
        return self._counts().get(key, 0)

    def open_for(self, key: str) -> bool:
        """True when requests for ``key`` should fast-fail."""
        return self.enabled and self.streak(key) >= self.threshold

    def record_failure(self, outcome: RunOutcome) -> None:
        """Count one terminal failure and persist it to the manifest."""
        counts = self._counts()
        with self._lock:
            before = counts.get(outcome.key, 0)
            counts[outcome.key] = before + 1
            if self.enabled and before + 1 == self.threshold:
                self.trips += 1
        self.manifest.append([outcome])

    def record_success(self, outcome: RunOutcome) -> None:
        """Close a key's streak; appends the ``ok`` record only when a
        streak existed (matching the batch runner, which keeps healthy
        configs out of the manifest entirely)."""
        counts = self._counts()
        with self._lock:
            had_streak = counts.get(outcome.key, 0) > 0
            if had_streak:
                counts[outcome.key] = 0
        if had_streak:
            self.manifest.append([outcome])

    def record(self, outcome: RunOutcome) -> None:
        """Route one outcome: failures count, ``ok`` closes, the rest
        (shed/drained → ``interrupted``) are manifested without touching
        the streak — being drained says nothing about the config."""
        if outcome.status == RUN_OK:
            self.record_success(outcome)
        elif outcome.status in (RUN_FAILED, RUN_TIMEOUT, RUN_OOM):
            self.record_failure(outcome)
        else:
            self.manifest.append([outcome])

    def snapshot(self) -> dict:
        counts = self._counts()
        open_keys = [
            key
            for key, streak in counts.items()
            if self.enabled and streak >= self.threshold
        ]
        return {
            "enabled": self.enabled,
            "threshold": self.threshold,
            "open_configs": len(open_keys),
            "trips": self.trips,
        }

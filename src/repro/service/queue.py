"""Bounded admission queue: backpressure is explicit, memory is not.

A deliberately small wrapper over ``collections.deque`` plus per-getter
wakeup futures instead of ``asyncio.Queue`` or ``asyncio.Condition``:
admission must be able to *refuse* synchronously (a full queue is a 429
the client hears about now, not an await that parks unbounded request
state in memory), the dispatch side needs a timeout-poll so worker
slots can notice scale-down and drain requests between jobs, and
``Condition.wait`` under ``asyncio.wait_for`` has a cancellation
re-acquire hazard (a timed-out waiter can wedge the lock for every
later ``put``) that plain one-shot futures simply do not have.

Shed jobs are skipped at ``get`` time rather than removed at shed time:
an O(n) deque excision per expired waiter would make deadline storms
quadratic, while a skip at pop is O(1) amortized — the slot just pops
again.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Optional

from repro.exceptions import ReproError
from repro.service.jobs import QUEUED, Job

__all__ = ["AdmissionQueue", "QueueFull"]


class QueueFull(ReproError):
    """The bounded queue refused a job; carries the backoff hint."""

    def __init__(self, depth: int, retry_after_s: float) -> None:
        super().__init__(f"admission queue is full ({depth} jobs queued)")
        self.depth = depth
        self.retry_after_s = retry_after_s


class AdmissionQueue:
    """FIFO of admitted jobs with a hard depth bound."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._items: Deque[Job] = deque()
        #: One-shot futures, one per parked getter, resolved FIFO.
        self._waiters: Deque[asyncio.Future] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def put_nowait(self, job: Job, retry_after_s: float = 1.0) -> None:
        """Enqueue or refuse; never blocks, never buffers past the bound."""
        if len(self._items) >= self.maxsize:
            raise QueueFull(len(self._items), retry_after_s)
        self._items.append(job)
        self._wake_one()

    async def put(self, job: Job, retry_after_s: float = 1.0) -> None:
        """Async spelling of :meth:`put_nowait` (same refuse contract)."""
        self.put_nowait(job, retry_after_s)

    def _wake_one(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return

    async def get(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the next *live* queued job, or ``None`` on timeout.

        Jobs that went terminal while queued (shed by their waiters,
        drained) are silently discarded here — their state transition
        already woke their waiters; the slot only wants runnable work.
        """
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            while self._items:
                job = self._items.popleft()
                if job.state == QUEUED and not job.terminal:
                    return job
            remaining = None if deadline is None else deadline - loop.time()
            if remaining is not None and remaining <= 0:
                return None
            waiter: asyncio.Future = loop.create_future()
            self._waiters.append(waiter)
            try:
                await asyncio.wait_for(waiter, timeout=remaining)
            except asyncio.TimeoutError:
                return None
            finally:
                if not waiter.done():
                    waiter.cancel()
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
                # A wakeup consumed by a getter that is about to leave
                # (timeout raced a put) must not be lost: hand it on.
                if waiter.done() and not waiter.cancelled() and self._items:
                    self._wake_one()

    def drain(self) -> list:
        """Remove and return every queued job (graceful shutdown)."""
        drained = [job for job in self._items if not job.terminal]
        self._items.clear()
        return drained

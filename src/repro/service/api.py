"""Wire schema for the prediction service: request parsing, responses.

One POST body, validated field by field into a
:class:`PredictionRequest`, which maps 1:1 onto the batch layer's
:class:`repro.analysis.parallel.RunRequest` — the service never invents
its own execution semantics, it fronts the existing ones.

Validation is strict where the batch CLIs are strict (unknown
benchmark, bad kind) and *rejecting* rather than tolerant: a malformed
request is a client bug the client should hear about as a ``400``, not
a knob to degrade — the tolerant-parse policy applies to operator
environment knobs, not to the wire.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.analysis.parallel import KINDS, RunRequest
from repro.exceptions import ReproError
from repro.workloads import get_benchmark

__all__ = [
    "ApiError",
    "PredictionRequest",
    "parse_prediction_request",
    "MRC_METHODS",
]

#: MRC collection methods the runner accepts.
MRC_METHODS = ("stack", "lru", "statstack")

#: Fields a /predict body may carry; anything else is a client error
#: (catching typos like "benchmrk" beats silently ignoring them).
_ALLOWED_FIELDS = frozenset(
    (
        "kind",
        "benchmark",
        "size",
        "work_scale",
        "seed",
        "method",
        "weak",
        "deadline_s",
        "idempotency_key",
    )
)

_MAX_SIZE = 4096
_MAX_SEED = 2 ** 31 - 1


class ApiError(ReproError):
    """A request the service refuses; carries the HTTP status to answer."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class PredictionRequest:
    """One validated prediction query, ready to become a run."""

    kind: str
    benchmark: str
    size: int = 0
    work_scale: float = 1.0
    seed: int = 0
    method: str = "stack"
    weak: bool = False
    #: Seconds the client is willing to wait (None = service default).
    deadline_s: Optional[float] = None
    #: Client-chosen retry token: same token, same work, one execution.
    idempotency_key: Optional[str] = None

    def to_run_request(self) -> RunRequest:
        spec = get_benchmark(self.benchmark, weak=self.weak)
        return RunRequest(
            kind=self.kind,
            spec=spec,
            size=self.size,
            work_scale=self.work_scale,
            seed=self.seed,
            method=self.method,
        )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ApiError(message)


def parse_prediction_request(body: bytes) -> PredictionRequest:
    """Parse and validate one ``/predict`` body; raises :class:`ApiError`.

    Every failure names the offending field — a 400 the client cannot
    act on is as useless as a stack trace.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ApiError(f"request body is not valid JSON: {error}")
    _require(isinstance(data, dict), "request body must be a JSON object")
    unknown = sorted(set(data) - _ALLOWED_FIELDS)
    _require(
        not unknown,
        f"unknown field(s) {unknown}; allowed: {sorted(_ALLOWED_FIELDS)}",
    )

    kind = data.get("kind", "sim")
    _require(
        isinstance(kind, str) and kind in KINDS,
        f"kind must be one of {list(KINDS)}, got {kind!r}",
    )
    benchmark = data.get("benchmark")
    _require(
        isinstance(benchmark, str) and benchmark,
        "benchmark is required (a Table II/IV abbreviation, e.g. 'va')",
    )

    weak = data.get("weak", False)
    _require(isinstance(weak, bool), f"weak must be a boolean, got {weak!r}")

    size = data.get("size", 0)
    _require(
        isinstance(size, int) and not isinstance(size, bool),
        f"size must be an integer, got {size!r}",
    )
    if kind in ("sim", "mcm"):
        _require(
            1 <= size <= _MAX_SIZE,
            f"size must be in [1, {_MAX_SIZE}] for kind {kind!r}, got {size}",
        )
    else:
        _require(size == 0, "size does not apply to kind 'mrc'; omit it")

    work_scale = data.get("work_scale", 1.0)
    _require(
        isinstance(work_scale, (int, float)) and not isinstance(work_scale, bool),
        f"work_scale must be a number, got {work_scale!r}",
    )
    work_scale = float(work_scale)
    _require(
        0.0 < work_scale <= float(_MAX_SIZE),
        f"work_scale must be in (0, {_MAX_SIZE}], got {work_scale}",
    )

    seed = data.get("seed", 0)
    _require(
        isinstance(seed, int)
        and not isinstance(seed, bool)
        and 0 <= seed <= _MAX_SEED,
        f"seed must be an integer in [0, {_MAX_SEED}], got {seed!r}",
    )

    method = data.get("method", "stack")
    _require(
        isinstance(method, str) and method in MRC_METHODS,
        f"method must be one of {list(MRC_METHODS)}, got {method!r}",
    )

    deadline_s = data.get("deadline_s")
    if deadline_s is not None:
        _require(
            isinstance(deadline_s, (int, float))
            and not isinstance(deadline_s, bool)
            and deadline_s > 0,
            f"deadline_s must be a positive number, got {deadline_s!r}",
        )
        deadline_s = float(deadline_s)

    idempotency_key = data.get("idempotency_key")
    if idempotency_key is not None:
        _require(
            isinstance(idempotency_key, str)
            and 0 < len(idempotency_key) <= 256,
            "idempotency_key must be a non-empty string of <= 256 chars",
        )

    request = PredictionRequest(
        kind=kind,
        benchmark=benchmark,
        size=size,
        work_scale=work_scale,
        seed=seed,
        method=method,
        weak=weak,
        deadline_s=deadline_s,
        idempotency_key=idempotency_key,
    )
    # Resolve the benchmark now so an unknown abbreviation is a 400 at
    # admission, not a failed run that costs a queue slot and a worker.
    try:
        request.to_run_request()
    except ReproError as error:
        raise ApiError(str(error))
    return request

"""Service tuning knobs, resolved once at startup.

Every knob reads through :func:`repro.resilience.tolerant_env`: a
fat-fingered value degrades to the default with a warning naming the
variable — a long-running service must not refuse to boot over a typo
in a tuning knob (the same policy ``REPRO_JOBS`` and the resource
guards follow).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.resilience import env_float, env_int

__all__ = [
    "ServiceConfig",
    "QUEUE_DEPTH_ENV",
    "WORKERS_MIN_ENV",
    "WORKERS_MAX_ENV",
    "DEFAULT_DEADLINE_ENV",
    "MAX_BODY_ENV",
]

QUEUE_DEPTH_ENV = "REPRO_SERVICE_QUEUE_DEPTH"
WORKERS_MIN_ENV = "REPRO_SERVICE_WORKERS_MIN"
WORKERS_MAX_ENV = "REPRO_SERVICE_WORKERS_MAX"
DEFAULT_DEADLINE_ENV = "REPRO_SERVICE_DEFAULT_DEADLINE"
MAX_BODY_ENV = "REPRO_SERVICE_MAX_BODY"

DEFAULT_QUEUE_DEPTH = 64
DEFAULT_WORKERS_MIN = 1
DEFAULT_WORKERS_MAX = 4
#: Every run gets a timeout — the watchdog must always cover a hang, so
#: "no deadline" is not an admissible state, only a generous default.
DEFAULT_DEADLINE_S = 30.0
DEFAULT_MAX_BODY = 64 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Resolved service configuration (immutable once the server starts)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Result-store root (None = memory-only: no memoization across restarts).
    store_root: Optional[str] = None
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    workers_min: int = DEFAULT_WORKERS_MIN
    workers_max: int = DEFAULT_WORKERS_MAX
    #: Default per-request deadline (seconds) when the client sends none.
    default_deadline_s: float = DEFAULT_DEADLINE_S
    #: Hard ceiling on accepted deadlines; longer requests are clamped.
    max_deadline_s: float = 300.0
    max_body_bytes: int = DEFAULT_MAX_BODY
    #: Re-executions after a retryable worker failure (within deadline).
    max_retries: int = 1
    #: Breaker threshold (None = REPRO_BREAKER_THRESHOLD or 3; 0 disables).
    breaker_threshold: Optional[int] = None
    #: Autoscaler poll interval; also the dispatch loops' idle poll.
    scale_interval_s: float = field(default=0.2, repr=False)
    #: Idle polls before a surplus worker slot is retired.
    scale_down_idle_polls: int = field(default=25, repr=False)

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.workers_min < 1:
            raise ValueError(f"workers_min must be >= 1, got {self.workers_min}")
        if self.workers_max < self.workers_min:
            raise ValueError(
                f"workers_max ({self.workers_max}) must be >= "
                f"workers_min ({self.workers_min})"
            )
        if self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "ServiceConfig":
        """Build a config from ``REPRO_SERVICE_*`` knobs, tolerantly.

        Explicit keyword overrides (CLI flags) win over the environment.
        Inconsistent *combinations* still raise — tolerance covers
        unparseable values, not contradictory explicit requests.
        """
        workers_min = max(1, env_int(WORKERS_MIN_ENV, DEFAULT_WORKERS_MIN))
        config = cls(
            queue_depth=max(1, env_int(QUEUE_DEPTH_ENV, DEFAULT_QUEUE_DEPTH)),
            workers_min=workers_min,
            workers_max=max(
                workers_min, env_int(WORKERS_MAX_ENV, DEFAULT_WORKERS_MAX)
            ),
            default_deadline_s=env_float(
                DEFAULT_DEADLINE_ENV, DEFAULT_DEADLINE_S
            ) or DEFAULT_DEADLINE_S,
            max_body_bytes=max(1024, env_int(MAX_BODY_ENV, DEFAULT_MAX_BODY)),
        )
        if overrides:
            config = replace(config, **overrides)
        return config

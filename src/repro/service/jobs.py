"""Job lifecycle: the unit of work between admission and response.

A :class:`Job` is one *computation* (keyed by the run's cache key), not
one HTTP request: concurrent requests for the same config attach to the
same job (single-flight coalescing), and a retry carrying a previously
seen ``idempotency_key`` re-attaches instead of re-enqueueing.  The
:class:`JobTable` owns both mappings.

State machine (terminal states are exactly what the chaos harness
asserts every accepted request reaches)::

    QUEUED --> RUNNING --> COMPLETED   result memoized, 200
                      \\--> FAILED      attempts exhausted, 500
           \\--> SHED                   every waiter's deadline passed
    RUNNING --> SHED                   last waiter gave up mid-run;
                                       the worker is aborted, not left
                                       burning
    QUEUED --> DRAINED                 SIGTERM before a worker was free;
                                       manifested, 503

Waiter accounting drives the deadline contract: each attached request
holds one reference; :meth:`Job.detach` drops it, and when the last
waiter of a non-terminal job detaches the job is either shed in place
(still queued) or its :attr:`Job.abort` event is set so the supervisor
kills the worker (running).
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

from repro.analysis.parallel import RunRequest

__all__ = [
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "SHED",
    "DRAINED",
    "TERMINAL_STATES",
    "Job",
    "JobTable",
]

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
#: Deadline-driven: either no worker freed up in time or the last
#: interested client gave up mid-run.  The config is not implicated.
SHED = "shed"
#: A graceful drain retired the job before it ran; it is recorded in the
#: failure manifest (status ``interrupted``) so a rerun can pick it up.
DRAINED = "drained"

TERMINAL_STATES = frozenset((COMPLETED, FAILED, SHED, DRAINED))


class Job:
    """One admitted computation and everything waiting on it."""

    __slots__ = (
        "request",
        "key",
        "shard",
        "deadline",
        "state",
        "waiters",
        "attempts",
        "error",
        "payload",
        "cached",
        "done",
        "abort",
        "enqueued_at",
    )

    def __init__(
        self, request: RunRequest, deadline: float, enqueued_at: float
    ) -> None:
        self.request = request
        self.key = request.key
        self.shard = request.spec.abbr
        #: Absolute ``loop.time()`` deadline; the *latest* deadline of
        #: every attached waiter (a coalesced join may extend it).
        self.deadline = deadline
        self.state = QUEUED
        self.waiters = 1
        self.attempts = 0
        self.error: Optional[str] = None
        self.payload: Optional[dict] = None
        #: True when the response was served from the store, not a run.
        self.cached = False
        self.done = asyncio.Event()
        #: Set when nobody is waiting any more: the supervisor races the
        #: worker future against this and kills the worker if it wins.
        self.abort = asyncio.Event()
        self.enqueued_at = enqueued_at

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def attach(self, deadline: float) -> None:
        """One more request joins this job (coalescing / idempotent retry)."""
        self.waiters += 1
        if deadline > self.deadline:
            self.deadline = deadline

    def detach(self) -> None:
        """A waiter gives up (its deadline passed or its handler died).

        The last detach of a live job triggers the shed path: a queued
        job becomes terminal on the spot, a running one gets its abort
        event set and the supervisor finishes the transition after it
        has put the worker down.
        """
        self.waiters = max(0, self.waiters - 1)
        if self.waiters > 0 or self.terminal:
            return
        if self.state == QUEUED:
            self.finish(SHED, error="every waiter's deadline expired in queue")
        elif self.state == RUNNING:
            self.abort.set()

    def finish(
        self,
        state: str,
        payload: Optional[dict] = None,
        error: Optional[str] = None,
        cached: bool = False,
    ) -> None:
        """Transition to a terminal state exactly once and wake waiters."""
        if self.terminal:
            return
        self.state = state
        self.payload = payload
        self.error = error
        self.cached = cached
        self.done.set()


class JobTable:
    """Live jobs by cache key, plus the idempotency-key alias map.

    Terminal jobs leave the key table immediately (their waiters hold
    direct references), so a later request for the same config starts a
    fresh job — the memoized result will answer it from the store
    without one anyway.  Idempotency aliases persist for the process
    lifetime, bounded, so a client retry *after* completion still maps
    to the same cache key rather than duplicating work.
    """

    #: Retained idempotency aliases; beyond this the oldest are evicted
    #: (a retry older than 64k intervening requests re-executes, which
    #: is correct-but-slower, never wrong — results are memoized).
    MAX_ALIASES = 65536

    def __init__(self) -> None:
        self._by_key: Dict[str, Job] = {}
        self._alias: Dict[str, str] = {}  # idempotency_key -> cache key

    def active(self, key: str) -> Optional[Job]:
        job = self._by_key.get(key)
        if job is not None and job.terminal:
            # Lazily reaped: nothing re-registers terminal jobs.
            del self._by_key[key]
            return None
        return job

    def resolve_alias(self, idempotency_key: str) -> Optional[str]:
        return self._alias.get(idempotency_key)

    def register(self, job: Job, idempotency_key: Optional[str] = None) -> None:
        self._by_key[job.key] = job
        if idempotency_key is not None:
            self.remember_alias(idempotency_key, job.key)

    def remember_alias(self, idempotency_key: str, key: str) -> None:
        if (
            idempotency_key not in self._alias
            and len(self._alias) >= self.MAX_ALIASES
        ):
            self._alias.pop(next(iter(self._alias)))
        self._alias[idempotency_key] = key

    def reap(self, job: Job) -> None:
        """Drop a job that reached a terminal state (idempotent)."""
        if self._by_key.get(job.key) is job:
            del self._by_key[job.key]

    def live_jobs(self):
        return [job for job in self._by_key.values() if not job.terminal]

    def __len__(self) -> int:
        return len(self._by_key)

"""Prediction-as-a-service: a hardened async front-end for the simulator.

The batch CLIs answer "run this campaign"; this package answers "keep
answering prediction queries until told to stop" — the operating mode a
design-space-exploration tool actually lives in.  The HTTP surface is
deliberately tiny (stdlib asyncio, JSON bodies, four routes); the bulk
of the package is the robustness machinery around it, built from the
same primitives the batch path already trusts:

* **Admission control** (:mod:`repro.service.admission`): a bounded
  queue with explicit backpressure — a full queue answers ``429`` with
  ``Retry-After``, never unbounded memory; per-config circuit breakers
  (the manifest-backed :class:`repro.resilience.CircuitBreaker`) answer
  ``503`` without burning a worker on a known-broken config.
* **Deadlines** (:mod:`repro.service.jobs`): every request carries one
  (client-supplied or the service default) and it propagates all the
  way into the worker as a run timeout — a client that gave up is never
  silently kept burning a worker.
* **A supervised worker pool** (:mod:`repro.service.supervisor`):
  process workers autoscale between ``workers_min``/``workers_max``
  with queue depth; hung or dead workers are recycled with the same
  watchdog machinery the parallel runner uses.
* **Graceful drain** (:mod:`repro.service.server`): SIGTERM stops
  admission, finishes in-flight work, flushes the result store,
  manifests whatever was still queued, and exits with the resumable
  code 75 (:data:`repro.resilience.EXIT_INTERRUPTED`).
* **Idempotency and coalescing**: concurrent requests for the same
  config share one computation; a client retry with the same
  ``idempotency_key`` never duplicates work.

Request lifecycle (see ``docs/ARCHITECTURE.md`` § "Service")::

    POST /predict --> admit --> queue --> execute --> memoize --> 200
                       |          |          |
                       |          |          +-- worker died/failed  500
                       |          |          +-- deadline exceeded   504 shed
                       |          +-- deadline before a worker free  504 shed
                       |          +-- SIGTERM drain                  503 drained
                       +-- invalid body                              400
                       +-- body too large                            413
                       +-- queue full                                429 + Retry-After
                       +-- circuit breaker open                      503
                       +-- draining                                  503
"""

from repro.service.api import (
    ApiError,
    PredictionRequest,
    parse_prediction_request,
)
from repro.service.config import ServiceConfig
from repro.service.jobs import (
    COMPLETED,
    DRAINED,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    Job,
    JobTable,
)
from repro.service.queue import AdmissionQueue, QueueFull
from repro.service.server import PredictionService

__all__ = [
    "ApiError",
    "PredictionRequest",
    "parse_prediction_request",
    "ServiceConfig",
    "Job",
    "JobTable",
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "SHED",
    "DRAINED",
    "AdmissionQueue",
    "QueueFull",
    "PredictionService",
]

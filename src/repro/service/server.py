"""The asyncio HTTP front-end: routes, drain, and the request handler.

Stdlib only: ``asyncio.start_server`` raw streams with a minimal
HTTP/1.1 parser (close-per-request).  A prediction service whose
dependency for *answering a socket* is larger than its simulator has
its robustness budget upside down — and this repository's rule is that
missing third-party packages are stubbed or avoided, not assumed.

Routes::

    POST /predict   run (or memoized-answer) one prediction
    GET  /healthz   process liveness (always 200 while the loop runs)
    GET  /readyz    admission readiness (503 while draining)
    GET  /statsz    metrics snapshot: queue, workers, latency, breaker,
                    store telemetry

Graceful drain (SIGTERM/SIGINT via
:class:`repro.resilience.ShutdownCoordinator`): stop accepting, refuse
new requests on live connections, let running jobs finish under their
own deadlines, retire queued jobs as ``drained`` (503 to their waiters,
``interrupted`` records in the failure manifest so a batch rerun picks
them up), flush the result store, exit
:data:`repro.resilience.EXIT_INTERRUPTED` (75).  A second signal
force-quits — that contract lives in the coordinator, unchanged.
"""

from __future__ import annotations

import asyncio
import json
import os
import warnings
from typing import Optional, Tuple

from repro.analysis.faults import INTERRUPTED as RUN_INTERRUPTED
from repro.analysis.faults import RunOutcome
from repro.analysis.simcache import ResultStore
from repro.exceptions import ReproError
from repro.obs.metrics import get_registry
from repro.obs.resources import current_rss_bytes, peak_rss_bytes
from repro.resilience import (
    EXIT_INTERRUPTED,
    EXIT_OK,
    get_coordinator,
    preflight_disk,
)
from repro.service.admission import ServiceBreaker, retry_after_hint
from repro.service.api import ApiError, parse_prediction_request
from repro.service.config import ServiceConfig
from repro.service.jobs import (
    COMPLETED,
    DRAINED,
    FAILED,
    SHED,
    Job,
    JobTable,
)
from repro.service.queue import AdmissionQueue, QueueFull
from repro.service.supervisor import Supervisor

__all__ = ["PredictionService"]

_MAX_HEADER_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: HTTP status each terminal job state answers with.
_STATE_STATUS = {COMPLETED: 200, FAILED: 500, SHED: 504, DRAINED: 503}


class _HttpError(ReproError):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _response_bytes(
    status: int, body: dict, extra_headers: Tuple[Tuple[str, str], ...] = ()
) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload


class PredictionService:
    """The composed service: admission, queue, supervisor, HTTP surface."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store = ResultStore(config.store_root)
        manifest_root = None
        if config.store_root:
            manifest_root = os.path.join(
                os.path.dirname(config.store_root) or ".", "failures"
            )
        self.breaker = ServiceBreaker(manifest_root, config.breaker_threshold)
        self.queue = AdmissionQueue(config.queue_depth)
        self.jobs = JobTable()
        self.supervisor = Supervisor(
            self.queue,
            config,
            on_result=self._memoize,
            on_outcome=self._account,
        )
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None  # created in serve()
        self._exit_code = EXIT_OK
        self._mean_run_s = 1.0
        self.port: Optional[int] = None

    # --- bookkeeping callbacks (from the supervisor) -----------------------
    def _memoize(self, key: str, shard: str, payload: dict) -> None:
        self.store.put(key, payload, shard=shard)

    def _account(self, job: Job, outcome) -> None:
        registry = get_registry()
        registry.inc(f"service.jobs.{job.state}")
        loop = asyncio.get_running_loop()
        elapsed = max(0.0, loop.time() - job.enqueued_at)
        if job.state == COMPLETED:
            # EWMA of run time feeds the Retry-After hint.
            self._mean_run_s = 0.8 * self._mean_run_s + 0.2 * max(
                0.01, elapsed
            )
        self.breaker.record(outcome)
        self.jobs.reap(job)

    # --- admission ---------------------------------------------------------
    async def _admit(self, body: bytes) -> Tuple[Job, bool]:
        """Validate, dedupe and enqueue one request.

        Returns ``(job, attached)`` — ``attached`` meaning the request
        joined an existing in-flight job instead of enqueueing a new
        one.  Raises :class:`ApiError` (maps to 4xx/5xx) on refusal.
        """
        request = parse_prediction_request(body)
        registry = get_registry()
        if self.draining:
            registry.inc("service.rejects.draining")
            raise ApiError("service is draining; retry elsewhere", status=503)

        run_request = request.to_run_request()
        key = run_request.key
        loop = asyncio.get_running_loop()
        deadline_s = min(
            request.deadline_s or self.config.default_deadline_s,
            self.config.max_deadline_s,
        )
        deadline = loop.time() + deadline_s

        # Idempotent retry: same token, same work, one execution.
        if request.idempotency_key is not None:
            aliased = self.jobs.resolve_alias(request.idempotency_key)
            if aliased is not None and aliased != key:
                raise ApiError(
                    "idempotency_key was previously used for a different "
                    "request; keys must be unique per configuration",
                    status=400,
                )

        existing = self.jobs.active(key)
        if existing is not None:
            existing.attach(deadline)
            if request.idempotency_key is not None:
                self.jobs.remember_alias(request.idempotency_key, key)
            registry.inc("service.coalesced")
            return existing, True

        if self.breaker.open_for(key):
            registry.inc("service.rejects.breaker")
            raise ApiError(
                f"circuit breaker open for this configuration "
                f"({self.breaker.streak(key)} consecutive terminal "
                "failures on record); fix the config or clear "
                "results/failures/ to re-arm",
                status=503,
            )

        job = Job(run_request, deadline, enqueued_at=loop.time())
        try:
            await self.queue.put(
                job,
                retry_after_s=retry_after_hint(
                    self.queue.depth,
                    self.supervisor.worker_count,
                    self._mean_run_s,
                ),
            )
        except QueueFull:
            registry.inc("service.rejects.queue_full")
            raise
        self.jobs.register(job, request.idempotency_key)
        registry.inc("service.admitted")
        registry.set_gauge("service.queue_depth", float(self.queue.depth))
        return job, False

    async def _predict(self, body: bytes) -> Tuple[int, dict, Tuple]:
        loop = asyncio.get_running_loop()
        started = loop.time()
        registry = get_registry()
        registry.inc("service.requests")

        try:
            job, _attached = await self._admit(body)
        except ApiError as error:
            if error.status == 400:
                registry.inc("service.rejects.invalid")
            return error.status, {"status": "rejected", "error": str(error)}, ()
        except QueueFull as error:
            return (
                429,
                {
                    "status": "rejected",
                    "error": str(error),
                    "retry_after_s": error.retry_after_s,
                },
                (("Retry-After", str(max(1, int(error.retry_after_s)))),),
            )

        # Memoized answer: no queue wait, no worker.  The job was still
        # admitted first so idempotency aliases and coalescing stay
        # coherent; a cached job is finished on the spot.
        cached = self.store.get(job.key)
        if cached is not None and not job.terminal:
            job.finish(COMPLETED, payload=cached, cached=True)
            self.jobs.reap(job)
            registry.inc("service.cache_hits")

        try:
            remaining = max(0.0, job.deadline - loop.time())
            await asyncio.wait_for(job.done.wait(), timeout=remaining + 0.05)
        except asyncio.TimeoutError:
            job.detach()
            registry.inc("service.shed")
            registry.observe(
                "service.latency_ms", (loop.time() - started) * 1000.0
            )
            return (
                504,
                {
                    "status": "shed",
                    "key": job.key,
                    "error": "deadline expired before a result was ready",
                },
                (),
            )

        latency_ms = (loop.time() - started) * 1000.0
        registry.observe("service.latency_ms", latency_ms)
        status = _STATE_STATUS.get(job.state, 500)
        body_out = {
            "status": job.state,
            "key": job.key,
            "cached": job.cached,
            "latency_ms": round(latency_ms, 3),
        }
        if job.state == COMPLETED:
            body_out["result"] = job.payload
        elif job.state == SHED:
            registry.inc("service.shed")
            body_out["error"] = job.error
        else:
            body_out["error"] = job.error
        return status, body_out, ()

    # --- plain GET routes --------------------------------------------------
    def _statsz(self) -> dict:
        registry = get_registry()
        registry.set_gauge("service.queue_depth", float(self.queue.depth))
        registry.set_gauge(
            "service.rss_bytes", float(current_rss_bytes() or peak_rss_bytes())
        )
        snapshot = registry.snapshot()
        return {
            "queue": {
                "depth": self.queue.depth,
                "capacity": self.config.queue_depth,
            },
            "workers": {
                "count": self.supervisor.worker_count,
                "busy": self.supervisor.busy_count,
                "min": self.config.workers_min,
                "max": self.config.workers_max,
                "recycles": self.supervisor.recycles,
            },
            "breaker": self.breaker.snapshot(),
            "store": self.store.stats(),
            "draining": self.draining,
            "metrics": snapshot,
        }

    # --- HTTP plumbing -----------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
        except asyncio.TimeoutError:
            raise _HttpError(400, "timed out reading the request line")
        if not request_line:
            raise ConnectionError("client closed before sending a request")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise _HttpError(400, "malformed request line")
        method, path = parts[0].upper(), parts[1]

        content_length = 0
        header_bytes = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise _HttpError(431, "request headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    raise _HttpError(400, "bad Content-Length header")

        if content_length > self.config.max_body_bytes:
            raise _HttpError(
                413,
                f"body of {content_length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
            )
        body = b""
        if content_length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(content_length), timeout=30.0
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                raise _HttpError(400, "body shorter than Content-Length")
        return method, path, body

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                writer.write(
                    _response_bytes(
                        error.status, {"status": "rejected", "error": str(error)}
                    )
                )
                return
            except (ConnectionError, OSError):
                return

            if method == "POST" and path == "/predict":
                status, payload, headers = await self._predict(body)
            elif method == "GET" and path == "/healthz":
                status, payload, headers = 200, {"status": "alive"}, ()
            elif method == "GET" and path == "/readyz":
                if self.draining:
                    status, payload = 503, {"status": "draining"}
                else:
                    status, payload = 200, {"status": "ready"}
                headers = ()
            elif method == "GET" and path == "/statsz":
                status, payload, headers = 200, self._statsz(), ()
            elif path in ("/predict", "/healthz", "/readyz", "/statsz"):
                status, payload, headers = (
                    405,
                    {"status": "rejected", "error": f"{method} not allowed"},
                    (),
                )
            else:
                status, payload, headers = (
                    404,
                    {"status": "rejected", "error": f"no route {path}"},
                    (),
                )
            try:
                writer.write(_response_bytes(status, payload, tuple(headers)))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    # --- lifecycle ---------------------------------------------------------
    async def serve(self) -> int:
        """Run until a drain is requested; returns the process exit code."""
        coordinator = get_coordinator()
        self._stop = asyncio.Event()
        if self.config.store_root:
            preflight_disk(self.config.store_root)
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        get_registry().set_gauge("service.queue_depth", 0.0)

        watcher = asyncio.get_running_loop().create_task(
            self._watch_shutdown(coordinator)
        )
        try:
            await self._stop.wait()
        finally:
            watcher.cancel()
        return self._exit_code

    def request_stop(self, exit_code: int = EXIT_OK) -> None:
        """Programmatic stop (tests); same drain path as a signal."""
        if self._stop is not None and not self._stop.is_set():
            asyncio.get_running_loop().create_task(
                self._drain_and_stop(exit_code)
            )

    async def _watch_shutdown(self, coordinator) -> None:
        while not coordinator.requested:
            await asyncio.sleep(0.05)
        await self._drain_and_stop(EXIT_INTERRUPTED)

    async def _drain_and_stop(self, exit_code: int) -> None:
        """The drain sequence; see the module docstring for the contract."""
        if self.draining:
            return
        self.draining = True
        get_registry().inc("service.drains")
        if self._server is not None:
            self._server.close()

        # Queued-but-never-started jobs: terminal state `drained`, 503 to
        # their waiters, an `interrupted` manifest record for reruns.
        for job in self.queue.drain():
            job.finish(
                DRAINED,
                error="service drained before the run started; "
                "the failure manifest records it for a batch rerun",
            )
            self._account_drained(job)

        # Running jobs finish under their own deadlines; belt of 2x the
        # default deadline in case a deadline computation went wrong.
        await self.supervisor.stop(
            drain_timeout=self.config.default_deadline_s * 2
        )

        # Anything still live in the table (e.g. popped by a slot that
        # was cancelled by the drain timeout) is retired the same way.
        for job in self.jobs.live_jobs():
            job.finish(DRAINED, error="service drained mid-flight")
            self._account_drained(job)

        self.store.flush()
        if self.store.pending:
            warnings.warn(
                f"service drain: {self.store.pending} result record(s) "
                "could not be flushed (disk pressure?); they are lost to "
                "the store but were already served to clients"
            )
        if self._server is not None:
            await self._server.wait_closed()
        self._exit_code = exit_code
        self._stop.set()

    def _account_drained(self, job: Job) -> None:
        get_registry().inc(f"service.jobs.{DRAINED}")
        outcome = RunOutcome(
            key=job.key,
            kind=job.request.kind,
            shard=job.shard,
            status=RUN_INTERRUPTED,
            attempts=job.attempts,
            error="service drained before completion",
            size=job.request.size,
            work_scale=job.request.work_scale,
            seed=job.request.seed,
            method=job.request.method,
        )
        self.breaker.record(outcome)
        self.jobs.reap(job)

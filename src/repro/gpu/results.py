"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.exceptions import SimulationError
from repro.obs.metrics import CounterBag

#: Integer event counts of a result; the fields :meth:`SimulationResult.counters`
#: exposes and :func:`aggregate_counters` sums across runs.
COUNTER_FIELDS = (
    "thread_instructions",
    "warp_instructions",
    "memory_accesses",
    "l1_hits",
    "l1_misses",
    "llc_hits",
    "llc_misses",
    "events",
)


@dataclass(frozen=True)
class SimulationResult:
    """Outputs of one detailed timing simulation.

    The two numbers the scale-model methodology consumes are :attr:`ipc`
    (aggregate thread instructions per cycle) and
    :attr:`memory_stall_fraction` (the paper's ``f_mem``, used by the
    cliff formula).  Everything else is diagnostic.
    """

    workload: str
    system: str
    num_sms: int
    cycles: float
    thread_instructions: int
    warp_instructions: int
    memory_accesses: int
    memory_stall_fraction: float
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    events: int = 0
    wall_time_s: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise SimulationError(
                f"{self.workload}@{self.system}: non-positive cycle count"
            )

    @property
    def ipc(self) -> float:
        """Aggregate thread instructions per cycle (the paper's metric)."""
        return self.thread_instructions / self.cycles

    @property
    def ipc_per_sm(self) -> float:
        return self.ipc / self.num_sms

    @property
    def mpki(self) -> float:
        """LLC misses per thousand thread instructions."""
        if self.thread_instructions == 0:
            return 0.0
        return 1000.0 * self.llc_misses / self.thread_instructions

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        if total == 0:
            return 0.0
        return self.l1_misses / total

    @property
    def llc_miss_rate(self) -> float:
        total = self.llc_hits + self.llc_misses
        if total == 0:
            return 0.0
        return self.llc_misses / total

    def summary(self) -> str:
        return (
            f"{self.workload} on {self.system}: IPC={self.ipc:.1f} "
            f"({self.cycles:.0f} cycles, {self.thread_instructions} thread insns), "
            f"f_mem={self.memory_stall_fraction:.3f}, MPKI={self.mpki:.2f}"
        )

    def counters(self) -> CounterBag:
        """The result's integer event counts as one shared stat bag.

        The single aggregation surface for downstream consumers (the
        metrics registry mirror, artifact export, reports) — replaces
        the ad-hoc per-caller dicts that used to pick fields by hand.
        """
        bag = CounterBag()
        for name in COUNTER_FIELDS:
            bag[name] = getattr(self, name)
        return bag


def aggregate_counters(results: Iterable[SimulationResult]) -> CounterBag:
    """Sum the counter fields of many results into one bag."""
    total = CounterBag()
    for result in results:
        for name, value in result.counters().items():
            total.add(name, value)
    return total

"""GPU timing-simulator substrate (the Accel-Sim stand-in).

The paper collects scale-model performance profiles with Accel-Sim; this
package provides the equivalent substrate in pure Python: an event-driven
GPU timing model with

* streaming multiprocessors (SMs) holding resident CTAs and warps, a
  greedy-then-oldest-flavoured issue model and round-robin CTA scheduling
  (:mod:`repro.gpu.sm`, :mod:`repro.gpu.cta`);
* per-SM L1 caches with MSHR merging, an address-sliced set-associative
  shared LLC, a crossbar NoC and DRAM channels modelled as bandwidth
  resources (:mod:`repro.gpu.cache`, :mod:`repro.gpu.memory`);
* proportional-resource-scaling configuration (Tables I, III and V of the
  paper) in :mod:`repro.gpu.config`;
* a multi-chiplet (MCM) GPU with inter-chiplet links and first-touch page
  placement (:mod:`repro.gpu.chiplet`).

The headline outputs per run are aggregate IPC (thread instructions per
cycle) and the memory-stall fraction ``f_mem`` that the paper's cliff
formula (Eq. 3) consumes.
"""

from repro.gpu.config import (
    PAPER_SCALE_MODEL_SIZES,
    PAPER_SYSTEM_SIZES,
    PAPER_TARGET_SIZES,
    GPUConfig,
    McmConfig,
)
from repro.gpu.gpu import GPUSimulator, simulate
from repro.gpu.chiplet import McmSimulator, simulate_mcm
from repro.gpu.results import SimulationResult

__all__ = [
    "GPUConfig",
    "McmConfig",
    "GPUSimulator",
    "McmSimulator",
    "SimulationResult",
    "simulate",
    "simulate_mcm",
    "PAPER_SYSTEM_SIZES",
    "PAPER_SCALE_MODEL_SIZES",
    "PAPER_TARGET_SIZES",
]

"""CTA dispatch: round-robin initial placement, greedy backfill.

Matches the paper's Table III ("CTA scheduling: round-robin"): CTAs are
handed to SMs in round-robin order up to the residency limit implied by
the CTA's thread count; when a CTA retires, the freed SM immediately
receives the next pending CTA.  Load imbalance and kernel-tail effects —
one of the paper's two sub-linear-scaling mechanisms — emerge naturally.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.gpu.sm import StreamingMultiprocessor


class CTADispatcher:
    """Tracks pending CTAs of the current kernel and places them on SMs."""

    def __init__(
        self,
        sms: List[StreamingMultiprocessor],
        policy: str = "round_robin",
    ) -> None:
        if policy not in ("round_robin", "contiguous"):
            raise ValueError(f"unknown CTA scheduling policy {policy!r}")
        self._sms = sms
        self._policy = policy
        self._pending: Deque[int] = deque()
        self._rr_next = 0

    def load_kernel(self, num_ctas: int, max_resident: int) -> None:
        """Queue a kernel's CTAs and set the per-SM residency limit."""
        self._pending = deque(range(num_ctas))
        for sm in self._sms:
            sm.max_resident = max_resident

    @property
    def pending(self) -> int:
        return len(self._pending)

    def initial_placements(self) -> List[tuple]:
        """Place the initial wave; returns (cta_id, sm_id) pairs.

        ``round_robin`` visits SMs in waves so CTA ``i`` lands on SM
        ``i % num_sms`` first (Table III's policy); ``contiguous`` fills
        each SM to its residency limit before moving on, keeping
        neighbouring CTAs (and their data) together.
        """
        placements = []
        if self._policy == "contiguous":
            for sm in self._sms:
                while self._pending and sm.has_room:
                    cta_id = self._pending.popleft()
                    placements.append((cta_id, sm.sm_id))
                    sm.resident_ctas += 1  # reserve the slot for this wave
        else:
            progress = True
            while self._pending and progress:
                progress = False
                for sm in self._sms:
                    if not self._pending:
                        break
                    if sm.has_room:
                        cta_id = self._pending.popleft()
                        placements.append((cta_id, sm.sm_id))
                        sm.resident_ctas += 1  # reserve the slot
                        progress = True
        # Roll back the reservations; the simulator performs the real
        # cta_started() calls (which also drive occupancy tracking).
        for __, sm_id in placements:
            self._sms[sm_id].resident_ctas -= 1
        return placements

    def next_for(self, sm_id: int) -> Optional[int]:
        """Pop the next pending CTA for a freed SM, if any."""
        if not self._pending:
            return None
        return self._pending.popleft()

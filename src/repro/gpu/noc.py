"""Interconnect topology models (optional NoC fidelity knob).

The paper's systems use a crossbar characterized by its bisection
bandwidth (Tables I/III), which the default memory path models directly.
For design-space ablations this module derives the *effective* bisection
bandwidth and traversal latency of alternative topologies built from the
same link budget:

* ``crossbar`` — full bisection, constant latency (the paper's NoC);
* ``mesh``     — 2D mesh: the row/column cut carries ``sqrt(N)`` links,
  so the effective bisection is derated, and average latency grows with
  the average hop count ``~2/3 * sqrt(N)``;
* ``ring``     — bidirectional ring: the cut is two links; average hop
  count ``N/4``.

``N`` counts NoC endpoints (SMs plus LLC slices).  The derates are the
standard first-order formulas from interconnection-network texts — the
goal is credible relative trends, not router microarchitecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

TOPOLOGIES = ("crossbar", "mesh", "ring")


@dataclass(frozen=True)
class NocModel:
    """Effective bandwidth/latency of one topology instance."""

    topology: str
    endpoints: int
    bisection_derate: float   # multiplier on the crossbar bisection BW
    latency_factor: float     # multiplier on the base per-traversal latency

    def effective_bandwidth(self, crossbar_bps: float) -> float:
        return crossbar_bps * self.bisection_derate

    def traversal_latency(self, base_latency: float) -> float:
        return base_latency * self.latency_factor


def build_noc_model(topology: str, endpoints: int) -> NocModel:
    """Derive the effective NoC parameters for ``endpoints`` nodes."""
    if endpoints < 1:
        raise ConfigurationError(f"endpoints must be >= 1, got {endpoints}")
    if topology == "crossbar":
        return NocModel(topology, endpoints, 1.0, 1.0)
    if topology == "mesh":
        side = max(1.0, math.sqrt(endpoints))
        # Bisection: side links of the 2*side link budget per row pair;
        # relative to a crossbar provisioned at the paper's bisection,
        # the same link budget yields ~2/side of the bandwidth.
        derate = min(1.0, 2.0 / side)
        hops = max(1.0, 2.0 / 3.0 * side)
        return NocModel(topology, endpoints, derate, hops)
    if topology == "ring":
        derate = min(1.0, 4.0 / endpoints)
        hops = max(1.0, endpoints / 4.0)
        return NocModel(topology, endpoints, derate, hops)
    raise ConfigurationError(
        f"unknown topology {topology!r}; choose from {TOPOLOGIES}"
    )

"""GPU system configurations and proportional resource scaling.

This module encodes Table III (the 128-SM baseline), Table I (the scale
models and intermediate targets derived by *proportional resource
scaling*), and Table V (the 16-chiplet MCM target) of the paper.

Proportional scaling is the paper's first design rule: a scale model with
``F`` times fewer SMs gets an LLC ``F`` times smaller, a NoC with ``F``
times less bisection bandwidth and ``F`` times fewer memory controllers,
while every per-SM resource (warp slots, L1, issue width) is unchanged.
:meth:`GPUConfig.scaled` implements exactly that derivation.

Miniaturization
---------------
The paper simulates billions of instructions on a C++ simulator.  A pure
Python host cannot, so the whole *capacity* axis (cache sizes and workload
footprints alike) is shrunk by :data:`DEFAULT_CAPACITY_SCALE`.  Because
footprints and capacities shrink together, cliff positions — footprint
relative to LLC capacity, the thing the predictor keys on — are preserved.
All capacities reported to the user stay in paper units ("34 MB"); the
effective simulated capacity is ``nominal * capacity_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.units import GBPS, GHZ, KB, MB, format_bandwidth, format_bytes

#: Capacity miniaturization factor (see module docstring).
DEFAULT_CAPACITY_SCALE = 0.125

#: System sizes used throughout the paper (SM counts).
PAPER_SYSTEM_SIZES: Tuple[int, ...] = (8, 16, 32, 64, 128)

#: The two scale models of the paper.
PAPER_SCALE_MODEL_SIZES: Tuple[int, ...] = (8, 16)

#: The target systems of the paper.
PAPER_TARGET_SIZES: Tuple[int, ...] = (32, 64, 128)

#: MCM system sizes (chiplet counts): two scale models and the target.
PAPER_MCM_SIZES: Tuple[int, ...] = (4, 8, 16)


@dataclass(frozen=True)
class GPUConfig:
    """A monolithic GPU system configuration.

    All capacities are *nominal* (paper-scale) bytes; the timing and
    functional models apply :attr:`capacity_scale` internally.  Bandwidths
    are bytes/second and are used at face value.
    """

    num_sms: int = 128
    sm_clock_hz: float = 1.0 * GHZ

    # Per-SM resources (identical across scale models and targets).
    warps_per_sm: int = 48
    threads_per_warp: int = 32
    max_threads_per_sm: int = 1536
    issue_width: int = 2  # warp instructions issued per SM per cycle

    # L1 (private, never scaled).
    l1_size: int = 48 * KB
    l1_assoc: int = 6
    l1_mshrs: int = 384
    l1_hit_latency: float = 30.0

    # Shared LLC (scaled proportionally).
    llc_size: int = 34 * MB
    llc_slices: int = 32
    llc_assoc: int = 64
    llc_latency: float = 90.0
    llc_slice_throughput: float = 1.0  # accesses per cycle per slice

    # NoC (crossbar bisection bandwidth, scaled proportionally).
    noc_bisection_bps: float = 2606.0 * GBPS
    noc_request_bytes: int = 32
    noc_latency: float = 20.0
    # Interconnect topology: "crossbar" (the paper's NoC, default) or
    # "mesh"/"ring" for design-space ablations (see repro.gpu.noc).
    noc_topology: str = "crossbar"

    # DRAM (per-MC bandwidth fixed; MC count scaled proportionally).
    num_mcs: int = 16
    mc_bandwidth_bps: float = 145.0 * GBPS
    dram_latency: float = 350.0
    # Achievable fraction of peak DRAM bandwidth under GPU access streams
    # (row conflicts, bank contention, read/write turnaround).  Peak numbers
    # are what describe() reports; the timing model uses the effective rate.
    dram_efficiency: float = 0.55
    # Relative spread of LLC/DRAM access latency (bank conflicts, row hits
    # vs misses): each access sees latency * U(1 - j, 1 + j).  Besides
    # realism this decorrelates warp phases; without it, deterministic
    # latencies lock thousands of warps into synchronized request bursts.
    latency_jitter: float = 0.3
    # Memory backend: "simple" (bandwidth server + jittered latency, the
    # calibrated default) or "banked" (explicit banks with row buffers,
    # see repro.gpu.dram; used for fidelity ablations).
    dram_model: str = "simple"

    # Fixed host-side overhead between back-to-back kernel launches, in
    # cycles (~5 us on real hardware).  Default 0: the paper's simulations
    # measure kernel time only, and the calibrated miniatures follow suit.
    kernel_launch_overhead: float = 0.0

    # CTA placement for the initial wave: "round_robin" (Table III) or
    # "contiguous" (fill one SM to residency before the next) — the latter
    # keeps neighbouring CTAs on one SM/chiplet, a locality ablation.
    cta_scheduler: str = "round_robin"

    line_size: int = 128
    capacity_scale: float = DEFAULT_CAPACITY_SCALE
    name: str = "gpu"

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ConfigurationError(f"num_sms must be >= 1, got {self.num_sms}")
        if self.llc_slices < 1:
            raise ConfigurationError(f"llc_slices must be >= 1, got {self.llc_slices}")
        if self.num_mcs < 1:
            raise ConfigurationError(f"num_mcs must be >= 1, got {self.num_mcs}")
        if self.kernel_launch_overhead < 0:
            raise ConfigurationError(
                f"kernel_launch_overhead must be >= 0, "
                f"got {self.kernel_launch_overhead}"
            )
        if self.cta_scheduler not in ("round_robin", "contiguous"):
            raise ConfigurationError(
                f"unknown cta_scheduler {self.cta_scheduler!r}"
            )
        if self.noc_topology not in ("crossbar", "mesh", "ring"):
            raise ConfigurationError(
                f"unknown noc_topology {self.noc_topology!r}"
            )
        if self.dram_model not in ("simple", "banked"):
            raise ConfigurationError(
                f"dram_model must be 'simple' or 'banked', got {self.dram_model!r}"
            )
        if not (0 <= self.latency_jitter < 1):
            raise ConfigurationError(
                f"latency_jitter must be in [0, 1), got {self.latency_jitter}"
            )
        if not (0 < self.dram_efficiency <= 1):
            raise ConfigurationError(
                f"dram_efficiency must be in (0, 1], got {self.dram_efficiency}"
            )
        if not (0 < self.capacity_scale <= 1):
            raise ConfigurationError(
                f"capacity_scale must be in (0, 1], got {self.capacity_scale}"
            )
        if self.max_threads_per_sm % self.threads_per_warp:
            raise ConfigurationError(
                "max_threads_per_sm must be a multiple of threads_per_warp"
            )

    # --- derived quantities ------------------------------------------------
    @property
    def dram_bandwidth_bps(self) -> float:
        """Aggregate memory bandwidth (bytes/second)."""
        return self.num_mcs * self.mc_bandwidth_bps

    @property
    def effective_llc_size(self) -> int:
        """LLC capacity actually simulated (after miniaturization)."""
        return max(self.line_size, int(self.llc_size * self.capacity_scale))

    @property
    def effective_l1_size(self) -> int:
        return max(self.line_size, int(self.l1_size * self.capacity_scale))

    @property
    def llc_slice_size(self) -> int:
        """Nominal capacity of one LLC slice."""
        return self.llc_size // self.llc_slices

    @property
    def llc_sets_per_slice(self) -> int:
        """Simulated sets per slice (>= 1)."""
        slice_bytes = self.effective_llc_size // self.llc_slices
        return max(1, slice_bytes // (self.llc_assoc * self.line_size))

    @property
    def l1_sets(self) -> int:
        return max(1, self.effective_l1_size // (self.l1_assoc * self.line_size))

    @property
    def max_ctas_per_sm_for(self) -> int:  # pragma: no cover - alias, see method
        raise AttributeError("use max_resident_ctas(threads_per_cta)")

    def max_resident_ctas(self, threads_per_cta: int) -> int:
        """How many CTAs of the given size fit on one SM concurrently."""
        if threads_per_cta < 1:
            raise ConfigurationError(
                f"threads_per_cta must be >= 1, got {threads_per_cta}"
            )
        by_threads = self.max_threads_per_sm // threads_per_cta
        return max(1, by_threads)

    @property
    def noc_bytes_per_cycle(self) -> float:
        """Effective NoC bytes/cycle for the configured topology."""
        from repro.gpu.noc import build_noc_model

        model = build_noc_model(self.noc_topology, self.num_sms + self.llc_slices)
        return model.effective_bandwidth(self.noc_bisection_bps) / self.sm_clock_hz

    @property
    def effective_noc_latency(self) -> float:
        """Per-traversal NoC latency for the configured topology."""
        from repro.gpu.noc import build_noc_model

        model = build_noc_model(self.noc_topology, self.num_sms + self.llc_slices)
        return model.traversal_latency(self.noc_latency)

    @property
    def mc_bytes_per_cycle(self) -> float:
        """Effective per-controller bytes/cycle seen by the timing model."""
        return self.dram_efficiency * self.mc_bandwidth_bps / self.sm_clock_hz

    # --- proportional scaling (Table I) -------------------------------------
    def scaled(self, num_sms: int) -> "GPUConfig":
        """Derive a proportionally scaled system with ``num_sms`` SMs.

        Shared resources (LLC capacity and slice count, NoC bisection
        bandwidth, memory-controller count) scale by ``num_sms /
        self.num_sms``; per-SM resources are untouched.  This is Table I's
        derivation rule applied to any baseline.
        """
        if num_sms < 1:
            raise ConfigurationError(f"num_sms must be >= 1, got {num_sms}")
        factor = num_sms / self.num_sms
        llc_slices = max(1, round(self.llc_slices * factor))
        num_mcs = max(1, round(self.num_mcs * factor))
        return replace(
            self,
            num_sms=num_sms,
            llc_size=int(round(self.llc_size * factor)),
            llc_slices=llc_slices,
            noc_bisection_bps=self.noc_bisection_bps * factor,
            num_mcs=num_mcs,
            name=f"{self.name}-{num_sms}sm",
        )

    def scale_factor_to(self, other: "GPUConfig") -> float:
        """Relative size of ``other`` versus this configuration (T / S)."""
        return other.num_sms / self.num_sms

    # --- presentation ---------------------------------------------------------
    def describe(self) -> Dict[str, str]:
        """Table-I-style row describing this configuration."""
        return {
            "#SMs": str(self.num_sms),
            "LLC": f"{format_bytes(self.llc_size)}, {self.llc_slices} slices",
            "NoC bisection BW": format_bandwidth(self.noc_bisection_bps),
            "Main memory": (
                f"{format_bandwidth(self.dram_bandwidth_bps)}, {self.num_mcs} MCs, "
                f"{format_bandwidth(self.mc_bandwidth_bps)} per MC"
            ),
        }

    @classmethod
    def paper_baseline(cls, capacity_scale: float = DEFAULT_CAPACITY_SCALE) -> "GPUConfig":
        """The 128-SM baseline of Table III (and Table I's first row)."""
        return cls(capacity_scale=capacity_scale, name="paper-128sm")

    @classmethod
    def paper_system(
        cls, num_sms: int, capacity_scale: float = DEFAULT_CAPACITY_SCALE
    ) -> "GPUConfig":
        """A paper system (scale model or target) with ``num_sms`` SMs."""
        if num_sms not in PAPER_SYSTEM_SIZES:
            raise ConfigurationError(
                f"paper systems have {PAPER_SYSTEM_SIZES} SMs, got {num_sms}"
            )
        return cls.paper_baseline(capacity_scale).scaled(num_sms)


@dataclass(frozen=True)
class McmConfig:
    """A multi-chip-module (MCM) GPU: Table V of the paper.

    The scale-model rule for MCM systems fixes the *chiplet* configuration
    and scales the package-level shared resources — the inter-chiplet
    network bisection bandwidth — with the chiplet count, while aggregate
    memory bandwidth and SM count scale linearly because each chiplet
    carries its own LLC and memory controllers.
    """

    num_chiplets: int = 16
    chiplet: GPUConfig = field(
        default_factory=lambda: GPUConfig(
            num_sms=64,
            sm_clock_hz=1.7 * GHZ,
            llc_size=18 * MB,
            llc_slices=64,
            noc_bisection_bps=1700.0 * GBPS,
            num_mcs=8,
            mc_bandwidth_bps=150.0 * GBPS,  # 8 MCs x 150 GB/s = 1.2 TB/s per chiplet
            name="chiplet",
        )
    )
    inter_chiplet_bw_per_chiplet_bps: float = 900.0 * GBPS
    inter_chiplet_latency: float = 80.0
    page_size: int = 4 * KB
    name: str = "mcm"

    def __post_init__(self) -> None:
        if self.num_chiplets < 1:
            raise ConfigurationError(
                f"num_chiplets must be >= 1, got {self.num_chiplets}"
            )
        if self.page_size < self.chiplet.line_size:
            raise ConfigurationError("page_size must be >= cache line size")

    @property
    def total_sms(self) -> int:
        return self.num_chiplets * self.chiplet.num_sms

    @property
    def inter_chiplet_bisection_bps(self) -> float:
        """Package bisection bandwidth of the inter-chiplet fly network."""
        return self.inter_chiplet_bw_per_chiplet_bps * self.num_chiplets / 2

    def scaled(self, num_chiplets: int) -> "McmConfig":
        """Derive a scale model with ``num_chiplets`` chiplets.

        The chiplet itself is fixed; the per-chiplet inter-chiplet
        bandwidth is held constant so the package *bisection* bandwidth
        scales with chiplet count — the MCM analogue of Table I.
        """
        if num_chiplets < 1:
            raise ConfigurationError(
                f"num_chiplets must be >= 1, got {num_chiplets}"
            )
        return replace(self, num_chiplets=num_chiplets, name=f"{self.name}-{num_chiplets}c")

    def describe(self) -> Dict[str, str]:
        """Table-V-style description of this MCM system."""
        return {
            "#chiplets": str(self.num_chiplets),
            "#SMs/chiplet": str(self.chiplet.num_sms),
            "SM clock": f"{self.chiplet.sm_clock_hz / GHZ:g} GHz",
            "LLC per chiplet": format_bytes(self.chiplet.llc_size),
            "Intra-chiplet NoC": format_bandwidth(self.chiplet.noc_bisection_bps),
            "Inter-chiplet NoC": (
                f"{format_bandwidth(self.inter_chiplet_bw_per_chiplet_bps)} per chiplet"
            ),
            "Memory": (
                f"{self.chiplet.num_mcs} MCs, "
                f"{format_bandwidth(self.chiplet.dram_bandwidth_bps)} per chiplet"
            ),
        }

    @classmethod
    def paper_target(cls) -> "McmConfig":
        """The 16-chiplet, 1,024-SM target of Table V."""
        return cls()

"""The shared memory subsystem: L1s, NoC, sliced LLC and DRAM channels.

The subsystem resolves one warp-level memory access analytically: given the
issue time, it walks the resource chain (L1 → NoC → LLC slice → memory
controller → NoC) and returns the completion time.  Because the simulation
kernel delivers accesses in global time order, the FIFO next-free-time
bookkeeping in each resource is an exact queueing model.

Structure per the paper's Table III:

* one L1 per SM (never scaled), with MSHR merging of in-flight lines;
* a crossbar NoC modelled by its bisection bandwidth, with *separate
  request and response channels* (as in real GPU interconnects, and
  necessary here so that a response booked far in the future never blocks
  an earlier request — each channel sees near-time-ordered arrivals);
* the LLC split into address-interleaved slices, each with a tag-pipeline
  throughput server — concurrent accesses to the same slice serialize,
  which is the "camping" congestion mechanism the paper cites for
  sub-linear scaling;
* one bandwidth server per memory controller; lines map to MCs by address
  interleaving.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.engine.resource import BandwidthResource, FifoServer, TokenPool
from repro.exceptions import ConfigurationError
from repro.gpu.cache import SetAssocCache
from repro.gpu.config import GPUConfig
from repro.gpu.dram import BankedDram
from repro.memory_regions import BYPASS_BASE

#: Result tags for where an access was served.
L1_HIT = 0
LLC_HIT = 1
DRAM = 2
MERGED = 3


class L1Cache:
    """Per-SM L1 with an MSHR file and in-flight miss merging."""

    def __init__(self, config: GPUConfig, sm_id: int) -> None:
        self.cache = SetAssocCache(
            num_sets=config.l1_sets,
            assoc=config.l1_assoc,
            name=f"l1-sm{sm_id}",
        )
        self.mshrs = TokenPool(config.l1_mshrs, name=f"mshr-sm{sm_id}")
        self.in_flight: Dict[int, float] = {}
        self.merged = 0

    def prune_in_flight(self, now: float) -> None:
        """Drop completed fills from the merge table (called sparingly)."""
        done = [line for line, t in self.in_flight.items() if t <= now]
        for line in done:
            del self.in_flight[line]

    def state_dict(self) -> dict:
        # JSON keys are strings, so the in-flight merge table travels as
        # (line, completion-time) pairs in insertion order.
        return {
            "cache": self.cache.state_dict(),
            "mshrs": self.mshrs.state_dict(),
            "in_flight": [[line, t] for line, t in self.in_flight.items()],
            "merged": self.merged,
        }

    def load_state(self, state: dict) -> None:
        self.cache.load_state(state["cache"])
        self.mshrs.load_state(state["mshrs"])
        self.in_flight = {
            int(line): float(t) for line, t in state["in_flight"]
        }
        self.merged = int(state["merged"])


class MemorySubsystem:
    """All shared memory resources of one (monolithic) GPU."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.l1s: List[L1Cache] = [L1Cache(config, i) for i in range(config.num_sms)]
        self.noc_request = BandwidthResource(
            config.noc_bytes_per_cycle, name="noc-req"
        )
        self.noc_response = BandwidthResource(
            config.noc_bytes_per_cycle, name="noc-rsp"
        )
        sets = config.llc_sets_per_slice
        self.llc_slices: List[SetAssocCache] = [
            SetAssocCache(sets, config.llc_assoc, name=f"llc-slice{i}")
            for i in range(config.llc_slices)
        ]
        self.llc_ports: List[FifoServer] = [
            FifoServer(name=f"llc-port{i}") for i in range(config.llc_slices)
        ]
        self.mcs: List[BandwidthResource] = [
            BandwidthResource(config.mc_bytes_per_cycle, name=f"mc{i}")
            for i in range(config.num_mcs)
        ]
        self.banked_mcs: List[BankedDram] = (
            [
                BankedDram(
                    config.mc_bytes_per_cycle,
                    line_size=config.line_size,
                    name=f"mc{i}",
                )
                for i in range(config.num_mcs)
            ]
            if config.dram_model == "banked"
            else []
        )
        self._slice_service = 1.0 / config.llc_slice_throughput
        self._line_size = config.line_size
        self._request_bytes = config.noc_request_bytes
        self._noc_latency = config.effective_noc_latency
        # Deterministic LCG driving per-access latency jitter (see
        # GPUConfig.latency_jitter): reproducible, yet decorrelates warps.
        self._rng_state = 0x9E3779B97F4A7C15
        self._jitter = config.latency_jitter
        # Aggregate counters.
        self.l1_hits = 0
        self.l1_misses = 0
        self.llc_hits = 0
        self.llc_misses = 0
        self.merged = 0
        self._prune_countdown = 4096
        # Fault-injection seam (REPRO_FAULT_INJECT drop-miss directive):
        # while positive, L1 miss increments are silently swallowed —
        # the seeded model mutation the verify subsystem must catch.
        # Deliberately absent from state_dict: injected corruption is
        # not model state.
        self._drop_miss_budget = 0

    def _jitter_factor(self) -> float:
        """Next latency multiplier in [1 - j, 1 + j] from the LCG."""
        if self._jitter == 0.0:
            return 1.0
        self._rng_state = (self._rng_state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        u = (self._rng_state >> 11) / float(1 << 53)
        return 1.0 + self._jitter * (2.0 * u - 1.0)

    # --- address mapping -------------------------------------------------
    # Lines are hashed before interleaving (as real GPU memory systems
    # hash channel/slice selection): plain modulo lets strided streams
    # phase-lock onto one controller at a time — every warp walking lines
    # 4g..4g+3 hits MC (k mod 4) in lockstep at the 4-controller size,
    # which serializes the whole machine at that size only.
    @staticmethod
    def hash_line(line: int) -> int:
        h = (line * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return h >> 20

    def slice_for(self, line: int) -> int:
        return self.hash_line(line) % len(self.llc_slices)

    def mc_for(self, line: int) -> int:
        return self.hash_line(line) % len(self.mcs)

    def warm_lines(self, base: int, count: int) -> None:
        """Pre-fill the LLC slices with ``count`` lines starting at ``base``
        (no latency, no statistics) — steady-state warm-up."""
        slices = self.llc_slices
        n = len(slices)
        for line in range(base, base + count):
            if line >= BYPASS_BASE:
                continue
            slices[self.hash_line(line) % n].fill(line)

    # --- the access path ----------------------------------------------------
    def access(self, sm_id: int, line: int, now: float) -> Tuple[float, int]:
        """Resolve one warp memory access to ``line`` issued at ``now``.

        Returns ``(completion_time, where)`` with ``where`` one of
        :data:`L1_HIT`, :data:`LLC_HIT`, :data:`DRAM`, :data:`MERGED`.
        """
        config = self.config
        l1 = self.l1s[sm_id]
        if l1.cache.access(line):
            self.l1_hits += 1
            return now + config.l1_hit_latency, L1_HIT
        if self._drop_miss_budget > 0:
            self._drop_miss_budget -= 1
        else:
            self.l1_misses += 1

        # Merge with an in-flight miss to the same line (secondary miss):
        # no new NoC/LLC/DRAM traffic, data arrives with the primary.
        pending = l1.in_flight.get(line)
        if pending is not None and pending > now:
            l1.merged += 1
            self.merged += 1
            return pending, MERGED

        # Primary miss: take an MSHR, cross the NoC, probe the LLC slice.
        t = l1.mshrs.acquire(now) + config.l1_hit_latency
        t = self.noc_request.transfer(t, self._request_bytes) + self._noc_latency
        t, where = self.llc_dram_path(line, t)
        # Response line crosses the NoC back to the SM.
        t = self.noc_response.transfer(t, self._line_size) + self._noc_latency
        l1.in_flight[line] = t
        l1.mshrs.hold(t)
        self._prune_countdown -= 1
        if self._prune_countdown <= 0:
            self._prune_countdown = 4096
            l1.prune_in_flight(now)
        return t, where

    def llc_dram_path(self, line: int, t: float) -> Tuple[float, int]:
        """LLC slice probe plus DRAM on a miss; the post-NoC leg of a request.

        Exposed separately so the multi-chiplet model can route a remote
        request into its *home* chiplet's LLC/DRAM after crossing the
        inter-chiplet network.
        """
        config = self.config
        hashed = self.hash_line(line)
        slice_id = hashed % len(self.llc_slices)
        t = self.llc_ports[slice_id].service(t, self._slice_service)
        if line >= BYPASS_BASE:
            # No-allocate streaming hint: never cached in the LLC.
            self.llc_misses += 1
            return self._dram_access(hashed, line, t), DRAM
        hit = self.llc_slices[slice_id].access(line)
        t += config.llc_latency * self._jitter_factor()
        if hit:
            self.llc_hits += 1
            return t, LLC_HIT
        self.llc_misses += 1
        return self._dram_access(hashed, line, t), DRAM

    def _dram_access(self, hashed: int, line: int, t: float) -> float:
        """One line read through the configured memory backend."""
        config = self.config
        if self.banked_mcs:
            # Banked model: row-buffer state supplies the latency variation
            # (no synthetic jitter on top); a fixed controller overhead
            # stands in for command queues and the PHY.
            banked = self.banked_mcs[hashed % len(self.banked_mcs)]
            return banked.access(t, line) + 0.5 * config.dram_latency
        mc = self.mcs[hashed % len(self.mcs)]
        return (
            mc.transfer(t, self._line_size)
            + config.dram_latency * self._jitter_factor()
        )

    # --- statistics ------------------------------------------------------------
    @property
    def llc_accesses(self) -> int:
        return self.llc_hits + self.llc_misses

    @property
    def dram_accesses(self) -> int:
        return self.llc_misses

    def llc_miss_rate(self) -> float:
        total = self.llc_accesses
        if total == 0:
            return 0.0
        return self.llc_misses / total

    def extra_stats(self, end_time: float) -> Dict[str, float]:
        """Diagnostics attached to the simulation result."""
        return {
            "noc_utilization": self.noc_response.utilization(end_time),
            "l1_merged": float(self.merged),
        }

    # --- checkpointing ---------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot of every stateful component and counter."""
        return {
            "l1s": [l1.state_dict() for l1 in self.l1s],
            "noc_request": self.noc_request.state_dict(),
            "noc_response": self.noc_response.state_dict(),
            "llc_slices": [s.state_dict() for s in self.llc_slices],
            "llc_ports": [p.state_dict() for p in self.llc_ports],
            "mcs": [mc.state_dict() for mc in self.mcs],
            "banked_mcs": [b.state_dict() for b in self.banked_mcs],
            "rng_state": self._rng_state,
            "prune_countdown": self._prune_countdown,
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "llc_hits": self.llc_hits,
            "llc_misses": self.llc_misses,
            "merged": self.merged,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        Geometry is validated *before* any component mutates, so a
        mismatched snapshot leaves the subsystem pristine for a cold
        start.
        """
        for field, components in (
            ("l1s", self.l1s),
            ("llc_slices", self.llc_slices),
            ("llc_ports", self.llc_ports),
            ("mcs", self.mcs),
            ("banked_mcs", self.banked_mcs),
        ):
            if len(state[field]) != len(components):
                raise ConfigurationError(
                    f"memory snapshot: {field} has {len(state[field])} "
                    f"entries, expected {len(components)}"
                )
        for l1, l1_state in zip(self.l1s, state["l1s"]):
            l1.load_state(l1_state)
        self.noc_request.load_state(state["noc_request"])
        self.noc_response.load_state(state["noc_response"])
        for cache, cache_state in zip(self.llc_slices, state["llc_slices"]):
            cache.load_state(cache_state)
        for port, port_state in zip(self.llc_ports, state["llc_ports"]):
            port.load_state(port_state)
        for mc, mc_state in zip(self.mcs, state["mcs"]):
            mc.load_state(mc_state)
        for banked, banked_state in zip(self.banked_mcs, state["banked_mcs"]):
            banked.load_state(banked_state)
        self._rng_state = int(state["rng_state"])
        self._prune_countdown = int(state["prune_countdown"])
        self.l1_hits = int(state["l1_hits"])
        self.l1_misses = int(state["l1_misses"])
        self.llc_hits = int(state["llc_hits"])
        self.llc_misses = int(state["llc_misses"])
        self.merged = int(state["merged"])

    def stats(self) -> Dict[str, float]:
        return {
            "l1_hits": self.l1_hits,
            "l1_misses": self.l1_misses,
            "l1_merged": self.merged,
            "llc_hits": self.llc_hits,
            "llc_misses": self.llc_misses,
            "noc_bytes": self.noc_request.bytes_moved + self.noc_response.bytes_moved,
            "dram_bytes": sum(mc.bytes_moved for mc in self.mcs),
        }

"""Banked DRAM timing model (optional, higher-fidelity memory backend).

The default memory path models a controller as a bandwidth server plus a
jittered fixed latency, which is sufficient for the paper's methodology
(Section V consumes IPC and stall fractions, not DRAM microbehaviour).
This module provides the next fidelity step for ablations: per-controller
banks with row buffers, giving

* row-buffer **hits** (same row as the open one): column access only;
* row **misses** (bank idle or different row): precharge + activate +
  column access;
* bank-level parallelism: requests to different banks overlap, requests
  to one bank serialize.

Select it with ``GPUConfig(dram_model="banked")``; the flat model remains
the calibrated default (``"simple"``).
"""

from __future__ import annotations

from typing import List

from repro.engine.resource import FifoServer
from repro.exceptions import ConfigurationError


class DramBank:
    """One DRAM bank: a FIFO service pipeline plus an open-row register."""

    def __init__(self, name: str, t_cas: float, t_ras: float, t_rp: float) -> None:
        self.server = FifoServer(name=name)
        self.open_row: int = -1
        self.t_cas = t_cas            # column access (row-buffer hit)
        self.t_ras = t_ras            # activate
        self.t_rp = t_rp              # precharge
        self.row_hits = 0
        self.row_misses = 0

    def access(self, now: float, row: int) -> float:
        """Serve one access to ``row``; returns the data-ready time."""
        if row == self.open_row:
            self.row_hits += 1
            service = self.t_cas
        else:
            self.row_misses += 1
            service = self.t_rp + self.t_ras + self.t_cas
            self.open_row = row
        return self.server.service(now, service)

    def state_dict(self) -> dict:
        return {
            "server": self.server.state_dict(),
            "open_row": self.open_row,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
        }

    def load_state(self, state: dict) -> None:
        self.server.load_state(state["server"])
        self.open_row = int(state["open_row"])
        self.row_hits = int(state["row_hits"])
        self.row_misses = int(state["row_misses"])


class BankedDram:
    """A memory controller with ``num_banks`` banks and a shared data bus.

    The bus is the bandwidth constraint (as in the simple model); the
    banks add row-locality-dependent latency and bank conflicts on top.
    """

    def __init__(
        self,
        bytes_per_cycle: float,
        num_banks: int = 32,
        row_bytes: int = 2048,
        line_size: int = 128,
        t_cas: float = 20.0,
        t_ras: float = 20.0,
        t_rp: float = 20.0,
        name: str = "dram",
    ) -> None:
        if num_banks < 1:
            raise ConfigurationError(f"{name}: need >= 1 bank, got {num_banks}")
        if row_bytes < line_size:
            raise ConfigurationError(
                f"{name}: row must hold at least one line"
            )
        self.name = name
        self.bus = FifoServer(name=f"{name}-bus")
        self.banks: List[DramBank] = [
            DramBank(f"{name}-bank{i}", t_cas, t_ras, t_rp)
            for i in range(num_banks)
        ]
        self._bus_service = line_size / bytes_per_cycle
        self._lines_per_row = row_bytes // line_size
        self.accesses = 0

    def bank_of(self, line: int) -> int:
        # Consecutive rows interleave across banks (standard mapping).
        return (line // self._lines_per_row) % len(self.banks)

    def row_of(self, line: int) -> int:
        return line // (self._lines_per_row * len(self.banks))

    def access(self, now: float, line: int) -> float:
        """Serve one line read; returns the time data leaves the bus."""
        self.accesses += 1
        bank = self.banks[self.bank_of(line)]
        ready = bank.access(now, self.row_of(line))
        return self.bus.service(ready, self._bus_service)

    def state_dict(self) -> dict:
        return {
            "bus": self.bus.state_dict(),
            "banks": [bank.state_dict() for bank in self.banks],
            "accesses": self.accesses,
        }

    def load_state(self, state: dict) -> None:
        banks = state["banks"]
        if len(banks) != len(self.banks):
            raise ConfigurationError(
                f"{self.name}: snapshot has {len(banks)} banks, "
                f"expected {len(self.banks)}"
            )
        self.bus.load_state(state["bus"])
        for bank, bank_state in zip(self.banks, banks):
            bank.load_state(bank_state)
        self.accesses = int(state["accesses"])

    @property
    def row_hit_rate(self) -> float:
        hits = sum(b.row_hits for b in self.banks)
        total = hits + sum(b.row_misses for b in self.banks)
        return hits / total if total else 0.0

    def utilization(self, total_time: float) -> float:
        return self.bus.utilization(total_time)

"""Multi-chip-module (MCM) GPU model — the paper's Section VII-D substrate.

An MCM GPU packages several chiplets, each a complete GPU (SMs, L1s,
intra-chiplet crossbar, LLC slices, memory controllers), connected by an
inter-chiplet network.  Following Table V:

* CTAs are scheduled *distributed*: round-robin across all SMs of all
  chiplets (the flat dispatcher already does this when SMs are numbered
  chiplet-major);
* pages are placed *first touch*: the first chiplet to access a page
  becomes its home; later accesses from other chiplets cross the
  inter-chiplet network in both directions;
* each chiplet owns ingress/egress inter-chiplet bandwidth
  (``inter_chiplet_bw_per_chiplet``), so package bisection bandwidth
  scales with chiplet count — the proportional-scaling rule that makes
  4- and 8-chiplet systems valid scale models of the 16-chiplet target.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.engine.resource import BandwidthResource
from repro.exceptions import ConfigurationError
from repro.gpu.config import GPUConfig, McmConfig
from repro.gpu.gpu import GPUSimulator
from repro.gpu.memory import MemorySubsystem
from repro.gpu.results import SimulationResult
from repro.trace.kernel import WorkloadTrace


class McmMemory:
    """Memory backend routing accesses across chiplets with first-touch pages."""

    def __init__(self, config: McmConfig) -> None:
        self.config = config
        self.subsystems: List[MemorySubsystem] = [
            MemorySubsystem(config.chiplet) for _ in range(config.num_chiplets)
        ]
        chiplet = config.chiplet
        bytes_per_cycle = config.inter_chiplet_bw_per_chiplet_bps / chiplet.sm_clock_hz
        # Separate request/response channels per chiplet so late response
        # bookings never block earlier requests (see repro.gpu.memory).
        self.links_request: List[BandwidthResource] = [
            BandwidthResource(bytes_per_cycle, name=f"xlink-req{i}")
            for i in range(config.num_chiplets)
        ]
        self.links_response: List[BandwidthResource] = [
            BandwidthResource(bytes_per_cycle, name=f"xlink-rsp{i}")
            for i in range(config.num_chiplets)
        ]
        self.page_home: Dict[int, int] = {}
        self._lines_per_page = max(1, config.page_size // chiplet.line_size)
        self._sms_per_chiplet = chiplet.num_sms
        self._line_size = chiplet.line_size
        self._request_bytes = chiplet.noc_request_bytes
        self.remote_accesses = 0
        self.local_accesses = 0

    # --- placement ----------------------------------------------------------
    def home_of(self, line: int, toucher: int) -> int:
        """Home chiplet of the page holding ``line`` (first touch wins)."""
        page = line // self._lines_per_page
        home = self.page_home.get(page)
        if home is None:
            self.page_home[page] = toucher
            return toucher
        return home

    def warm_lines(self, base: int, count: int) -> None:
        """Pre-fill every chiplet's LLC home slice with the hot region.

        First-touch pages are not assigned here; warming only loads the
        cache arrays, so the first toucher still becomes the page home.
        """
        for line in range(base, base + count):
            home = self.page_home.get(line // self._lines_per_page)
            if home is None:
                continue
            sub = self.subsystems[home]
            sub.llc_slices[sub.hash_line(line) % len(sub.llc_slices)].fill(line)

    # --- the access path ----------------------------------------------------
    def access(self, sm_id: int, line: int, now: float) -> Tuple[float, int]:
        """Resolve a memory access from a (globally numbered) SM."""
        chiplet_id = sm_id // self._sms_per_chiplet
        local_sm = sm_id % self._sms_per_chiplet
        local = self.subsystems[chiplet_id]
        home_id = self.home_of(line, chiplet_id)
        if home_id == chiplet_id:
            self.local_accesses += 1
            return local.access(local_sm, line, now)

        # Remote access: L1 and MSHR handling on the local chiplet, then the
        # inter-chiplet round trip into the home chiplet's LLC/DRAM.
        self.remote_accesses += 1
        cfg = self.config.chiplet
        l1 = local.l1s[local_sm]
        if l1.cache.access(line):
            local.l1_hits += 1
            return now + cfg.l1_hit_latency, 0
        local.l1_misses += 1
        pending = l1.in_flight.get(line)
        if pending is not None and pending > now:
            l1.merged += 1
            local.merged += 1
            return pending, 3
        home = self.subsystems[home_id]
        t = l1.mshrs.acquire(now) + cfg.l1_hit_latency
        t = local.noc_request.transfer(t, self._request_bytes) + cfg.noc_latency
        t = self.links_request[chiplet_id].transfer(t, self._request_bytes)
        t += self.config.inter_chiplet_latency
        t = home.noc_request.transfer(t, self._request_bytes) + cfg.noc_latency
        t, where = home.llc_dram_path(line, t)
        t = home.noc_response.transfer(t, self._line_size) + cfg.noc_latency
        t = self.links_response[home_id].transfer(t, self._line_size)
        t += self.config.inter_chiplet_latency
        t = local.noc_response.transfer(t, self._line_size) + cfg.noc_latency
        l1.in_flight[line] = t
        l1.mshrs.hold(t)
        return t, where

    # --- aggregate statistics ----------------------------------------------
    @property
    def l1_hits(self) -> int:
        return sum(s.l1_hits for s in self.subsystems)

    @property
    def l1_misses(self) -> int:
        return sum(s.l1_misses for s in self.subsystems)

    @property
    def llc_hits(self) -> int:
        return sum(s.llc_hits for s in self.subsystems)

    @property
    def llc_misses(self) -> int:
        return sum(s.llc_misses for s in self.subsystems)

    @property
    def merged(self) -> int:
        return sum(s.merged for s in self.subsystems)

    # --- checkpointing ---------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot: per-chiplet subsystems, links, page table."""
        return {
            "subsystems": [s.state_dict() for s in self.subsystems],
            "links_request": [l.state_dict() for l in self.links_request],
            "links_response": [l.state_dict() for l in self.links_response],
            "page_home": [[page, home] for page, home in self.page_home.items()],
            "remote_accesses": self.remote_accesses,
            "local_accesses": self.local_accesses,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`."""
        for field, components in (
            ("subsystems", self.subsystems),
            ("links_request", self.links_request),
            ("links_response", self.links_response),
        ):
            if len(state[field]) != len(components):
                raise ConfigurationError(
                    f"mcm snapshot: {field} has {len(state[field])} "
                    f"entries, expected {len(components)}"
                )
        for sub, sub_state in zip(self.subsystems, state["subsystems"]):
            sub.load_state(sub_state)
        for link, link_state in zip(self.links_request, state["links_request"]):
            link.load_state(link_state)
        for link, link_state in zip(
            self.links_response, state["links_response"]
        ):
            link.load_state(link_state)
        self.page_home = {
            int(page): int(home) for page, home in state["page_home"]
        }
        self.remote_accesses = int(state["remote_accesses"])
        self.local_accesses = int(state["local_accesses"])

    def extra_stats(self, end_time: float) -> Dict[str, float]:
        total = self.remote_accesses + self.local_accesses
        link_util = max(
            (link.utilization(end_time) for link in self.links_response),
            default=0.0,
        )
        return {
            "remote_fraction": self.remote_accesses / total if total else 0.0,
            "max_xlink_utilization": link_util,
            "pages_placed": float(len(self.page_home)),
        }


def _flat_config(config: McmConfig) -> GPUConfig:
    """A flat SM-side view of the MCM package for the core simulator loop."""
    return replace(
        config.chiplet,
        num_sms=config.total_sms,
        name=f"{config.name}-{config.num_chiplets}c",
    )


class McmSimulator:
    """Runs workloads on an MCM GPU configuration."""

    def __init__(self, config: McmConfig) -> None:
        self.config = config
        self.memory = McmMemory(config)
        self._core = GPUSimulator(
            _flat_config(config),
            memory=self.memory,
            memory_factory=lambda: McmMemory(config),
        )

    def run(self, workload: WorkloadTrace, checkpointer=None) -> SimulationResult:
        result = self._core.run(workload, checkpointer=checkpointer)
        extra = dict(result.extra)
        extra["num_chiplets"] = float(self.config.num_chiplets)
        return replace(result, extra=extra)


def simulate_mcm(
    config: McmConfig, workload: WorkloadTrace, checkpointer=None
) -> SimulationResult:
    """Convenience wrapper: simulate ``workload`` on an MCM configuration."""
    return McmSimulator(config).run(workload, checkpointer=checkpointer)

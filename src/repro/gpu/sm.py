"""The streaming-multiprocessor (SM) model.

An SM is modelled as an issue pipeline (a FIFO server with a peak rate of
``issue_width`` warp instructions per cycle) shared by all resident warps.
A warp occupies the pipeline for its whole compute burst and then stalls on
its memory access — a greedy-then-oldest-flavoured policy: the running
warp proceeds until it stalls, at which point the longest-waiting ready
warp (FIFO order) takes over.

Stall accounting follows the paper's definition of ``f_mem``: the
fraction of time the SM cannot issue because every live warp is waiting
on memory.  With a work-conserving FIFO pipeline, "cannot issue" is
exactly "pipeline idle"; the memory-stall share of that idle excludes
periods where the SM simply has no *live* warp (launch stagger before
warps start, gaps with no resident CTA).  That matters because Eq. 3 of
the paper multiplies performance by ``1 / (1 - f_mem)`` on the
assumption that the counted stall disappears once the working set fits
in the LLC; idle that is not memory stall must not be amplified.
"""

from __future__ import annotations

from repro.engine.resource import FifoServer
from repro.engine.stats import StateTimeTracker
from repro.exceptions import SimulationError
from repro.gpu.config import GPUConfig

ACTIVE = "active"
IDLE = "idle"


class StreamingMultiprocessor:
    """Runtime state of one SM during a simulation."""

    def __init__(self, sm_id: int, config: GPUConfig) -> None:
        self.sm_id = sm_id
        self.config = config
        self.pipeline = FifoServer(name=f"sm{sm_id}-pipeline")
        self.resident_ctas = 0
        self.max_resident = 1  # set per kernel by the dispatcher
        self.warp_instructions = 0
        self.accesses = 0
        self._occupancy = StateTimeTracker(IDLE)
        self._last_time = 0.0
        # Live-warp tracking: excludes launch-stagger idle from f_mem.
        self._live_warps = 0
        self._no_live_time = 0.0
        self._no_live_since = 0.0  # live count is 0 at construction

    # --- occupancy tracking --------------------------------------------------
    def cta_started(self, now: float) -> None:
        if self.resident_ctas >= self.max_resident:
            raise SimulationError(
                f"SM {self.sm_id}: CTA dispatched beyond residency limit "
                f"({self.resident_ctas} >= {self.max_resident})"
            )
        if self.resident_ctas == 0:
            self._occupancy.transition(now, ACTIVE)
        self.resident_ctas += 1
        self._last_time = max(self._last_time, now)

    def cta_finished(self, now: float) -> None:
        if self.resident_ctas <= 0:
            raise SimulationError(f"SM {self.sm_id}: CTA finished with none resident")
        self.resident_ctas -= 1
        if self.resident_ctas == 0:
            self._occupancy.transition(now, IDLE)
        self._last_time = max(self._last_time, now)

    @property
    def has_room(self) -> bool:
        return self.resident_ctas < self.max_resident

    # --- issue ------------------------------------------------------------------
    def issue(self, now: float, warp_instructions: int) -> float:
        """Issue a compute burst; return the cycle it leaves the pipeline."""
        if warp_instructions < 0:
            raise SimulationError(
                f"SM {self.sm_id}: negative burst {warp_instructions}"
            )
        self.warp_instructions += warp_instructions
        service = warp_instructions / self.config.issue_width
        return self.pipeline.service(now, service)

    # --- warp-state tracking ----------------------------------------------
    def warp_started(self, now: float) -> None:
        """A warp issues its first instruction (launch stagger is over)."""
        if self._live_warps == 0:
            self._no_live_time += now - self._no_live_since
        self._live_warps += 1

    def warp_finished(self, now: float) -> None:
        """A live warp retires."""
        if self._live_warps <= 0:
            raise SimulationError(f"SM {self.sm_id}: retire without live warp")
        self._live_warps -= 1
        if self._live_warps == 0:
            self._no_live_since = now

    # --- end-of-run statistics ----------------------------------------------
    def close(self, end_time: float) -> None:
        """Finalize occupancy and stall tracking at the end of simulation."""
        end = max(end_time, self._last_time)
        self._occupancy.finish(end)
        if self._live_warps == 0:
            self._no_live_time += max(0.0, end - self._no_live_since)
            self._no_live_since = end

    @property
    def active_time(self) -> float:
        return self._occupancy.time_in(ACTIVE)

    @property
    def no_live_time(self) -> float:
        """Total time with zero live warps (includes inactive periods)."""
        return self._no_live_time

    # --- checkpointing ---------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot, taken at a kernel boundary.

        At a boundary no CTA is resident and no warp is live, so only the
        accumulated counters and trackers need to travel; ``max_resident``
        is re-derived by the dispatcher when the next kernel loads.
        """
        if self.resident_ctas or self._live_warps:
            raise SimulationError(
                f"SM {self.sm_id}: snapshot requested mid-kernel "
                f"({self.resident_ctas} CTAs, {self._live_warps} warps live)"
            )
        return {
            "pipeline": self.pipeline.state_dict(),
            "warp_instructions": self.warp_instructions,
            "accesses": self.accesses,
            "occupancy": self._occupancy.state_dict(),
            "last_time": self._last_time,
            "no_live_time": self._no_live_time,
            "no_live_since": self._no_live_since,
        }

    def load_state(self, state: dict) -> None:
        """Restore a kernel-boundary snapshot from :meth:`state_dict`."""
        self.pipeline.load_state(state["pipeline"])
        self.warp_instructions = int(state["warp_instructions"])
        self.accesses = int(state["accesses"])
        self._occupancy.load_state(state["occupancy"])
        self._last_time = float(state["last_time"])
        self._live_warps = 0
        self.resident_ctas = 0
        self._no_live_time = float(state["no_live_time"])
        self._no_live_since = float(state["no_live_since"])

    def memory_stall_fraction(self) -> float:
        """Fraction of active time all live warps wait on memory (f_mem).

        With the work-conserving pipeline, memory stall = active time
        minus pipeline-busy time minus active-but-no-live-warp time (the
        launch-stagger window before an initial wave starts issuing).
        """
        active = self.active_time
        if active <= 0:
            return 0.0
        idle = self._occupancy.time_in(IDLE)
        no_live_active = max(0.0, self._no_live_time - idle)
        stall = active - min(self.pipeline.busy_time, active) - no_live_active
        return min(1.0, max(0.0, stall / active))

"""The monolithic GPU timing simulator.

Executes a :class:`~repro.trace.kernel.WorkloadTrace` on a
:class:`~repro.gpu.config.GPUConfig` and reports a
:class:`~repro.gpu.results.SimulationResult`.  Kernels run back to back;
within a kernel, CTAs are dispatched round-robin with greedy backfill;
each resident warp alternates compute bursts on the SM issue pipeline with
memory accesses resolved analytically by the shared memory subsystem.

The event count is about one heap event per warp memory access, which is
what keeps the pure-Python simulator usable for the paper's full sweep.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import Callable, List, Optional

from repro.engine.kernel import SimulationKernel
from repro.exceptions import CheckpointError, ConfigurationError, SimulationError
from repro.gpu.config import GPUConfig
from repro.obs.tracing import get_tracer
from repro.gpu.cta import CTADispatcher
from repro.gpu.memory import MemorySubsystem
from repro.gpu.results import SimulationResult
from repro.gpu.sm import StreamingMultiprocessor
from repro.trace.kernel import WarpTrace, WorkloadTrace
from repro.validate import validate_config, validate_trace
from repro.verify.runtime import ensure_paranoia

#: Optional kernel-boundary observer, set by ``repro.verify.hooks.install``.
#: Called as ``_boundary_observer(sim, kernels_completed)`` after kernel
#: ``kernels_completed - 1`` drains — the event queue is empty there, so
#: the whole simulator state is plain counters and cache contents — for
#: every boundary *including* the final one (which ``_maybe_checkpoint``
#: never sees).  ``None`` (the default) keeps the disabled-verification
#: cost at a single ``is None`` check per kernel boundary, never per event.
_boundary_observer = None


class _WarpRun:
    """Mutable per-warp execution cursor."""

    __slots__ = (
        "sm_id", "cta_key", "compute", "lines", "idx", "tail", "offset",
        "started",
    )

    def __init__(self, sm_id: int, cta_key: int, trace: WarpTrace) -> None:
        self.sm_id = sm_id
        self.cta_key = cta_key
        self.compute = trace.compute
        self.lines = trace.lines
        self.idx = 0
        self.tail = trace.tail_compute
        self.offset = trace.start_offset
        self.started = False


class GPUSimulator:
    """Runs workloads on a monolithic GPU configuration."""

    def __init__(
        self,
        config: GPUConfig,
        memory=None,
        memory_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        validate_config(config)
        self.config = config
        self.kernel_clock = SimulationKernel()
        if memory_factory is None and memory is None:
            memory_factory = lambda: MemorySubsystem(config)  # noqa: E731
        self._memory_factory = memory_factory
        self.memory = memory if memory is not None else memory_factory()
        self.sms: List[StreamingMultiprocessor] = [
            StreamingMultiprocessor(i, config) for i in range(config.num_sms)
        ]
        self.dispatcher = CTADispatcher(self.sms, policy=config.cta_scheduler)
        self._workload: Optional[WorkloadTrace] = None
        self._checkpointer = None
        self._tracer = None  # set per run() when observability is on
        self._kernel_start_us = 0.0
        self._kernel_index = 0
        self._live_ctas = {}
        self._cta_seq = 0
        self._accesses = 0
        self._finished = False

    # --- public API --------------------------------------------------------
    def run(
        self, workload: WorkloadTrace, checkpointer=None
    ) -> SimulationResult:
        """Simulate ``workload`` to completion and return the result.

        With a :class:`repro.checkpoint.Checkpointer`, the run snapshots
        its state at kernel boundaries and — when a valid snapshot from
        an earlier (killed) attempt exists — resumes from it instead of
        starting cold.  A resumed run is cycle-identical to an
        uninterrupted one: only ``wall_time_s`` (host time) differs.
        """
        if self._workload is not None:
            raise SimulationError("GPUSimulator instances are single-use")
        validate_trace(workload)
        # Self-arm paranoia mode (REPRO_VERIFY=1): installing here means
        # direct simulate() callers and pool workers get the checked run
        # loop too, not just runner-mediated paths.  The class-level
        # patches take effect for the kernel_clock.run() call below even
        # though this frame entered through the unpatched run().
        ensure_paranoia()
        self._arm_engine_faults(workload)
        self._workload = workload
        self._checkpointer = checkpointer
        tracer = get_tracer()
        self._tracer = tracer if tracer.enabled else None
        run_start_us = tracer.now_us() if self._tracer is not None else 0.0
        wall_start = _time.perf_counter()
        if not (checkpointer is not None and self._try_resume(workload)):
            self._prewarm(workload)
            self._kernel_index = 0
            self._launch_kernel()
        self.kernel_clock.run()
        if not self._finished:
            raise SimulationError(
                f"{workload.name}: event queue drained before workload completed"
            )
        wall = _time.perf_counter() - wall_start
        result = self._build_result(wall)
        if self._tracer is not None:
            self._tracer.complete(
                f"sim:{workload.name}",
                "sim",
                run_start_us,
                self._tracer.now_us() - run_start_us,
                args={
                    "system": self.config.name,
                    "cycles": result.cycles,
                    "events": result.events,
                },
            )
        if checkpointer is not None:
            # The result is durable in the caller's store; the snapshots
            # have nothing left to protect.
            checkpointer.cleanup()
        return result

    def _arm_engine_faults(self, workload: WorkloadTrace) -> None:
        """Spend any ``drop-miss`` REPRO_FAULT_INJECT budget on this run.

        The directive prefix matches the workload trace name.  For MCM
        memory the budget lands on the first chiplet's subsystem — the
        aggregate counters sum over chiplets, so the corruption is
        visible to the same conservation invariants either way.
        """
        # Deferred import: repro.analysis imports repro.gpu at package
        # scope, so the reverse edge must not exist at module scope.
        from repro.analysis.faults import engine_fault_budget

        budget = engine_fault_budget("drop-miss", workload.name)
        if budget:
            subsystems = getattr(self.memory, "subsystems", None)
            target = subsystems[0] if subsystems else self.memory
            target._drop_miss_budget += budget

    def _prewarm(self, workload: WorkloadTrace) -> None:
        """Pre-fill the LLC with the workload's steady-state hot region.

        Mirrors the warm-up phase of sampled simulation: the miniature
        trace measures steady-state behaviour, not cold start.  Filling a
        cache smaller than the region leaves it in the same state a first
        sweep pass would (the trailing lines resident), so pre-cliff
        systems are unaffected while post-cliff systems skip the one-time
        compulsory-miss transient.
        """
        region = workload.metadata.get("warm_region")
        if not region:
            return
        warm = getattr(self.memory, "warm_lines", None)
        if warm is None:
            return
        base, count = region
        warm(base, count)

    # --- kernel / CTA lifecycle ------------------------------------------------
    def _launch_kernel(self) -> None:
        if self._tracer is not None:
            self._kernel_start_us = self._tracer.now_us()
        kernel = self._workload.kernels[self._kernel_index]
        max_resident = self.config.max_resident_ctas(kernel.threads_per_cta)
        self.dispatcher.load_kernel(kernel.num_ctas, max_resident)
        placements = self.dispatcher.initial_placements()
        now = self.kernel_clock.now
        for cta_id, sm_id in placements:
            self._start_cta(cta_id, sm_id, now, stagger=True)

    def _start_cta(
        self, cta_id: int, sm_id: int, now: float, stagger: bool = False
    ) -> None:
        kernel = self._workload.kernels[self._kernel_index]
        cta = kernel.build_cta(cta_id)
        sm = self.sms[sm_id]
        sm.cta_started(now)
        key = self._cta_seq
        self._cta_seq += 1
        self._live_ctas[key] = len(cta.warps)
        for warp_trace in cta.warps:
            run = _WarpRun(sm_id, key, warp_trace)
            # Launch stagger applies to the initial wave only: backfilled
            # CTAs start at their predecessor's (already spread) completion
            # time, so re-staggering them would just waste issue slots.
            offset = run.offset if stagger else 0.0
            self.kernel_clock.schedule_at(
                now + offset, self._advance_warp, run
            )

    def _cta_done(self, cta_key: int, now: float, sm_id: int) -> None:
        del self._live_ctas[cta_key]
        sm = self.sms[sm_id]
        sm.cta_finished(now)
        next_cta = self.dispatcher.next_for(sm_id)
        if next_cta is not None:
            self._start_cta(next_cta, sm_id, now)
            return
        if self._live_ctas:
            return
        # Kernel drained: move to the next one, or finish the workload.
        self._trace_kernel_end()
        self._kernel_index += 1
        observer = _boundary_observer
        if observer is not None:
            observer(self, self._kernel_index)
        if self._kernel_index < len(self._workload.kernels):
            # The boundary is the checkpoint cut: the event queue is
            # empty (every warp of every CTA has retired), so the whole
            # simulator state is plain counters and cache contents.
            self._maybe_checkpoint()
            self._launch_next_kernel()
        else:
            self._finished = True

    def _trace_kernel_end(self) -> None:
        """Record the just-drained kernel as one wall-time span."""
        tracer = self._tracer
        if tracer is None:
            return
        kernel = self._workload.kernels[self._kernel_index]
        tracer.complete(
            f"kernel[{self._kernel_index}]:{getattr(kernel, 'name', '?')}",
            "kernel",
            self._kernel_start_us,
            tracer.now_us() - self._kernel_start_us,
            args={"sim_cycles": self.kernel_clock.now},
        )

    def _launch_next_kernel(self) -> None:
        """Launch the kernel at ``_kernel_index`` from a boundary.

        Shared by the in-run boundary transition and checkpoint resume so
        both schedule the launch identically (same event, same seq) —
        the resumed event stream must replay the original exactly.
        """
        overhead = self.config.kernel_launch_overhead
        if overhead > 0:
            self.kernel_clock.schedule(overhead, self._launch_kernel)
        else:
            self._launch_kernel()

    # --- checkpoint / resume -------------------------------------------------
    def _maybe_checkpoint(self) -> None:
        """Snapshot at the current kernel boundary if the policy says so."""
        checkpointer = self._checkpointer
        if checkpointer is None or not checkpointer.should_checkpoint(
            self._kernel_index
        ):
            return
        checkpointer.save(
            {
                "kernels_completed": self._kernel_index,
                "num_kernels": len(self._workload.kernels),
                "workload": self._workload.name,
                "system": self.config.name,
                "cycles": self.kernel_clock.now,
                "state": self._state_dict(),
            }
        )

    def _try_resume(self, workload: WorkloadTrace) -> bool:
        """Restore the latest valid snapshot; False means cold start.

        Every failure mode here — no snapshot, a snapshot for a
        different run, a restore that blows up mid-way — degrades to a
        cold start with at most a warning.  Crash-resume must never be
        worse than not having checkpoints at all.
        """
        snapshot = self._checkpointer.load_latest()
        if snapshot is None:
            return False
        if not self._snapshot_matches(snapshot, workload):
            warnings.warn(
                f"{workload.name}: checkpoint describes a different run "
                "(workload/system/kernel-count mismatch); cold start"
            )
            return False
        try:
            self._restore(snapshot)
        except Exception as error:  # noqa: BLE001 - degrade, never crash
            warnings.warn(
                f"{workload.name}: checkpoint restore failed ({error}); "
                "cold start"
            )
            self._rebuild_fresh()
            return False
        self._checkpointer.mark_resumed(
            self._kernel_index, self.kernel_clock.now
        )
        if self._tracer is not None:
            self._tracer.instant(
                "sim.resume",
                cat="checkpoint",
                args={
                    "workload": workload.name,
                    "kernels_completed": self._kernel_index,
                    "cycles_saved": self.kernel_clock.now,
                },
            )
        self._launch_next_kernel()
        return True

    def _snapshot_matches(self, snapshot: dict, workload: WorkloadTrace) -> bool:
        try:
            completed = int(snapshot["kernels_completed"])
            return (
                snapshot["workload"] == workload.name
                and snapshot["system"] == self.config.name
                and int(snapshot["num_kernels"]) == len(workload.kernels)
                and 1 <= completed < len(workload.kernels)
            )
        except (KeyError, TypeError, ValueError):
            return False

    def _state_dict(self) -> dict:
        """Complete simulator state at a kernel boundary (JSON-able)."""
        return {
            "clock": self.kernel_clock.state_dict(),
            "sms": [sm.state_dict() for sm in self.sms],
            "memory": self.memory.state_dict(),
            "accesses": self._accesses,
            "cta_seq": self._cta_seq,
        }

    def _restore(self, snapshot: dict) -> None:
        state = snapshot["state"]
        if len(state["sms"]) != len(self.sms):
            raise ConfigurationError(
                f"snapshot has {len(state['sms'])} SMs, "
                f"expected {len(self.sms)}"
            )
        self.kernel_clock.load_state(state["clock"])
        for sm, sm_state in zip(self.sms, state["sms"]):
            sm.load_state(sm_state)
        self.memory.load_state(state["memory"])
        self._accesses = int(state["accesses"])
        self._cta_seq = int(state["cta_seq"])
        self._kernel_index = int(snapshot["kernels_completed"])
        self._live_ctas = {}
        self._finished = False

    def _rebuild_fresh(self) -> None:
        """Replace possibly partially-restored components with fresh ones."""
        if self._memory_factory is None:
            raise CheckpointError(
                "cannot fall back to a cold start: this simulator was "
                "built with an injected memory subsystem and no "
                "memory_factory to rebuild it"
            )
        config = self.config
        self.kernel_clock = SimulationKernel()
        self.memory = self._memory_factory()
        self.sms = [
            StreamingMultiprocessor(i, config) for i in range(config.num_sms)
        ]
        self.dispatcher = CTADispatcher(self.sms, policy=config.cta_scheduler)
        self._kernel_index = 0
        self._live_ctas = {}
        self._cta_seq = 0
        self._accesses = 0
        self._finished = False

    # --- warp execution -----------------------------------------------------
    def _advance_warp(self, run: _WarpRun) -> None:
        now = self.kernel_clock.now
        sm = self.sms[run.sm_id]
        if not run.started:
            run.started = True
            sm.warp_started(now)
        idx = run.idx
        if idx < len(run.lines):
            # Compute burst plus the memory instruction itself, then the
            # access; the warp resumes when the data arrives.
            finish = sm.issue(now, run.compute[idx] + 1)
            completion, __ = self.memory.access(run.sm_id, run.lines[idx], finish)
            self._accesses += 1
            sm.accesses += 1
            run.idx = idx + 1
            self.kernel_clock.schedule_at(completion, self._advance_warp, run)
            return
        # Tail compute, then the warp retires.
        finish = sm.issue(now, run.tail) if run.tail else now
        sm.warp_finished(now)
        remaining = self._live_ctas[run.cta_key] - 1
        if remaining:
            self._live_ctas[run.cta_key] = remaining
        else:
            self._cta_done(run.cta_key, finish, run.sm_id)

    # --- results ---------------------------------------------------------------
    def _build_result(self, wall_time_s: float) -> SimulationResult:
        end = self.kernel_clock.now
        for sm in self.sms:
            # Pipelines may drain slightly after the last event fired.
            end = max(end, sm.pipeline.next_free)
        total_warp_instructions = 0
        stall_weighted = 0.0
        active_total = 0.0
        for sm in self.sms:
            sm.close(end)
            total_warp_instructions += sm.warp_instructions
            active = sm.active_time
            stall_weighted += sm.memory_stall_fraction() * active
            active_total += active
        f_mem = stall_weighted / active_total if active_total > 0 else 0.0
        threads = self.config.threads_per_warp
        mem = self.memory
        return SimulationResult(
            workload=self._workload.name,
            system=self.config.name,
            num_sms=self.config.num_sms,
            cycles=end if end > 0 else 1.0,
            thread_instructions=total_warp_instructions * threads,
            warp_instructions=total_warp_instructions,
            memory_accesses=self._accesses,
            memory_stall_fraction=f_mem,
            l1_hits=mem.l1_hits,
            l1_misses=mem.l1_misses,
            llc_hits=mem.llc_hits,
            llc_misses=mem.llc_misses,
            events=self.kernel_clock.events_processed,
            wall_time_s=wall_time_s,
            extra=mem.extra_stats(end),
        )


def simulate(
    config: GPUConfig, workload: WorkloadTrace, checkpointer=None
) -> SimulationResult:
    """Convenience wrapper: simulate ``workload`` on ``config``."""
    return GPUSimulator(config).run(workload, checkpointer=checkpointer)

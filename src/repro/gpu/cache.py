"""Set-associative cache with LRU replacement.

Used for both the per-SM L1s and the LLC slices.  The implementation
exploits CPython dict ordering for O(1) LRU: a set is a dict whose keys are
resident line addresses in recency order (oldest first); a hit deletes and
re-inserts the key, a miss evicts the first key when the set is full.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.exceptions import ConfigurationError


class SetAssocCache:
    """A set-associative LRU cache operating on line addresses.

    The cache is indexed by *line number* (byte address divided by line
    size); callers are responsible for that division.  ``num_sets`` may be
    any positive integer — the paper's slice geometry (34 MB over 32
    slices) yields non-power-of-two set counts, so indexing is modulo.
    """

    def __init__(self, num_sets: int, assoc: int, name: str = "cache") -> None:
        if num_sets < 1:
            raise ConfigurationError(f"{name}: num_sets must be >= 1, got {num_sets}")
        if assoc < 1:
            raise ConfigurationError(f"{name}: assoc must be >= 1, got {assoc}")
        self.num_sets = num_sets
        self.assoc = assoc
        self.name = name
        self._sets: List[Dict[int, None]] = [dict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.assoc

    def access(self, line: int) -> bool:
        """Look up ``line``; allocate it on a miss.  Returns True on hit."""
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            del cache_set[line]
            cache_set[line] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.assoc:
            del cache_set[next(iter(cache_set))]
        cache_set[line] = None
        return False

    def probe(self, line: int) -> bool:
        """Check residency without updating LRU state or counters."""
        return line in self._sets[line % self.num_sets]

    def fill(self, line: int) -> Optional[int]:
        """Insert ``line`` without counting an access.

        Returns the evicted line, if any.  Used by prefetch-style fills.
        """
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            del cache_set[line]
            cache_set[line] = None
            return None
        victim = None
        if len(cache_set) >= self.assoc:
            victim = next(iter(cache_set))
            del cache_set[victim]
        cache_set[line] = None
        return victim

    def invalidate(self, line: int) -> bool:
        """Remove ``line`` if present.  Returns True if it was resident."""
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    def resident_lines(self) -> int:
        """Number of lines currently resident (for occupancy assertions)."""
        return sum(len(s) for s in self._sets)

    def miss_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.misses / total

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()
        self.reset_stats()

    # --- checkpointing ---------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-able snapshot: per-set resident lines in LRU order."""
        return {
            "sets": [list(cache_set) for cache_set in self._sets],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict`.

        The geometry (set count, associativity) must match — snapshots
        are keyed by a config digest upstream, so a mismatch means a
        corrupt or foreign snapshot.
        """
        sets = state["sets"]
        if len(sets) != self.num_sets:
            raise ConfigurationError(
                f"{self.name}: snapshot has {len(sets)} sets, "
                f"expected {self.num_sets}"
            )
        restored = []
        for lines in sets:
            if len(lines) > self.assoc:
                raise ConfigurationError(
                    f"{self.name}: snapshot set holds {len(lines)} lines, "
                    f"associativity is {self.assoc}"
                )
            # dict.fromkeys preserves order, reproducing the LRU recency
            # ordering (oldest first) the lists were captured in.
            restored.append(dict.fromkeys(int(line) for line in lines))
        self._sets = restored
        self.hits = int(state["hits"])
        self.misses = int(state["misses"])

    def __repr__(self) -> str:
        return (
            f"SetAssocCache(name={self.name!r}, sets={self.num_sets}, "
            f"assoc={self.assoc}, hits={self.hits}, misses={self.misses})"
        )

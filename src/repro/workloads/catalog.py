"""The benchmark catalog: Tables II and IV of the paper.

Benchmark definitions live in :mod:`repro.workloads.suites` (one module
per source suite, each entry documented against the real kernel it
stands in for); this module aggregates them into the paper's tables:

* ``STRONG_SCALING`` — Table II order, fixed inputs across system sizes;
* ``WEAK_SCALING`` — Table IV base (8-SM-sized) inputs; pass
  ``work_scale`` to :func:`repro.workloads.generators.build_trace` to
  grow them per system size;
* ``MCM_WEAK_BENCHMARKS`` — the Table IV MCM column (btree excluded
  "due to simulator limitations", which we mirror).

CTA counts follow Table II where affordable; grids above the generator
clamp (8,192 CTAs per kernel) are reduced, and a few grids are enlarged
or re-shaped (threads per CTA) so every kernel presents enough concurrent
warps for a stable queueing equilibrium — a workload-size substitution
documented in DESIGN.md.  Footprints are the paper's, realized at the
miniaturization factor of the simulated GPU.  Generator parameters (hot
working-set size, compute intensity, imbalance) were calibrated so each
benchmark reproduces its published scaling class and miss-rate-curve
shape, not its absolute IPC.

Sizing rules discovered during calibration:

* a super-linear benchmark's *hot* working set must fit the target LLC
  net of cold-stream occupancy: ``hot <= (1 - cold_frac) * LLC_target``;
* every kernel should run >= ~25k warps total and >= ~3 CTA waves at
  128 SMs, or end-of-kernel tails distort the scaling trend;
* sub-linear decay must be moderate and partly offset by cache-capacity
  recovery, otherwise no extrapolation-based predictor (the paper's
  included) can track the curve.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import WorkloadError
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.suites import cuda_sdk, mlperf, parboil, polybench, rodinia

#: Table II order (super-linear, sub-linear, linear — as in the paper).
_TABLE2_ORDER = (
    "dct", "fwt", "bp", "va", "as", "lu", "st",
    "bfs", "unet", "sr", "gr", "btree",
    "pf", "res50", "res34", "ht", "at", "gemm", "2mm", "lbm", "bs",
)

#: Table IV order.
_TABLE4_ORDER = ("bfs", "bs", "btree", "as", "bp", "va")

_ALL_STRONG: Dict[str, BenchmarkSpec] = {}
_ALL_WEAK: Dict[str, BenchmarkSpec] = {}
for _suite in (rodinia, cuda_sdk, polybench, parboil, mlperf):
    _ALL_STRONG.update(_suite.STRONG)
    _ALL_WEAK.update(_suite.WEAK)

STRONG_SCALING: Dict[str, BenchmarkSpec] = {
    abbr: _ALL_STRONG[abbr] for abbr in _TABLE2_ORDER
}
WEAK_SCALING: Dict[str, BenchmarkSpec] = {
    abbr: _ALL_WEAK[abbr] for abbr in _TABLE4_ORDER
}

#: Weak-scaling benchmarks used in the MCM case study (Table IV, MCM column;
#: btree is excluded there "due to simulator limitations", which we mirror).
MCM_WEAK_BENCHMARKS = ("bfs", "bs", "as", "bp", "va")


def get_benchmark(abbr: str, weak: bool = False) -> BenchmarkSpec:
    """Look up a benchmark spec by abbreviation."""
    table = WEAK_SCALING if weak else STRONG_SCALING
    if abbr not in table:
        kind = "weak" if weak else "strong"
        raise WorkloadError(
            f"unknown {kind}-scaling benchmark {abbr!r}; "
            f"available: {sorted(table)}"
        )
    return table[abbr]


def strong_scaling_names() -> List[str]:
    """All strong-scaling benchmark abbreviations, in Table II order."""
    return list(_TABLE2_ORDER)


def weak_scaling_names() -> List[str]:
    """All weak-scaling benchmark abbreviations, in Table IV order."""
    return list(_TABLE4_ORDER)

"""Trace-generator families for the benchmark miniatures.

Each family turns a :class:`~repro.workloads.spec.BenchmarkSpec` into a
:class:`~repro.trace.kernel.WorkloadTrace`.  All generators are
deterministic in ``(spec, work_scale, capacity_scale, seed)``.

Families
--------
``sweep``
    Repeated in-order passes over a shared hot working set (optionally
    mixed with a cold private stream).  Under LRU this produces a sharp
    miss-rate cliff at the hot working-set size — the paper's super-linear
    mechanism (dct, fwt, bp, va, as, lu, st).
``irregular``
    Uniform or Zipf references over the footprint, with lognormal per-CTA
    work — the workload-architecture-imbalance mechanism for sub-linear
    scaling (bfs, sr, gr).
``stream``
    Private streaming (sequential or random) through a footprint much
    larger than any cache — the linear, memory-intensive regime (pf, at,
    lbm, res50, res34).
``tiled``
    Small per-warp tiles reused many times (captured by the L1) plus high
    compute intensity — the linear, compute-intensive regime (gemm, 2mm,
    ht, bs).
``chase``
    Root-to-leaf walks over a shared tree: the hot top levels concentrate
    traffic on few LLC slices (camping), the paper's second sub-linear
    mechanism (btree).
``hotcold``
    A fixed-size hot shared region (Zipf) mixed with a cold scaling
    stream; used for unet and for the weak-scaling variants of bs.
``generated``
    Composite family for grammar-generated specs (:mod:`repro.zoo`):
    one kernel per phase, each delegating to one of the families above
    with phase-specific parameters.

Weak scaling multiplies CTA counts and footprints by ``work_scale``,
mirroring Table IV's input scaling.  A ``sigma_growth`` parameter lets
imbalance grow with input size (heavier tails in bigger graphs), which is
what makes bfs and bs sub-linear under weak scaling.
"""

from __future__ import annotations

import math
from typing import Callable, List

import numpy as np

from repro.exceptions import WorkloadError
from repro.memory_regions import BYPASS_BASE
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace
from repro.trace import patterns
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec, KernelShape

#: Cache-line size used throughout (Table I / Table III).
LINE_SIZE = 128

#: CTA-count clamp: paper grids reach 306k CTAs; pure-Python simulation
#: caps each kernel at this many CTAs and notes the substitution.
MAX_CTAS = 8192

#: Line-number bases for disjoint address regions.
HOT_BASE = 0
COLD_BASE = 1 << 34
STREAM_BASE = 1 << 35
TILE_BASE = 1 << 36
TREE_BASE = 1 << 37
_KERNEL_STRIDE = 1 << 30


def lines_for_mb(mb: float, capacity_scale: float) -> int:
    """Simulated cache lines for a nominal footprint of ``mb`` megabytes."""
    if mb <= 0:
        raise WorkloadError(f"footprint must be positive, got {mb}")
    return max(1, int(mb * MB * capacity_scale / LINE_SIZE))


def _clamped_ctas(shape: KernelShape, work_scale: float) -> int:
    scaled = int(round(shape.num_ctas * work_scale))
    return max(1, min(MAX_CTAS, scaled))


def _cta_rng(seed: int, kernel_idx: int, cta_id: int) -> np.random.Generator:
    return np.random.default_rng((seed, kernel_idx, cta_id))


def _warp_traces(
    lines_per_warp: List[np.ndarray],
    cpa: float,
    rng: np.random.Generator,
    lead_in: int = 0,
) -> List[WarpTrace]:
    warps = []
    for lines in lines_per_warp:
        n = len(lines)
        compute = patterns.interleave_compute(n, cpa, rng)
        # Stagger warp launch (scheduler and launch overhead) so warps do
        # not issue memory in lockstep: identical warp periods would
        # otherwise resonate into synchronized request bursts no real GPU
        # exhibits.  The offset is idle time, not instructions.
        offset = float(rng.integers(0, lead_in)) if lead_in > 0 else 0.0
        warps.append(
            WarpTrace(compute.tolist(), lines.tolist(), start_offset=offset)
        )
    return warps


class _TraceContext:
    """Resolved parameters shared by all family builders."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        work_scale: float,
        capacity_scale: float,
        seed: int,
    ) -> None:
        if work_scale <= 0:
            raise WorkloadError(f"work_scale must be positive, got {work_scale}")
        self.spec = spec
        self.work_scale = work_scale
        self.capacity_scale = capacity_scale
        self.seed = seed
        self.cpa = spec.param("cpa", 8.0)
        self.apw = int(spec.param("apw", 24))
        # Default start-up stagger: comparable to one memory round trip so
        # warp generations decorrelate (see _warp_traces); overridable.
        self.lead_in = int(
            spec.param("lead_in", max(900, round(2 * self.cpa * self.apw)))
        )
        sigma = spec.param("sigma", 0.0)
        growth = spec.param("sigma_growth", 0.0)
        if work_scale > 1 and growth > 0:
            sigma *= 1.0 + growth * math.log2(work_scale)
        self.sigma = sigma

    def footprint_lines(self, key: str = "fp_mb", default: float = None) -> int:
        mb = self.spec.param(key, default if default is not None else self.spec.footprint_mb)
        return lines_for_mb(mb * self.work_scale, self.capacity_scale)

    def cta_work_factor(self, rng: np.random.Generator) -> float:
        """Lognormal per-CTA work multiplier with unit mean."""
        if self.sigma <= 0:
            return 1.0
        z = rng.standard_normal()
        return float(np.exp(self.sigma * z - 0.5 * self.sigma * self.sigma))


# --------------------------------------------------------------------------
# Family builders: each returns a build_cta callable for one kernel.
# --------------------------------------------------------------------------

def _sweep_kernel(
    ctx: _TraceContext, shape: KernelShape, kernel_idx: int, num_ctas: int
) -> Callable[[int], CTATrace]:
    hot_lines = ctx.footprint_lines("hot_mb", ctx.spec.footprint_mb)
    cold_frac = ctx.spec.param("cold_frac", 0.0)
    # Short-range locality: each swept line is touched ``l1_reuse`` times
    # back to back (register blocking / multiple fields per element); the
    # repeats hit the private L1, as they do in the real kernels.
    l1_reuse = max(1, int(ctx.spec.param("l1_reuse", 2)))
    warps = shape.warps_per_cta
    apw = ctx.apw
    distinct = max(1, apw // l1_reuse)
    cold_lines_total = max(
        1, ctx.footprint_lines() - hot_lines if cold_frac > 0 else 1
    )

    def build(cta_id: int) -> CTATrace:
        rng = _cta_rng(ctx.seed, kernel_idx, cta_id)
        per_warp = []
        for w in range(warps):
            gidx = cta_id * warps + w
            hot = patterns.cyclic_sweep(
                HOT_BASE, hot_lines, distinct, offset=gidx * distinct
            )
            hot = np.repeat(hot, l1_reuse)
            if cold_frac > 0:
                # One-shot streaming traffic carries the LLC no-allocate
                # hint so it adds bandwidth pressure and an MPKI floor
                # without polluting the shared cache.
                n = len(hot)
                is_cold = rng.random(n) < cold_frac
                cold_start = (gidx * n) % cold_lines_total
                cold = BYPASS_BASE + (
                    cold_start + np.arange(n, dtype=np.int64)
                ) % cold_lines_total
                hot = np.where(is_cold, cold, hot)
            per_warp.append(hot)
        return CTATrace(cta_id, _warp_traces(per_warp, ctx.cpa, rng, ctx.lead_in))

    return build


def _irregular_kernel(
    ctx: _TraceContext, shape: KernelShape, kernel_idx: int, num_ctas: int
) -> Callable[[int], CTATrace]:
    fp_lines = ctx.footprint_lines()
    zipf_exp = ctx.spec.param("zipf_exp", 0.0)
    warps = shape.warps_per_cta
    base_apw = ctx.apw
    kbase = STREAM_BASE + kernel_idx * _KERNEL_STRIDE

    def build(cta_id: int) -> CTATrace:
        rng = _cta_rng(ctx.seed, kernel_idx, cta_id)
        factor = ctx.cta_work_factor(rng)
        apw = max(2, int(round(base_apw * factor)))
        per_warp = []
        for __ in range(warps):
            if zipf_exp > 0:
                lines = patterns.zipf(HOT_BASE, fp_lines, apw, rng, zipf_exp)
            else:
                lines = patterns.uniform_random(kbase, fp_lines, apw, rng)
            per_warp.append(lines)
        return CTATrace(cta_id, _warp_traces(per_warp, ctx.cpa, rng, ctx.lead_in))

    return build


def _stream_kernel(
    ctx: _TraceContext, shape: KernelShape, kernel_idx: int, num_ctas: int
) -> Callable[[int], CTATrace]:
    fp_lines = ctx.footprint_lines()
    random_access = ctx.spec.param("random", 0.0) > 0
    no_reuse = ctx.spec.param("no_reuse", 0.0) > 0
    warps = shape.warps_per_cta
    apw = ctx.apw
    kbase = STREAM_BASE + kernel_idx * _KERNEL_STRIDE

    def build(cta_id: int) -> CTATrace:
        rng = _cta_rng(ctx.seed, kernel_idx, cta_id)
        per_warp = []
        for w in range(warps):
            gidx = cta_id * warps + w
            if random_access:
                lines = patterns.uniform_random(kbase, fp_lines, apw, rng)
            elif no_reuse:
                # Fresh lines per access: models kernels that never touch
                # the same data twice (ht): every reference is a cold miss.
                lines = kbase + gidx * apw + np.arange(apw, dtype=np.int64)
            else:
                start = (gidx * apw) % fp_lines
                lines = kbase + (start + np.arange(apw, dtype=np.int64)) % fp_lines
            per_warp.append(lines)
        return CTATrace(cta_id, _warp_traces(per_warp, ctx.cpa, rng, ctx.lead_in))

    return build


def _tiled_kernel(
    ctx: _TraceContext, shape: KernelShape, kernel_idx: int, num_ctas: int
) -> Callable[[int], CTATrace]:
    """Tiled compute kernels (gemm-style).

    Each warp works on a private tile of ``apw`` lines re-read ``reps``
    times.  Only the first pass reaches the memory system; the L1-resident
    re-reads are folded into the compute burst (``cpa`` per instruction
    slot times ``reps``), which keeps traces small without changing the
    LLC-visible stream.
    """
    fp_lines = ctx.footprint_lines()
    reps = max(1, int(ctx.spec.param("reps", 3)))
    folded_cpa = reps * (ctx.cpa + 1.0) - 1.0
    warps = shape.warps_per_cta
    apw = ctx.apw
    kbase = TILE_BASE + kernel_idx * _KERNEL_STRIDE

    def build(cta_id: int) -> CTATrace:
        rng = _cta_rng(ctx.seed, kernel_idx, cta_id)
        per_warp = []
        for w in range(warps):
            gidx = cta_id * warps + w
            start = (gidx * apw) % max(1, fp_lines)
            per_warp.append(
                kbase + (start + np.arange(apw, dtype=np.int64)) % fp_lines
            )
        return CTATrace(cta_id, _warp_traces(per_warp, folded_cpa, rng, ctx.lead_in))

    return build


def _chase_kernel(
    ctx: _TraceContext, shape: KernelShape, kernel_idx: int, num_ctas: int
) -> Callable[[int], CTATrace]:
    fp_lines = ctx.footprint_lines()
    levels = int(ctx.spec.param("levels", 5))
    # Pick the fanout so the full tree holds about fp_lines nodes.
    fanout = max(2, int(round(fp_lines ** (1.0 / max(1, levels - 1)))))
    walks = max(1, ctx.apw // levels)
    warps = shape.warps_per_cta

    def build(cta_id: int) -> CTATrace:
        rng = _cta_rng(ctx.seed, kernel_idx, cta_id)
        factor = ctx.cta_work_factor(rng)
        nwalks = max(1, int(round(walks * factor)))
        per_warp = [
            patterns.pointer_chase_tree(TREE_BASE, levels, fanout, nwalks, rng)
            for __ in range(warps)
        ]
        return CTATrace(cta_id, _warp_traces(per_warp, ctx.cpa, rng, ctx.lead_in))

    return build


def _hotcold_kernel(
    ctx: _TraceContext, shape: KernelShape, kernel_idx: int, num_ctas: int
) -> Callable[[int], CTATrace]:
    # The hot region models shared reusable state (graph nodes, frontier
    # heads, accumulators); set ``hot_scaled`` when it grows with the
    # weak-scaling input (bfs graphs), leave 0 when it is fixed state.
    hot_lines = max(1, int(ctx.spec.param("hot_lines", 256)))
    if ctx.spec.param("hot_scaled", 0.0) > 0:
        hot_lines = max(1, int(round(hot_lines * ctx.work_scale)))
    hot_frac = ctx.spec.param("hot_frac", 0.2)
    zipf_exp = ctx.spec.param("zipf_exp", 1.1)
    warps = shape.warps_per_cta
    apw = ctx.apw
    kbase = COLD_BASE + kernel_idx * _KERNEL_STRIDE

    def build(cta_id: int) -> CTATrace:
        rng = _cta_rng(ctx.seed, kernel_idx, cta_id)
        factor = ctx.cta_work_factor(rng)
        n = max(2, int(round(apw * factor)))
        per_warp = []
        for w in range(warps):
            gidx = cta_id * warps + w
            is_hot = rng.random(n) < hot_frac
            if zipf_exp > 0:
                hot = patterns.zipf(HOT_BASE, hot_lines, n, rng, zipf_exp)
            else:
                hot = patterns.uniform_random(HOT_BASE, hot_lines, n, rng)
            # Cold traffic (edge lists, one-shot payload data) never repeats:
            # fresh lines per warp, so the MPKI floor never caches away.
            cold = kbase + gidx * apw * 4 + np.arange(n, dtype=np.int64)
            per_warp.append(np.where(is_hot, hot, cold))
        return CTATrace(cta_id, _warp_traces(per_warp, ctx.cpa, rng, ctx.lead_in))

    return build


def _generated_kernel(
    ctx: _TraceContext, shape: KernelShape, kernel_idx: int, num_ctas: int
) -> Callable[[int], CTATrace]:
    """Composite family for grammar-generated specs (:mod:`repro.zoo`).

    A generated spec carries one :class:`~repro.zoo.grammar.PhaseSpec`
    per kernel; each kernel delegates to its phase's underlying family
    with the phase parameters overlaid.  The original ``kernel_idx``
    is passed through so every phase keeps its own RNG stream and
    (for private regions) its own address range; sweep/hotspot phases
    deliberately share ``HOT_BASE`` so working-set ramps and phased
    mixes reuse the same hot region across phases.
    """
    phases = getattr(ctx.spec, "phases", None)
    if not phases:
        raise WorkloadError(
            f"{ctx.spec.abbr}: family 'generated' requires a spec with "
            "per-kernel phases (see repro.zoo.grammar.GeneratedSpec)"
        )
    phase = phases[kernel_idx]
    if phase.family not in _FAMILIES or phase.family == "generated":
        raise WorkloadError(
            f"{ctx.spec.abbr}: phase {kernel_idx} names unknown family "
            f"{phase.family!r}"
        )
    sub_spec = BenchmarkSpec(
        abbr=f"{ctx.spec.abbr}.p{kernel_idx}",
        name=f"{ctx.spec.name} phase {kernel_idx}",
        suite="zoo",
        footprint_mb=float(phase.params.get("fp_mb", ctx.spec.footprint_mb)),
        insns_m=0.0,
        kernels=(shape,),
        scaling=ctx.spec.scaling,
        family=phase.family,
        params=dict(phase.params),
    )
    sub_ctx = _TraceContext(
        sub_spec, ctx.work_scale, ctx.capacity_scale, ctx.seed
    )
    return _FAMILIES[phase.family](sub_ctx, shape, kernel_idx, num_ctas)


_FAMILIES = {
    "sweep": _sweep_kernel,
    "irregular": _irregular_kernel,
    "stream": _stream_kernel,
    "tiled": _tiled_kernel,
    "chase": _chase_kernel,
    "hotcold": _hotcold_kernel,
    "generated": _generated_kernel,
}


def build_trace(
    spec: BenchmarkSpec,
    work_scale: float = 1.0,
    capacity_scale: float = 0.125,
    seed: int = 0,
) -> WorkloadTrace:
    """Build the workload trace for ``spec``.

    ``work_scale`` implements weak scaling (1.0 is the 8-SM-sized input;
    Table IV doubles it per doubling of system size); ``capacity_scale``
    must match the simulated GPU's miniaturization factor.
    """
    if spec.family not in _FAMILIES:
        raise WorkloadError(
            f"{spec.abbr}: unknown generator family {spec.family!r}"
        )
    ctx = _TraceContext(spec, work_scale, capacity_scale, seed)
    family = _FAMILIES[spec.family]
    kernels = []
    for kernel_idx, shape in enumerate(spec.kernels):
        num_ctas = _clamped_ctas(shape, work_scale)
        build = family(ctx, shape, kernel_idx, num_ctas)
        kernels.append(
            KernelTrace(
                name=f"{spec.abbr}-k{kernel_idx}",
                num_ctas=num_ctas,
                threads_per_cta=shape.threads_per_cta,
                build_cta=build,
            )
        )
    metadata = {
        "suite": spec.suite,
        "work_scale": work_scale,
        "capacity_scale": capacity_scale,
        "seed": seed,
    }
    warm = _warm_region(spec, ctx)
    if warm is not None:
        metadata["warm_region"] = warm
    return WorkloadTrace(
        name=spec.abbr,
        kernels=kernels,
        footprint_bytes=int(spec.footprint_mb * work_scale * MB),
        metadata=metadata,
    )


def _warm_region(spec: BenchmarkSpec, ctx: _TraceContext):
    """(base_line, num_lines) of the reusable hot region, if any.

    Long-running benchmarks reach a steady state where the hot working set
    is already cache-resident; the simulator pre-warms the LLC with this
    region so the (much shorter) miniature measures steady-state behaviour
    instead of cold-start warm-up — the same warm-up treatment sampled
    simulation applies before its region of interest.
    """
    if spec.family == "sweep":
        return (HOT_BASE, ctx.footprint_lines("hot_mb", spec.footprint_mb))
    if spec.family == "hotcold":
        hot_lines = max(1, int(spec.param("hot_lines", 256)))
        if spec.param("hot_scaled", 0.0) > 0:
            hot_lines = max(1, int(round(hot_lines * ctx.work_scale)))
        return (HOT_BASE, hot_lines)
    # chase (btree) is left cold: pointer-chased trees are rebuilt per
    # query batch, and warming the whole tree would hide the LLC-capacity
    # recovery that shapes its sub-linear curve.
    return None

"""Benchmark specification types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.exceptions import WorkloadError


class ScalingBehavior(enum.Enum):
    """How performance scales with system size (Table II, rightmost column)."""

    LINEAR = "linear"
    SUB_LINEAR = "sub-linear"
    SUPER_LINEAR = "super-linear"


@dataclass(frozen=True)
class KernelShape:
    """Grid shape of one kernel launch.

    ``num_ctas`` follows the paper's Table II "CTA size" column (the CTA
    *count* per kernel); counts above :data:`MAX_CTAS` are clamped by the
    generators to keep pure-Python simulation affordable (a documented
    workload-size substitution).
    """

    num_ctas: int
    threads_per_cta: int = 256
    work_share: float = 1.0  # fraction of the benchmark's accesses

    def __post_init__(self) -> None:
        if self.num_ctas < 1:
            raise WorkloadError(f"num_ctas must be >= 1, got {self.num_ctas}")
        if self.threads_per_cta < 32:
            raise WorkloadError(
                f"threads_per_cta must be >= 32, got {self.threads_per_cta}"
            )

    @property
    def warps_per_cta(self) -> int:
        return self.threads_per_cta // 32


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark of the paper's suite.

    ``footprint_mb`` and ``insns_m`` are the paper-reported numbers
    (Table II); ``scaling`` is the paper's strong-scaling classification
    that the simulator must reproduce; ``family`` selects the trace
    generator in :mod:`repro.workloads.generators` and ``params`` holds
    its family-specific knobs.
    """

    abbr: str
    name: str
    suite: str
    footprint_mb: float
    insns_m: float
    kernels: Tuple[KernelShape, ...]
    scaling: ScalingBehavior
    family: str
    params: Mapping[str, float] = field(default_factory=dict)
    weak_scalable: bool = False
    weak_scaling: Optional[ScalingBehavior] = None
    mcm: bool = False

    def __post_init__(self) -> None:
        if self.footprint_mb <= 0:
            raise WorkloadError(f"{self.abbr}: footprint must be positive")
        if not self.kernels:
            raise WorkloadError(f"{self.abbr}: at least one kernel required")
        if self.weak_scalable and self.weak_scaling is None:
            raise WorkloadError(
                f"{self.abbr}: weak_scalable benchmarks need a weak_scaling class"
            )
        if self.mcm and not self.weak_scalable:
            raise WorkloadError(f"{self.abbr}: MCM experiments use weak scaling")

    @property
    def num_ctas(self) -> int:
        return sum(k.num_ctas for k in self.kernels)

    def param(self, key: str, default: float) -> float:
        return self.params.get(key, default)

"""Nvidia CUDA SDK code samples [3] — benchmark miniatures.

Each entry documents the real kernel it stands in for and why the
miniature is shaped the way it is; calibration rules live in
:mod:`repro.workloads.catalog`.  ``STRONG`` holds the Table II
(strong-scaling) spec; ``WEAK`` holds the Table IV base input where the
benchmark is weak-scalable.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior

LINEAR = ScalingBehavior.LINEAR
SUB = ScalingBehavior.SUB_LINEAR
SUPER = ScalingBehavior.SUPER_LINEAR


def _k(num_ctas: int, threads: int = 256) -> KernelShape:
    return KernelShape(num_ctas=num_ctas, threads_per_cta=threads)


# 8x8-block discrete cosine transform over an image plane.  The
# transform repeatedly re-reads its 33 MB plane (coefficient blocks are
# revisited by neighbouring thread blocks), so the whole footprint is a
# reusable hot set: the LRU cliff appears exactly when the LLC reaches
# 34 MB — the paper's flagship super-linear benchmark (Figs. 1/2 left).
DCT = BenchmarkSpec(
    abbr="dct", name="Discrete Cosine Transform", suite="CUDA SDK",
    footprint_mb=33.0, insns_m=10270,
    kernels=(_k(2304), _k(6144), _k(512)),
    scaling=SUPER, family="sweep",
    params={"hot_mb": 33.0, "cpa": 14.0, "apw": 4},
)

# Fast Walsh-Hadamard transform: log-depth butterfly passes over a
# 67 MB vector.  Successive passes re-read the vector, and only a ~24 MB
# slice of it stays hot at a time; modelled as a hot sweep sized to fit
# the 34 MB target LLC only.
FWT = BenchmarkSpec(
    abbr="fwt", name="Fast Walsh Transform", suite="CUDA SDK",
    footprint_mb=67.1, insns_m=4163,
    kernels=(_k(6144, 128), _k(2048), _k(128, 1024)),
    scaling=SUPER, family="sweep",
    params={"hot_mb": 24.0, "cpa": 14.0, "apw": 6},
)

# CUDA SDK vector add, invoked repeatedly over the same operand
# vectors (the benchmark loops for timing): cross-invocation reuse of
# ~20 MB of the 50.3 MB footprint forms the hot set.  Weak scaling grows
# numElements (paper artifact).
VA = BenchmarkSpec(
    abbr="va", name="Vector Add", suite="CUDA SDK",
    footprint_mb=50.3, insns_m=92,
    kernels=(_k(4096),),
    scaling=SUPER, family="sweep",
    params={"hot_mb": 20.0, "cpa": 13.0, "apw": 6},
    weak_scalable=True, weak_scaling=LINEAR, mcm=True,
)

# Weak-scaling base input (Table IV row, sized for 8 SMs).
VA_WEAK = BenchmarkSpec(
    abbr="va", name="Vector Add", suite="CUDA SDK",
    footprint_mb=3.1, insns_m=5.8,
    kernels=(_k(512, 128),),
    scaling=LINEAR, family="sweep",
    params={"hot_mb": 1.25, "cpa": 13.0, "apw": 9, "l1_reuse": 3},
    weak_scalable=True, weak_scaling=LINEAR, mcm=True,
)

# CUDA SDK asyncAPI: streamed batches re-process a resident buffer;
# the reusable portion (~21.5 MB of 67.1 MB) fits only the target LLC.
# Weak scaling grows n, the element count (paper artifact).
AS = BenchmarkSpec(
    abbr="as", name="Async", suite="CUDA SDK",
    footprint_mb=67.1, insns_m=218,
    kernels=(_k(8192, 128),),
    scaling=SUPER, family="sweep",
    params={"hot_mb": 21.5, "cpa": 12.0, "apw": 6},
    weak_scalable=True, weak_scaling=LINEAR, mcm=True,
)

# Weak-scaling base input (Table IV row, sized for 8 SMs).
AS_WEAK = BenchmarkSpec(
    abbr="as", name="Async", suite="CUDA SDK",
    footprint_mb=4.2, insns_m=13.5,
    kernels=(_k(256),),
    scaling=LINEAR, family="sweep",
    params={"hot_mb": 1.35, "cpa": 12.0, "apw": 9, "l1_reuse": 3},
    weak_scalable=True, weak_scaling=LINEAR, mcm=True,
)

# CUDA SDK gradient benchmark: four kernels of very different grid
# sizes; the 816-CTA kernel underutilizes large machines, contributing
# the small-grid share of its sub-linear trend.
GR = BenchmarkSpec(
    abbr="gr", name="Gradient", suite="CUDA SDK",
    footprint_mb=46.1, insns_m=318,
    kernels=(_k(4096, 128), _k(816, 1024), _k(1536, 128), _k(3072, 128)),
    scaling=SUB, family="hotcold",
    params={
        "cpa": 8.0, "apw": 3, "sigma": 0.25,
        "hot_lines": 20000, "hot_frac": 0.55, "zipf_exp": 0.0,
    },
)

# CUDA SDK alignedTypes: a pure memory-throughput microbenchmark
# copying 100 MB with minimal compute; linear via proportional
# bandwidth scaling.
AT = BenchmarkSpec(
    abbr="at", name="Aligned Types", suite="CUDA SDK",
    footprint_mb=100.0, insns_m=2150,
    kernels=(_k(4096),),
    scaling=LINEAR, family="stream",
    params={"cpa": 4.0, "apw": 6},
)

# CUDA SDK Black-Scholes: streams option batches through heavy
# transcendental math — compute-leaning and linear under strong scaling.
# Under weak scaling (OPT_N grows, paper artifact) batches become
# uneven, and the paper classifies it sub-linear; modelled with
# input-size-dependent imbalance (sigma_growth).
BS = BenchmarkSpec(
    abbr="bs", name="Black Scholes", suite="CUDA SDK",
    footprint_mb=80.1, insns_m=863,
    kernels=(_k(8192, 128),),
    scaling=LINEAR, family="stream",
    params={"cpa": 25.0, "apw": 7},
    weak_scalable=True, weak_scaling=SUB, mcm=True,
)

# Weak-scaling base input (Table IV row, sized for 8 SMs).
BS_WEAK = BenchmarkSpec(
    abbr="bs", name="Black Scholes", suite="CUDA SDK",
    footprint_mb=5.0, insns_m=431,
    kernels=(_k(512, 128),),
    scaling=SUB, family="irregular",
    params={"cpa": 25.0, "apw": 9, "sigma": 0.4, "sigma_growth": 0.05},
    weak_scalable=True, weak_scaling=SUB, mcm=True,
)

STRONG: Dict[str, BenchmarkSpec] = {
    "dct": DCT,
    "fwt": FWT,
    "va": VA,
    "as": AS,
    "gr": GR,
    "at": AT,
    "bs": BS,
}

WEAK: Dict[str, BenchmarkSpec] = {
    "va": VA_WEAK,
    "as": AS_WEAK,
    "bs": BS_WEAK,
}

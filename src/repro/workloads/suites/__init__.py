"""Per-suite benchmark definitions (Rodinia, CUDA SDK, PolyBench,
Parboil, MLPerf).  :mod:`repro.workloads.catalog` aggregates them into the
Table II / Table IV catalogs."""

from repro.workloads.suites import cuda_sdk, mlperf, parboil, polybench, rodinia

__all__ = ["rodinia", "cuda_sdk", "polybench", "parboil", "mlperf"]

"""MLPerf Inference workloads [2, 51] (Sieve-sampled [47]) — benchmark miniatures.

Each entry documents the real kernel it stands in for and why the
miniature is shaped the way it is; calibration rules live in
:mod:`repro.workloads.catalog`.  ``STRONG`` holds the Table II
(strong-scaling) spec; ``WEAK`` holds the Table IV base input where the
benchmark is weak-scalable.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior

LINEAR = ScalingBehavior.LINEAR
SUB = ScalingBehavior.SUB_LINEAR
SUPER = ScalingBehavior.SUPER_LINEAR


def _k(num_ctas: int, threads: int = 256) -> KernelShape:
    return KernelShape(num_ctas=num_ctas, threads_per_cta=threads)


# MLPerf 3D-UNet inference (Sieve-sampled kernels): a mix of wide
# convolution grids and small up/down-sampling kernels.  The small grids
# cannot fill 128 SMs — the Amdahl-style tail that makes unet the most
# sub-linear benchmark of the suite.
UNET = BenchmarkSpec(
    abbr="unet", name="3D-Unet", suite="MLPerf",
    footprint_mb=615.0, insns_m=20071,
    kernels=(_k(768), _k(4096), _k(1536), _k(2048), _k(768)),
    scaling=SUB, family="hotcold",
    params={
        "cpa": 7.0, "apw": 3, "sigma": 0.3,
        "hot_lines": 24576, "hot_frac": 0.75, "zipf_exp": 0.0,
    },
)

# MLPerf ResNet-50 inference (Sieve-sampled): large streaming
# convolution working sets (1.4 GB footprint) that never fit on chip —
# bandwidth-bound and linear.
RES50 = BenchmarkSpec(
    abbr="res50", name="Resnet50", suite="MLPerf",
    footprint_mb=1388.1, insns_m=85067,
    kernels=(_k(8192),),
    scaling=LINEAR, family="stream",
    params={"cpa": 8.0, "apw": 5},
)

# MLPerf SSD-ResNet34 inference (Sieve-sampled): like res50, a
# streaming conv pipeline with an 845.8 MB footprint; linear.
RES34 = BenchmarkSpec(
    abbr="res34", name="SSD-Resnet34", suite="MLPerf",
    footprint_mb=845.8, insns_m=47369,
    kernels=(_k(8192),),
    scaling=LINEAR, family="stream",
    params={"cpa": 9.0, "apw": 5},
)

STRONG: Dict[str, BenchmarkSpec] = {
    "unet": UNET,
    "res50": RES50,
    "res34": RES34,
}

WEAK: Dict[str, BenchmarkSpec] = {

}

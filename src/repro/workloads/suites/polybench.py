"""PolyBench/GPU kernels [27] — benchmark miniatures.

Each entry documents the real kernel it stands in for and why the
miniature is shaped the way it is; calibration rules live in
:mod:`repro.workloads.catalog`.  ``STRONG`` holds the Table II
(strong-scaling) spec; ``WEAK`` holds the Table IV base input where the
benchmark is weak-scalable.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior

LINEAR = ScalingBehavior.LINEAR
SUB = ScalingBehavior.SUB_LINEAR
SUPER = ScalingBehavior.SUPER_LINEAR


def _k(num_ctas: int, threads: int = 256) -> KernelShape:
    return KernelShape(num_ctas=num_ctas, threads_per_cta=threads)


# Polybench LU decomposition: repeated row/column updates over a
# 16.8 MB matrix.  The matrix fits the 17 MB LLC of the 64-SM system, so
# the cliff sits one doubling earlier than dct's — this benchmark
# exercises the predictor's post-cliff chain (Eq. 4) at 128 SMs.
LU = BenchmarkSpec(
    abbr="lu", name="LU Decomposition", suite="Polybench",
    footprint_mb=16.8, insns_m=146,
    kernels=(_k(8192, 128),),
    scaling=SUPER, family="sweep",
    params={"hot_mb": 16.5, "cpa": 14.0, "apw": 6},
)

# Polybench GEMM (C = alpha*A*B + beta*C): register/L1-tiled inner
# loops give high arithmetic intensity; the first tile pass reaches the
# memory system and the re-reads are folded into the compute bursts
# (see generators._tiled_kernel).  Compute-bound, linear.
GEMM = BenchmarkSpec(
    abbr="gemm", name="Matrix Multiply", suite="Polybench",
    footprint_mb=12.6, insns_m=7030,
    kernels=(_k(8192, 128),),
    scaling=LINEAR, family="tiled",
    params={"cpa": 30.0, "apw": 5, "reps": 3},
)

# Polybench 2MM: two chained GEMMs — the same tiled, compute-bound
# behaviour over a 21 MB footprint across two kernel launches.
TWO_MM = BenchmarkSpec(
    abbr="2mm", name="2 Matrix Multiplications", suite="Polybench",
    footprint_mb=21.0, insns_m=12921,
    kernels=(_k(4096, 128), _k(4096, 128)),
    scaling=LINEAR, family="tiled",
    params={"cpa": 30.0, "apw": 5, "reps": 3},
)

STRONG: Dict[str, BenchmarkSpec] = {
    "lu": LU,
    "gemm": GEMM,
    "2mm": TWO_MM,
}

WEAK: Dict[str, BenchmarkSpec] = {

}

"""Rodinia heterogeneous-computing suite [17] — benchmark miniatures.

Each entry documents the real kernel it stands in for and why the
miniature is shaped the way it is; calibration rules live in
:mod:`repro.workloads.catalog`.  ``STRONG`` holds the Table II
(strong-scaling) spec; ``WEAK`` holds the Table IV base input where the
benchmark is weak-scalable.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior

LINEAR = ScalingBehavior.LINEAR
SUB = ScalingBehavior.SUB_LINEAR
SUPER = ScalingBehavior.SUPER_LINEAR


def _k(num_ctas: int, threads: int = 256) -> KernelShape:
    return KernelShape(num_ctas=num_ctas, threads_per_cta=threads)


# Rodinia back-propagation: forward/backward passes over a fixed
# network whose 18.8 MB of weights and activations are re-read every
# pass — hot sweep with the published footprint, cliff at the 128-SM
# LLC.  Weak scaling grows the input layer (paper artifact: the element
# count parameter), scaling the hot set with the machine.
BP = BenchmarkSpec(
    abbr="bp", name="Back Propagation", suite="Rodinia",
    footprint_mb=18.8, insns_m=424,
    kernels=(_k(8192, 128),),
    scaling=SUPER, family="sweep",
    params={"hot_mb": 18.8, "cpa": 15.0, "apw": 6},
    weak_scalable=True, weak_scaling=LINEAR, mcm=True,
)

# Weak-scaling base input (Table IV row, sized for 8 SMs).
BP_WEAK = BenchmarkSpec(
    abbr="bp", name="Back Propagation", suite="Rodinia",
    footprint_mb=2.5, insns_m=212,
    kernels=(_k(256, 128),),
    scaling=LINEAR, family="sweep",
    params={"hot_mb": 1.2, "cpa": 15.0, "apw": 9, "l1_reuse": 3},
    weak_scalable=True, weak_scaling=LINEAR, mcm=True,
)

# Rodinia breadth-first search on a 1M-node graph: node data
# (20.4 MB) is revisited across frontier levels while edge lists stream
# with no reuse (the MPKI floor of Fig. 2 middle).  The published
# 1,024-CTA grid provides only ~2.7 waves at 128 SMs, and frontier sizes
# vary (lognormal CTA work): the workload-architecture-imbalance
# mechanism of Section IV-3.  Weak scaling grows the graph
# (graphgen.cpp in the artifact) with imbalance deepening in larger
# graphs (sigma_growth).
BFS = BenchmarkSpec(
    abbr="bfs", name="Breadth-First Search", suite="Rodinia",
    footprint_mb=20.4, insns_m=257,
    kernels=(_k(1024, 1024),),
    scaling=SUB, family="hotcold",
    params={
        "cpa": 6.0, "apw": 16, "sigma": 0.5,
        # Node data (20.4 MB at paper scale) is reusable; edge-list
        # traffic streams with no reuse, keeping an MPKI floor so the
        # miss-rate curve decays gradually (no cliff), as in Fig. 2.
        "hot_lines": 20890, "hot_frac": 0.70, "zipf_exp": 0.0,
    },
    weak_scalable=True, weak_scaling=SUB, mcm=True,
)

# Weak-scaling base input (Table IV row, sized for 8 SMs).
BFS_WEAK = BenchmarkSpec(
    abbr="bfs", name="Breadth-First Search", suite="Rodinia",
    footprint_mb=2.55, insns_m=30,
    kernels=(_k(128, 512),),
    scaling=SUB, family="hotcold",
    params={
        "cpa": 6.0, "apw": 8, "sigma": 0.45, "sigma_growth": 0.12,
        "hot_lines": 2612, "hot_scaled": 1.0, "hot_frac": 0.70,
        "zipf_exp": 0.0,
    },
    weak_scalable=True, weak_scaling=SUB, mcm=True,
)

# Rodinia SRAD v2 (speckle-reducing anisotropic diffusion): two
# alternating kernels re-read an 18 MB image with imbalanced border
# CTAs; moderately sub-linear through CTA-work variance.
SR = BenchmarkSpec(
    abbr="sr", name="Sradv2", suite="Rodinia",
    footprint_mb=25.2, insns_m=661,
    kernels=(_k(2048, 512), _k(2048, 512)),
    scaling=SUB, family="hotcold",
    params={
        "cpa": 8.0, "apw": 4, "sigma": 0.35,
        "hot_lines": 18000, "hot_frac": 0.6, "zipf_exp": 0.0,
    },
)

# Rodinia B+tree queries: root-to-leaf pointer chases over a
# 17.4 MB tree.  Top levels are shared and hot (LLC-slice camping, the
# paper's second sub-linear mechanism); leaves are cold.  Weak scaling
# grows the tree and the query batch (j/k parameters in the artifact's
# command.txt), which spreads the hot levels and restores linearity.
BTREE = BenchmarkSpec(
    abbr="btree", name="B+trees", suite="Rodinia",
    footprint_mb=17.4, insns_m=670,
    kernels=(_k(2048, 128), _k(3072, 128)),
    scaling=SUB, family="chase",
    params={"cpa": 8.0, "apw": 9, "levels": 3, "sigma": 0.15},
    weak_scalable=True, weak_scaling=LINEAR,
)

# Weak-scaling base input (Table IV row, sized for 8 SMs).
BTREE_WEAK = BenchmarkSpec(
    abbr="btree", name="B+trees", suite="Rodinia",
    footprint_mb=4.3, insns_m=167,
    kernels=(_k(512, 128),),
    scaling=LINEAR, family="chase",
    params={"cpa": 8.0, "apw": 8, "levels": 4, "sigma": 0.25},
    weak_scalable=True, weak_scaling=LINEAR,
)

# Rodinia path finder: dynamic-programming sweep touching a 404 MB
# grid with effectively random reuse — far beyond any LLC, so the
# miss-rate curve is flat (Fig. 2 right) and performance scales linearly
# with the proportionally provisioned bandwidth.
PF = BenchmarkSpec(
    abbr="pf", name="Path Finder", suite="Rodinia",
    footprint_mb=404.1, insns_m=4037,
    kernels=(_k(8192),),
    scaling=LINEAR, family="stream",
    params={"cpa": 5.0, "apw": 3, "random": 1.0},
)

# Rodinia HotSpot thermal simulation: each cell is read and written
# once per invocation — the paper calls out its near-zero data reuse
# (footprint 12.5 MB fits the big LLCs, yet no super-linear behaviour
# follows).  Modelled as a no-reuse stream with heavy per-cell compute.
HT = BenchmarkSpec(
    abbr="ht", name="HotSpot", suite="Rodinia",
    footprint_mb=12.5, insns_m=421,
    kernels=(_k(7396, 128),),
    scaling=LINEAR, family="stream",
    params={"cpa": 20.0, "apw": 6, "no_reuse": 1.0},
)

STRONG: Dict[str, BenchmarkSpec] = {
    "bp": BP,
    "bfs": BFS,
    "sr": SR,
    "btree": BTREE,
    "pf": PF,
    "ht": HT,
}

WEAK: Dict[str, BenchmarkSpec] = {
    "bp": BP_WEAK,
    "bfs": BFS_WEAK,
    "btree": BTREE_WEAK,
}

"""Parboil throughput-computing suite [55] — benchmark miniatures.

Each entry documents the real kernel it stands in for and why the
miniature is shaped the way it is; calibration rules live in
:mod:`repro.workloads.catalog`.  ``STRONG`` holds the Table II
(strong-scaling) spec; ``WEAK`` holds the Table IV base input where the
benchmark is weak-scalable.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior

LINEAR = ScalingBehavior.LINEAR
SUB = ScalingBehavior.SUB_LINEAR
SUPER = ScalingBehavior.SUPER_LINEAR


def _k(num_ctas: int, threads: int = 256) -> KernelShape:
    return KernelShape(num_ctas=num_ctas, threads_per_cta=threads)


# Parboil 3D stencil: the sweep re-reads a ~12 MB set of active
# planes while streaming through the rest of its 131.9 MB grid; the hot
# planes fit at 64 SMs, making st the second post-cliff benchmark.
ST = BenchmarkSpec(
    abbr="st", name="Stencil", suite="Parboil",
    footprint_mb=131.9, insns_m=557,
    kernels=(_k(4192),),
    scaling=SUPER, family="sweep",
    params={"hot_mb": 12.0, "cpa": 14.0, "apw": 6},
)

# Parboil lattice-Boltzmann: streaming update of a 359 MB lattice,
# bandwidth-bound with proportional scaling; linear.
LBM = BenchmarkSpec(
    abbr="lbm", name="Lattice-Boltzmann Method", suite="Parboil",
    footprint_mb=359.4, insns_m=553,
    kernels=(_k(8192),),
    scaling=LINEAR, family="stream",
    params={"cpa": 5.0, "apw": 5},
)

STRONG: Dict[str, BenchmarkSpec] = {
    "st": ST,
    "lbm": LBM,
}

WEAK: Dict[str, BenchmarkSpec] = {

}

"""Benchmark suite: synthetic miniatures of the paper's workloads.

Table II of the paper lists 21 strong-scaling benchmarks drawn from
Rodinia, Polybench, Parboil, the CUDA SDK and MLPerf; Table IV lists the
six weak-scalable ones.  This package rebuilds each as a *synthetic
miniature*: a deterministic trace generator matching the published CTA
counts, memory footprint and — the property the whole paper revolves
around — the workload's scaling behaviour and its miss-rate-curve shape.

The scaling behaviours arise from first-principles mechanisms, not from
hard-coded IPC curves:

* **super-linear** — repeated sweeps over a hot working set sized like the
  published footprint; the LLC miss-rate cliff appears exactly where the
  working set starts fitting (Section IV-2 of the paper);
* **sub-linear** — CTA-count tails and load imbalance (too few CTAs per SM
  at large sizes), small-grid kernels, and hot shared data camping in
  front of LLC slices (Section IV-3);
* **linear** — balanced grids that are either compute-bound or bound by
  shared resources that scale proportionally with system size
  (Section IV-1).
"""

from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior
from repro.workloads.catalog import (
    MCM_WEAK_BENCHMARKS,
    STRONG_SCALING,
    WEAK_SCALING,
    get_benchmark,
    strong_scaling_names,
    weak_scaling_names,
)
from repro.workloads.generators import build_trace

__all__ = [
    "BenchmarkSpec",
    "KernelShape",
    "ScalingBehavior",
    "STRONG_SCALING",
    "WEAK_SCALING",
    "MCM_WEAK_BENCHMARKS",
    "get_benchmark",
    "strong_scaling_names",
    "weak_scaling_names",
    "build_trace",
]

"""Render a zoo campaign artifact in the :mod:`repro.analysis` style.

One string, ready for a terminal or a CI log: a summary header, the
per-measured-regime accuracy table, the intended-versus-measured
confusion matrix, the worst-predicted workloads, and an ASCII plot of
the sorted absolute-percentage-error distribution.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.analysis.ascii_plot import plot_series
from repro.analysis.tables import render_table
from repro.exceptions import ReproError
from repro.zoo.campaign import validate_campaign_artifact
from repro.zoo.sample import REGIMES

__all__ = ["render_campaign"]

#: Workloads listed in the worst-offender table.
_WORST = 5


def render_campaign(artifact: Mapping) -> str:
    """Render a campaign artifact; raises on an invalid document."""
    problems = validate_campaign_artifact(dict(artifact))
    if problems:
        raise ReproError(
            "cannot render an invalid zoo artifact: " + "; ".join(problems[:3])
        )
    accuracy = artifact["accuracy"]
    campaign = artifact["campaign"]
    plan = artifact["plan"]
    parts: List[str] = []

    parts.append(
        f"zoo campaign — seed {plan['seed']}, "
        f"{campaign['workloads']} generated workloads "
        f"({campaign.get('failed', 0)} failed), sizes "
        f"{plan['scales']} -> {plan['target']}"
    )
    parts.append(
        f"overall MAPE {accuracy['mape_pct']:.2f}% "
        f"(max {accuracy['max_ape_pct']:.2f}%), regime match "
        f"{100.0 * accuracy['regime_match_rate']:.0f}% "
        f"over {accuracy['count']} workloads, "
        f"{campaign['wall_s']:.1f}s wall"
    )

    parts.append(render_table(
        ["measured regime", "MAPE %", "max APE %", "n"],
        [
            [
                regime,
                f"{block['mape_pct']:.2f}",
                f"{block['max_ape_pct']:.2f}",
                block["count"],
            ]
            for regime, block in artifact["regimes"].items()
        ],
        title="Prediction accuracy by measured regime",
    ))

    confusion = artifact["confusion"]
    parts.append(render_table(
        ["intended \\ measured", *REGIMES],
        [
            [intended, *(confusion[intended][m] for m in REGIMES)]
            for intended in REGIMES
        ],
        title="Regime confusion (rows: intended, columns: measured)",
    ))

    records = sorted(
        artifact["workloads"], key=lambda r: r["ape_pct"], reverse=True
    )
    parts.append(render_table(
        ["workload", "intent", "measured", "APE %", "families"],
        [
            [
                record["abbr"],
                record["intent"],
                record["measured"],
                f"{record['ape_pct']:.2f}",
                ",".join(record.get("families", [])),
            ]
            for record in records[:_WORST]
        ],
        title=f"Worst-predicted workloads (top {min(_WORST, len(records))})",
    ))

    apes = sorted(record["ape_pct"] for record in artifact["workloads"])
    if len(apes) >= 2:
        parts.append(plot_series(
            list(range(1, len(apes) + 1)),
            {"ape_pct": apes},
            title="APE distribution (workloads sorted by error)",
            x_label="workload rank",
        ))
    return "\n\n".join(parts) + "\n"

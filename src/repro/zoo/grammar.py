"""Composable access-pattern grammar for generated workloads.

A grammar *expression* is a small tree of primitives and combinators
that flattens into an ordered list of :class:`PhaseSpec` phases; each
phase names one of the existing :mod:`repro.workloads.generators`
families plus its parameters, and :func:`realize` lowers the whole
expression into a :class:`GeneratedSpec` — a
:class:`~repro.workloads.spec.BenchmarkSpec` subclass whose kernels run
back to back, one per phase, under the composite ``generated`` family.

Primitives (:class:`Prim`)
--------------------------
``sweep``
    Repeated passes over a shared hot working set (optionally mixed with
    a bypassing cold stream) — the miss-rate-cliff mechanism.
``frontier``
    Power-law (Zipf) references over a footprint with lognormal per-CTA
    work — graph frontiers with heavy-tailed degree, the imbalance
    mechanism for sub-linear scaling.
``stream``
    Private streaming through a footprint much larger than any cache —
    the linear, memory-intensive regime.
``tile``
    Small per-warp tiles reused many times with high compute intensity —
    the linear, compute-intensive regime.
``chase``
    Root-to-leaf walks over a shared tree; the hot top levels camp on
    few LLC slices.
``hotspot``
    A tiny, heavily contended shared region (atomics / reduction
    hot-spot proxy) mixed with cold one-shot traffic.

Combinators
-----------
:class:`Seq`
    Phased mixes: children's phases run back to back as separate
    kernels.
:class:`Repeat`
    ``times`` copies of a sub-expression's phases.
:class:`Ramp`
    Working-set ramps: ``steps`` copies with footprints multiplied by
    ``growth`` each step.
:class:`Burst`
    Bursty arrivals: shrinks the warp launch stagger (``lead_in``) so
    warps issue memory in near-lockstep request bursts.

Every expression serializes to/from canonical JSON
(:meth:`Expr.to_json` / :func:`expr_from_json`), and a realized spec is
deterministic in ``(grammar_expr, seed)``: the spec digest — and hence
the cache keys of every run made from it — is a content hash of the
canonical payload.  Degenerate parameters (zero-length phases, empty
footprints, non-positive Zipf exponents, CTA counts over the generator
clamp) raise :class:`~repro.exceptions.WorkloadError` naming the field
at *construction* time, not three layers deep in trace generation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.exceptions import WorkloadError
from repro.verify.digest import canonical_json
from repro.workloads.generators import MAX_CTAS
from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior

__all__ = [
    "Burst",
    "Expr",
    "GeneratedSpec",
    "PhaseSpec",
    "Prim",
    "Ramp",
    "Repeat",
    "Seq",
    "expr_from_json",
    "realize",
    "spec_from_payload",
]

#: Default warp launch stagger, matching the generators' default
#: (``max(900, 2 * cpa * apw)`` at their default cpa/apw); :class:`Burst`
#: scales it down toward lockstep.
_BASE_LEAD_IN = 900

#: Footprint-carrying parameter keys, scaled by :class:`Ramp`.
_FOOTPRINT_KEYS = ("fp_mb", "hot_mb")

#: Per-primitive parameter schema: ``name -> (default, validator)``.
#: A validator returns an error string (naming the expectation) or None.


def _positive(value: float) -> str:
    return "" if value > 0 else f"must be positive, got {value}"


def _non_negative(value: float) -> str:
    return "" if value >= 0 else f"must be >= 0, got {value}"


def _fraction(value: float) -> str:
    return "" if 0.0 <= value <= 1.0 else f"must be in [0, 1], got {value}"


def _at_least(minimum: float):
    def check(value: float) -> str:
        return "" if value >= minimum else f"must be >= {minimum}, got {value}"

    return check


_PRIMITIVES: Dict[str, Dict[str, tuple]] = {
    "sweep": {
        "hot_mb": (4.0, _positive),
        "cold_frac": (0.0, _fraction),
        "fp_mb": (0.0, _non_negative),  # 0 = derive as 4x hot_mb
        "l1_reuse": (2, _at_least(1)),
        "cpa": (10.0, _non_negative),
        "apw": (6, _at_least(2)),
    },
    "frontier": {
        "fp_mb": (12.0, _positive),
        "zipf_alpha": (0.9, _positive),
        "sigma": (0.5, _non_negative),
        "sigma_growth": (0.0, _non_negative),
        "cpa": (8.0, _non_negative),
        "apw": (9, _at_least(2)),
    },
    "stream": {
        "fp_mb": (64.0, _positive),
        "random": (0.0, _fraction),
        "cpa": (20.0, _non_negative),
        "apw": (7, _at_least(2)),
    },
    "tile": {
        "fp_mb": (32.0, _positive),
        "reps": (3, _at_least(1)),
        "cpa": (18.0, _non_negative),
        "apw": (16, _at_least(2)),
    },
    "chase": {
        "fp_mb": (16.0, _positive),
        "levels": (3, _at_least(2)),
        "sigma": (0.2, _non_negative),
        "cpa": (8.0, _non_negative),
        "apw": (9, _at_least(3)),
    },
    "hotspot": {
        "hot_lines": (256, _at_least(1)),
        "hot_frac": (0.35, _fraction),
        "zipf_alpha": (1.1, _positive),
        "fp_mb": (8.0, _positive),  # the cold side of the hot/cold mix
        "cpa": (6.0, _non_negative),
        "apw": (9, _at_least(2)),
    },
}

#: Grammar parameter -> generator-family parameter translation.  Keys
#: not listed pass through unchanged.
_PARAM_RENAMES = {"zipf_alpha": "zipf_exp"}

#: Primitive kind -> generator family.
_PRIM_FAMILIES = {
    "sweep": "sweep",
    "frontier": "irregular",
    "stream": "stream",
    "tile": "tiled",
    "chase": "chase",
    "hotspot": "hotcold",
}


@dataclass(frozen=True)
class PhaseSpec:
    """One flattened phase: a generator family plus its parameters.

    ``params`` holds *generator-facing* keys (already renamed, e.g.
    ``zipf_exp``) so :mod:`repro.workloads.generators` can consume them
    verbatim.
    """

    family: str
    params: Mapping[str, float] = field(default_factory=dict)

    def payload(self) -> dict:
        return {"family": self.family, "params": dict(sorted(self.params.items()))}


# --------------------------------------------------------------------------
# Expression nodes
# --------------------------------------------------------------------------

class Expr:
    """Base class for grammar expressions."""

    def phases(self) -> Tuple[PhaseSpec, ...]:
        raise NotImplementedError

    def to_json(self) -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class Prim(Expr):
    """A single-phase primitive; see module docstring for kinds."""

    kind: str
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        schema = _PRIMITIVES.get(self.kind)
        if schema is None:
            raise WorkloadError(
                f"grammar: unknown primitive {self.kind!r}; "
                f"expected one of {sorted(_PRIMITIVES)}"
            )
        for name, value in self.params.items():
            if name not in schema:
                raise WorkloadError(
                    f"{self.kind}.{name}: unknown parameter; "
                    f"expected one of {sorted(schema)}"
                )
            problem = schema[name][1](value)
            if problem:
                raise WorkloadError(f"{self.kind}.{name}: {problem}")

    def resolved(self) -> Dict[str, float]:
        """Parameters with defaults filled in, grammar-facing keys."""
        schema = _PRIMITIVES[self.kind]
        return {
            name: self.params.get(name, default)
            for name, (default, __) in schema.items()
        }

    def phases(self) -> Tuple[PhaseSpec, ...]:
        resolved = self.resolved()
        if self.kind == "sweep" and resolved["fp_mb"] <= 0.0:
            # The cold stream (when cold_frac > 0) walks the footprint
            # beyond the hot set; give it room by default.
            resolved["fp_mb"] = 4.0 * resolved["hot_mb"]
        params = {
            _PARAM_RENAMES.get(name, name): float(value)
            for name, value in resolved.items()
        }
        return (PhaseSpec(family=_PRIM_FAMILIES[self.kind], params=params),)

    def to_json(self) -> dict:
        return {"op": "prim", "kind": self.kind,
                "params": dict(sorted(self.params.items()))}


@dataclass(frozen=True)
class Seq(Expr):
    """Phased mix: children's phases back to back."""

    children: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise WorkloadError("seq.children: must not be empty")

    def phases(self) -> Tuple[PhaseSpec, ...]:
        out: Tuple[PhaseSpec, ...] = ()
        for child in self.children:
            out += child.phases()
        return out

    def to_json(self) -> dict:
        return {"op": "seq", "children": [c.to_json() for c in self.children]}


@dataclass(frozen=True)
class Repeat(Expr):
    """``times`` copies of the child's phases."""

    child: Expr
    times: int

    def __post_init__(self) -> None:
        if self.times < 1:
            raise WorkloadError(
                f"repeat.times: must be >= 1, got {self.times}"
            )

    def phases(self) -> Tuple[PhaseSpec, ...]:
        return self.child.phases() * self.times

    def to_json(self) -> dict:
        return {"op": "repeat", "times": self.times,
                "child": self.child.to_json()}


@dataclass(frozen=True)
class Ramp(Expr):
    """Working-set ramp: footprints grow by ``growth`` each step."""

    child: Expr
    steps: int
    growth: float

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise WorkloadError(f"ramp.steps: must be >= 1, got {self.steps}")
        if self.growth <= 0:
            raise WorkloadError(
                f"ramp.growth: must be positive, got {self.growth}"
            )

    def phases(self) -> Tuple[PhaseSpec, ...]:
        out = []
        base = self.child.phases()
        for step in range(self.steps):
            factor = self.growth ** step
            for phase in base:
                params = dict(phase.params)
                for key in _FOOTPRINT_KEYS:
                    if key in params:
                        params[key] = params[key] * factor
                out.append(PhaseSpec(family=phase.family, params=params))
        return tuple(out)

    def to_json(self) -> dict:
        return {"op": "ramp", "steps": self.steps, "growth": self.growth,
                "child": self.child.to_json()}


@dataclass(frozen=True)
class Burst(Expr):
    """Bursty arrivals: intensity 0 keeps the default stagger, 1 is
    full lockstep (every warp issues its first access together)."""

    child: Expr
    intensity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise WorkloadError(
                f"burst.intensity: must be in [0, 1], got {self.intensity}"
            )

    def phases(self) -> Tuple[PhaseSpec, ...]:
        out = []
        for phase in self.child.phases():
            params = dict(phase.params)
            lead = params.get("lead_in", float(_BASE_LEAD_IN))
            params["lead_in"] = round(lead * (1.0 - self.intensity))
            out.append(PhaseSpec(family=phase.family, params=params))
        return tuple(out)

    def to_json(self) -> dict:
        return {"op": "burst", "intensity": self.intensity,
                "child": self.child.to_json()}


def expr_from_json(document: object) -> Expr:
    """Rebuild an expression from its :meth:`Expr.to_json` form."""
    if not isinstance(document, dict):
        raise WorkloadError(
            f"grammar: expected an object, got {type(document).__name__}"
        )
    op = document.get("op")
    if op == "prim":
        return Prim(document.get("kind", ""), dict(document.get("params", {})))
    if op == "seq":
        children = document.get("children")
        if not isinstance(children, list):
            raise WorkloadError("seq.children: expected a list")
        return Seq(tuple(expr_from_json(c) for c in children))
    if op == "repeat":
        return Repeat(expr_from_json(document.get("child")),
                      int(document.get("times", 0)))
    if op == "ramp":
        return Ramp(expr_from_json(document.get("child")),
                    int(document.get("steps", 0)),
                    float(document.get("growth", 0.0)))
    if op == "burst":
        return Burst(expr_from_json(document.get("child")),
                     float(document.get("intensity", -1.0)))
    raise WorkloadError(f"grammar: unknown op {op!r}")


# --------------------------------------------------------------------------
# Realization: expression -> GeneratedSpec
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratedSpec(BenchmarkSpec):
    """A grammar-generated workload, runnable anywhere a
    :class:`~repro.workloads.spec.BenchmarkSpec` is (cached runner,
    parallel prefetch, MRC collection, bench matrix).

    One kernel per phase; the ``generated`` family in
    :mod:`repro.workloads.generators` dispatches each kernel to its
    phase's underlying family.  ``abbr`` embeds the content digest of
    the realization payload, so two specs with different grammar
    expressions can never collide in the simulation cache.
    """

    phases: Tuple[PhaseSpec, ...] = ()
    grammar: str = ""  # canonical JSON of the source expression
    gen_seed: int = 0
    intent: str = ""   # intended scaling regime (self-declared)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.phases:
            raise WorkloadError(f"{self.abbr}: generated spec has no phases")
        if len(self.phases) != len(self.kernels):
            raise WorkloadError(
                f"{self.abbr}: {len(self.phases)} phases but "
                f"{len(self.kernels)} kernels (need one kernel per phase)"
            )

    @property
    def digest(self) -> str:
        """The content digest embedded in ``abbr``."""
        return self.abbr[1:]

    def payload(self) -> dict:
        """JSON form; :func:`spec_from_payload` round-trips it."""
        return {
            "grammar": json.loads(self.grammar),
            "seed": self.gen_seed,
            "intent": self.intent,
            "ctas_per_phase": [k.num_ctas for k in self.kernels],
            "threads_per_cta": self.kernels[0].threads_per_cta,
        }


def realize(
    expr: Expr,
    seed: int,
    intent: str,
    ctas_per_phase: int = 768,
    threads_per_cta: int = 128,
) -> GeneratedSpec:
    """Lower a grammar expression into a runnable :class:`GeneratedSpec`.

    The result is a pure function of every argument; its ``abbr`` is
    ``z<digest>`` over the canonical payload, so equal inputs yield
    bit-equal specs and distinct inputs yield distinct cache keys.
    ``intent`` is the regime the workload was *designed* to exhibit —
    the campaign driver compares it against the measured one.
    """
    try:
        behaviour = ScalingBehavior(intent)
    except ValueError:
        raise WorkloadError(
            f"intent: expected one of "
            f"{[b.value for b in ScalingBehavior]}, got {intent!r}"
        ) from None
    if not 1 <= ctas_per_phase <= MAX_CTAS:
        raise WorkloadError(
            f"ctas_per_phase: must be in [1, {MAX_CTAS}], got {ctas_per_phase}"
        )
    if threads_per_cta < 32:
        raise WorkloadError(
            f"threads_per_cta: must be >= 32, got {threads_per_cta}"
        )
    phases = expr.phases()
    if not phases:
        raise WorkloadError("grammar: expression yields zero phases")
    grammar_json = expr.to_json()
    payload = {
        "grammar": grammar_json,
        "seed": seed,
        "intent": intent,
        "ctas_per_phase": [ctas_per_phase] * len(phases),
        "threads_per_cta": threads_per_cta,
    }
    digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:12]
    footprint = max(
        (
            phase.params[key]
            for phase in phases
            for key in _FOOTPRINT_KEYS
            if key in phase.params
        ),
        default=1.0,
    )
    return GeneratedSpec(
        abbr=f"z{digest}",
        name=f"zoo:{intent}:{digest}",
        suite="zoo",
        footprint_mb=float(footprint),
        insns_m=0.0,
        kernels=tuple(
            KernelShape(num_ctas=ctas_per_phase, threads_per_cta=threads_per_cta)
            for __ in phases
        ),
        scaling=behaviour,
        family="generated",
        params={},
        phases=phases,
        grammar=canonical_json(grammar_json),
        gen_seed=seed,
        intent=intent,
    )


def spec_from_payload(payload: Mapping) -> GeneratedSpec:
    """Re-realize a spec from its :meth:`GeneratedSpec.payload` form.

    Raises :class:`~repro.exceptions.WorkloadError` on malformed input;
    a successful round-trip reproduces the original digest bit for bit.
    """
    try:
        expr = expr_from_json(payload["grammar"])
        ctas = payload["ctas_per_phase"]
        return realize(
            expr,
            seed=int(payload["seed"]),
            intent=str(payload["intent"]),
            ctas_per_phase=int(ctas[0]) if ctas else 0,
            threads_per_cta=int(payload["threads_per_cta"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WorkloadError(f"malformed generated-spec payload: {error}") from None

"""The zoo campaign driver: generated workloads through the cached runner.

A campaign draws a stratified batch of generated specs, sweeps every one
across the plan's system sizes through a :class:`~repro.analysis.runner.
CachedRunner` (parallel prefetch, retries, breakers and checkpointing
come for free), then asks two questions per workload:

* what scaling regime did the detailed simulation *measure*
  (:func:`~repro.analysis.classify.classify_scaling` over the IPC/size
  profile), versus the regime the grammar template *intended*; and
* how close did the scale-model prediction land — an IPC profile at the
  small ``scales`` predicting the ``target`` size, scored against the
  detailed simulation at that size.

The answers are distilled into a schema-versioned artifact: per-measured-
regime MAPE, an intended-versus-measured confusion matrix, coverage
stats over regimes and generator families, and enough payload per
workload to re-realize it bit for bit.  Per-spec failures are recorded
as casualties, not fatal — a generated corpus is allowed to contain a
workload the engine rejects, and the artifact says so.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.classify import classify_scaling
from repro.analysis.parallel import RunRequest
from repro.analysis.runner import CachedRunner
from repro.campaign import CampaignBudget, CampaignJournal, run_units
from repro.core import ScaleModelPredictor, ScaleModelProfile
from repro.exceptions import (
    CampaignIncomplete,
    ReproError,
    ShutdownRequested,
    WorkloadError,
)
from repro.zoo.grammar import GeneratedSpec
from repro.zoo.sample import REGIMES, sample_batch

__all__ = [
    "ZOO_ARTIFACT_KIND",
    "ZOO_SCHEMA_VERSION",
    "CampaignPlan",
    "plan_payload",
    "run_campaign",
    "validate_campaign_artifact",
    "zoo_bench_block",
]

ZOO_SCHEMA_VERSION = 1
ZOO_ARTIFACT_KIND = "repro-zoo-campaign"


@dataclass(frozen=True)
class CampaignPlan:
    """What to generate and where to sweep it.

    ``scales`` are the sizes the scale model profiles at; ``target`` is
    the size it predicts (and the detailed engine verifies).  The
    measured regime is classified over the full ``sizes`` profile.
    """

    n: int = 12
    seed: int = 0
    scales: Tuple[int, ...] = (8, 16)
    target: int = 32
    work_scale: float = 1.0
    sample_scale: float = 1.0
    regimes: Tuple[str, ...] = REGIMES

    def __post_init__(self) -> None:
        if self.n < 1:
            raise WorkloadError(f"plan.n: must be >= 1, got {self.n}")
        if len(self.scales) < 2:
            raise WorkloadError(
                f"plan.scales: need >= 2 profile sizes, got {list(self.scales)}"
            )
        if any(s < 1 for s in self.scales) or self.target < 1:
            raise WorkloadError("plan sizes must be positive SM counts")
        if self.target in self.scales:
            raise WorkloadError(
                f"plan.target: {self.target} already in scales "
                f"{list(self.scales)} — nothing to predict"
            )
        if self.work_scale <= 0:
            raise WorkloadError(
                f"plan.work_scale: must be positive, got {self.work_scale}"
            )

    @property
    def sizes(self) -> Tuple[int, ...]:
        """All sizes swept, ascending."""
        return tuple(sorted((*self.scales, self.target)))


def plan_payload(plan: CampaignPlan) -> dict:
    """The plan as JSON — both the artifact ``plan`` block and the
    payload the campaign journal's sealed header binds its digest to."""
    return {
        "n": plan.n,
        "seed": plan.seed,
        "scales": list(plan.scales),
        "target": plan.target,
        "work_scale": plan.work_scale,
        "sample_scale": plan.sample_scale,
        "regimes": list(plan.regimes),
    }


def _requests(
    plan: CampaignPlan, specs: Sequence[GeneratedSpec]
) -> List[RunRequest]:
    requests = [
        RunRequest(
            "sim", spec, size=size, work_scale=plan.work_scale, seed=plan.seed
        )
        for spec in specs
        for size in plan.sizes
    ]
    requests += [
        RunRequest("mrc", spec, work_scale=plan.work_scale, seed=plan.seed)
        for spec in specs
    ]
    return requests


def _measure(
    plan: CampaignPlan, runner: CachedRunner, spec: GeneratedSpec
) -> dict:
    """Sweep, classify and score one generated workload."""
    sims = {
        size: runner.simulate(
            spec, size, work_scale=plan.work_scale, seed=plan.seed
        )
        for size in plan.sizes
    }
    measured = classify_scaling(
        [sims[size].ipc for size in plan.sizes], plan.sizes
    ).value
    profile = ScaleModelProfile(
        workload=spec.abbr,
        sizes=tuple(plan.scales),
        ipcs=tuple(sims[size].ipc for size in plan.scales),
        f_mem=sims[max(plan.scales)].memory_stall_fraction,
        curve=runner.miss_rate_curve(
            spec, work_scale=plan.work_scale, seed=plan.seed
        ),
    )
    predicted = ScaleModelPredictor(profile).predict(plan.target).ipc
    actual = sims[plan.target].ipc
    return {
        "abbr": spec.abbr,
        "digest": spec.digest,
        "intent": spec.intent,
        "measured": measured,
        "families": sorted({phase.family for phase in spec.phases}),
        "phases": len(spec.phases),
        "ipcs": {str(size): sims[size].ipc for size in plan.sizes},
        "predicted_ipc": predicted,
        "actual_ipc": actual,
        "ape_pct": 100.0 * abs(predicted - actual) / actual,
        "payload": spec.payload(),
    }


def _regime_stats(records: Sequence[dict]) -> Dict[str, dict]:
    apes: Dict[str, List[float]] = {}
    for record in records:
        apes.setdefault(record["measured"], []).append(record["ape_pct"])
    return {
        regime: {
            "mape_pct": sum(values) / len(values),
            "max_ape_pct": max(values),
            "count": len(values),
        }
        for regime, values in sorted(apes.items())
    }


def _confusion(records: Sequence[dict]) -> Dict[str, Dict[str, int]]:
    """Intended-versus-measured counts, every regime key present."""
    matrix = {
        intended: {measured: 0 for measured in REGIMES} for intended in REGIMES
    }
    for record in records:
        matrix[record["intent"]][record["measured"]] += 1
    return matrix


def _coverage(
    specs: Sequence[GeneratedSpec], records: Sequence[dict]
) -> dict:
    intended: Dict[str, int] = {regime: 0 for regime in REGIMES}
    measured: Dict[str, int] = {regime: 0 for regime in REGIMES}
    families: Dict[str, int] = {}
    for spec in specs:
        intended[spec.intent] += 1
        for phase in spec.phases:
            families[phase.family] = families.get(phase.family, 0) + 1
    for record in records:
        measured[record["measured"]] += 1
    return {
        "intended": intended,
        "measured": measured,
        "families": dict(sorted(families.items())),
        "multi_phase": sum(1 for spec in specs if len(spec.phases) > 1),
    }


def run_campaign(
    plan: CampaignPlan,
    runner: CachedRunner,
    log: Optional[Callable[[str], None]] = None,
    journal: Optional[CampaignJournal] = None,
    budget: Optional[CampaignBudget] = None,
) -> dict:
    """Execute ``plan`` through ``runner``; return the campaign artifact.

    Per-workload failures are recorded in the artifact's ``failures``
    list and excluded from the accuracy statistics — a generated corpus
    is allowed to contain workloads the engine rejects.

    With a ``journal``, every workload outcome is sealed durably as it
    lands and already-sealed workloads are reused instead of
    re-simulated, so a crashed or budget-stopped campaign resumes where
    it died and converges to the uninterrupted artifact (modulo the
    scrubbed wall-time fields).  A drain (SIGINT/SIGTERM) or ``budget``
    stop yields the same artifact shape plus a ``partial`` block; the
    statistics then cover exactly the completed prefix.

    Raises :class:`~repro.exceptions.CampaignIncomplete` when a stop
    left *zero* usable workloads (nothing to write — resume instead),
    and :class:`~repro.exceptions.ReproError` when a full sweep produced
    only failures.
    """
    say = log or (lambda message: None)
    specs = sample_batch(
        plan.n, plan.seed, regimes=plan.regimes, scale=plan.sample_scale
    )
    by_unit = {spec.digest: spec for spec in specs}
    units = [spec.digest for spec in specs]
    say(
        f"zoo campaign: {len(specs)} generated workloads x sizes "
        f"{list(plan.sizes)} (seed {plan.seed})"
    )
    start = time.perf_counter()
    # Prefetch only what this invocation may actually execute: workloads
    # the journal has not sealed, within the workload cap.
    allowed = units
    if budget is not None and budget.max_workloads is not None:
        allowed = units[: budget.max_workloads]
    sealed = journal.completed if journal is not None else {}
    pending = [by_unit[unit] for unit in allowed if unit not in sealed]
    try:
        runner.prefetch(_requests(plan, pending))
    except ShutdownRequested:
        # Drain arrived mid-prefetch.  Completed runs are already merged
        # into the cache store (the parallel layer guarantees that), and
        # the coordinator stays tripped, so the unit loop below stops at
        # the first unsealed workload and we finalize a partial artifact.
        pass

    def execute(unit: str) -> Tuple[str, dict]:
        spec = by_unit[unit]
        try:
            record = _measure(plan, runner, spec)
        except ReproError as error:
            say(f"  {spec.abbr} [{spec.intent}] FAILED: {error}")
            return "failed", {
                "abbr": spec.abbr,
                "intent": spec.intent,
                "error": str(error),
            }
        say(
            f"  {record['abbr']} intent={record['intent']} "
            f"measured={record['measured']} ape={record['ape_pct']:.2f}%"
        )
        return "ok", record

    summary = run_units(
        units, execute, journal=journal, budget=budget, log=say
    )
    runner.flush()
    wall = time.perf_counter() - start
    records = [o.record for o in summary.outcomes if o.status == "ok"]
    failures = [o.record for o in summary.outcomes if o.status == "failed"]
    specs_done = [by_unit[o.unit] for o in summary.outcomes]
    if not records:
        if summary.partial:
            raise CampaignIncomplete(
                f"zoo campaign stopped ({summary.stopped}) before any "
                "workload completed; rerun the same plan to resume",
                reason=summary.stopped or "interrupted",
            )
        raise ReproError(
            f"zoo campaign produced no usable workloads "
            f"({len(failures)} failures)"
        )
    matches = sum(1 for r in records if r["intent"] == r["measured"])
    apes = [r["ape_pct"] for r in records]
    artifact = {
        "schema_version": ZOO_SCHEMA_VERSION,
        "kind": ZOO_ARTIFACT_KIND,
        "created_unix": time.time(),
        "plan": plan_payload(plan),
        "workloads": records,
        "failures": failures,
        "regimes": _regime_stats(records),
        "confusion": _confusion(records),
        "coverage": _coverage(specs_done, records),
        "accuracy": {
            "mape_pct": sum(apes) / len(apes),
            "max_ape_pct": max(apes),
            "regime_match_rate": matches / len(records),
            "count": len(records),
        },
        "campaign": {
            "wall_s": wall,
            "runs": len(_requests(plan, specs_done)),
            "workloads": len(specs_done),
            "failed": len(failures),
            "workloads_per_sec": len(records) / wall if wall > 0 else 0.0,
        },
    }
    if summary.partial:
        # Only partial artifacts carry this block: a resumed run that
        # finishes the plan is indistinguishable from an uninterrupted
        # one (resume telemetry goes to the log and journal instead).
        artifact["partial"] = {
            "reason": summary.stopped,
            "signum": summary.signum,
            "completed": summary.completed,
            "planned": len(units),
            "remaining": len(summary.remaining),
        }
    return artifact


# --------------------------------------------------------------------------
# Validation and the bench bridge
# --------------------------------------------------------------------------

def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_numbers(
    problems: List[str], where: str, block: Mapping, required: Sequence[str]
) -> None:
    for key in required:
        if key not in block:
            problems.append(f"{where}: missing {key!r}")
        elif not _is_number(block[key]):
            problems.append(f"{where}.{key}: expected a number")


_RECORD_NUMBERS = ("predicted_ipc", "actual_ipc", "ape_pct")
_RECORD_STRINGS = ("abbr", "digest", "intent", "measured")


def validate_campaign_artifact(document: object) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["artifact: expected a JSON object"]
    if document.get("kind") != ZOO_ARTIFACT_KIND:
        problems.append(
            f"kind: expected {ZOO_ARTIFACT_KIND!r}, got {document.get('kind')!r}"
        )
    if document.get("schema_version") != ZOO_SCHEMA_VERSION:
        problems.append(
            f"schema_version: expected {ZOO_SCHEMA_VERSION}, "
            f"got {document.get('schema_version')!r}"
        )
    plan = document.get("plan")
    if not isinstance(plan, dict):
        problems.append("plan: missing or not an object")
    else:
        _check_numbers(problems, "plan", plan, ("n", "seed", "target"))
        if not isinstance(plan.get("scales"), list) or not plan.get("scales"):
            problems.append("plan.scales: expected a non-empty list")

    workloads = document.get("workloads")
    if not isinstance(workloads, list) or not workloads:
        problems.append("workloads: expected a non-empty list")
        workloads = []
    for i, record in enumerate(workloads):
        where = f"workloads[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: expected an object")
            continue
        for key in _RECORD_STRINGS:
            if not isinstance(record.get(key), str) or not record.get(key):
                problems.append(f"{where}.{key}: expected a non-empty string")
        _check_numbers(problems, where, record, _RECORD_NUMBERS)
        if record.get("intent") not in REGIMES:
            problems.append(f"{where}.intent: unknown regime")
        if record.get("measured") not in REGIMES:
            problems.append(f"{where}.measured: unknown regime")
        if not isinstance(record.get("payload"), dict):
            problems.append(f"{where}.payload: expected an object")

    regimes = document.get("regimes")
    if not isinstance(regimes, dict) or not regimes:
        problems.append("regimes: expected a non-empty object")
    else:
        for regime, block in regimes.items():
            if regime not in REGIMES:
                problems.append(f"regimes.{regime}: unknown regime")
            if not isinstance(block, dict):
                problems.append(f"regimes.{regime}: expected an object")
                continue
            _check_numbers(
                problems,
                f"regimes.{regime}",
                block,
                ("mape_pct", "max_ape_pct", "count"),
            )

    confusion = document.get("confusion")
    if not isinstance(confusion, dict):
        problems.append("confusion: missing or not an object")
    else:
        total = 0
        for intended in REGIMES:
            row = confusion.get(intended)
            if not isinstance(row, dict):
                problems.append(f"confusion.{intended}: missing row")
                continue
            for measured in REGIMES:
                cell = row.get(measured)
                if not isinstance(cell, int) or isinstance(cell, bool):
                    problems.append(
                        f"confusion.{intended}.{measured}: expected an int"
                    )
                else:
                    total += cell
        if workloads and not problems and total != len(workloads):
            problems.append(
                f"confusion: counts sum to {total}, "
                f"expected {len(workloads)} workloads"
            )

    for name, keys in (
        (
            "accuracy",
            ("mape_pct", "max_ape_pct", "regime_match_rate", "count"),
        ),
        ("campaign", ("wall_s", "runs", "workloads", "workloads_per_sec")),
    ):
        block = document.get(name)
        if not isinstance(block, dict):
            problems.append(f"{name}: missing or not an object")
        else:
            _check_numbers(problems, name, block, keys)

    coverage = document.get("coverage")
    if not isinstance(coverage, dict):
        problems.append("coverage: missing or not an object")
    else:
        for key in ("intended", "measured", "families"):
            if not isinstance(coverage.get(key), dict):
                problems.append(f"coverage.{key}: expected an object")

    if "partial" in document:
        partial = document["partial"]
        if not isinstance(partial, dict):
            problems.append("partial: expected an object")
        else:
            if not isinstance(partial.get("reason"), str) or not partial.get(
                "reason"
            ):
                problems.append("partial.reason: expected a non-empty string")
            _check_numbers(
                problems,
                "partial",
                partial,
                ("completed", "planned", "remaining"),
            )
    return problems


def zoo_bench_block(artifact: Mapping) -> dict:
    """Distill a campaign artifact into the bench ``zoo`` family block."""
    problems = validate_campaign_artifact(dict(artifact))
    if problems:
        raise ReproError(
            "cannot bridge an invalid zoo artifact: " + "; ".join(problems[:3])
        )
    if "partial" in artifact:
        raise ReproError(
            "cannot bridge a partial zoo artifact into the bench zoo "
            "family: finish (resume) the campaign first"
        )
    accuracy = artifact["accuracy"]
    campaign = artifact["campaign"]
    return {
        "workloads": campaign["workloads"],
        "runs": campaign["runs"],
        "campaign_wall_s": campaign["wall_s"],
        "workloads_per_sec": campaign["workloads_per_sec"],
        "regime_match_rate": accuracy["regime_match_rate"],
        "mape_pct": accuracy["mape_pct"],
        "per_regime": {
            regime: {"mape_pct": block["mape_pct"], "count": block["count"]}
            for regime, block in artifact["regimes"].items()
        },
    }

"""The generative workload zoo.

The paper validates scale-model prediction on 21 hand-picked miniatures;
this package grows that into a *generated* corpus so the predictor's
accuracy claims are tested per scaling regime rather than per anecdote:

* :mod:`repro.zoo.grammar` — a composable access-pattern grammar whose
  primitives (phased mixes, bursty arrivals, hot-spot contention,
  power-law graph frontiers, working-set ramps) compose the existing
  :mod:`repro.workloads.generators` families into
  :class:`~repro.zoo.grammar.GeneratedSpec` workloads, deterministic in
  ``(grammar_expr, seed)`` and JSON round-trippable;
* :mod:`repro.zoo.sample` — seeded, stratified batches of generated
  specs spanning the intended scaling regimes;
* :mod:`repro.zoo.campaign` — the campaign driver: sweep every
  generated workload across system sizes through the cached runner,
  classify the *measured* regime, compare scale-model prediction
  against detailed simulation, and emit a schema-versioned artifact
  with per-regime MAPE, a regime-confusion matrix and coverage stats;
* :mod:`repro.zoo.report` — table/ASCII-plot rendering of a campaign
  artifact in the :mod:`repro.analysis` house style.
"""

from repro.zoo.grammar import (
    Burst,
    Expr,
    GeneratedSpec,
    PhaseSpec,
    Prim,
    Ramp,
    Repeat,
    Seq,
    expr_from_json,
    realize,
    spec_from_payload,
)
from repro.zoo.sample import REGIMES, sample_batch, sample_spec
from repro.zoo.campaign import (
    CampaignPlan,
    plan_payload,
    run_campaign,
    validate_campaign_artifact,
    zoo_bench_block,
)
from repro.zoo.report import render_campaign

__all__ = [
    "Burst",
    "CampaignPlan",
    "Expr",
    "GeneratedSpec",
    "PhaseSpec",
    "Prim",
    "Ramp",
    "Repeat",
    "Seq",
    "REGIMES",
    "expr_from_json",
    "plan_payload",
    "realize",
    "render_campaign",
    "run_campaign",
    "sample_batch",
    "sample_spec",
    "spec_from_payload",
    "validate_campaign_artifact",
    "zoo_bench_block",
]

"""Seeded, stratified sampling of generated workloads.

Each scaling regime owns a small pool of grammar *templates* — closures
that draw parameters from a seeded RNG and return a grammar expression
designed to land in that regime on the quick campaign sizes (8/16/32
SMs, where the proportionally-scaled LLC crosses 2.125 / 4.25 / 8.5
nominal MB).  :func:`sample_spec` realizes one template draw;
:func:`sample_batch` deals ``n`` specs round-robin across the regimes so
every campaign covers all of them.

Sampling is a pure function of ``(regime, seed, index)``: the RNG is
seeded from those values alone, so the same call reproduces the same
spec digest bit for bit across processes and hosts.  The ``scale`` knob
only rescales CTA counts (work volume, hence campaign cost); it never
touches the access pattern itself.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import WorkloadError
from repro.workloads.generators import MAX_CTAS
from repro.workloads.spec import ScalingBehavior
from repro.zoo.grammar import (
    Burst,
    Expr,
    GeneratedSpec,
    Prim,
    Ramp,
    Repeat,
    Seq,
    realize,
)

__all__ = ["REGIMES", "sample_batch", "sample_spec"]

#: The intended-regime strata, in dealing order.
REGIMES: Tuple[str, ...] = tuple(b.value for b in ScalingBehavior)

#: Domain-separation salt so zoo RNG streams never collide with the
#: generators' own ``(seed, kernel, cta)`` streams.
_SALT = 0x5A00_CAFE


def _u(rng: np.random.Generator, lo: float, hi: float) -> float:
    """A uniform draw rounded enough to keep JSON payloads tidy."""
    return float(np.round(rng.uniform(lo, hi), 4))


def _i(rng: np.random.Generator, lo: int, hi: int) -> int:
    """An inclusive integer draw."""
    return int(rng.integers(lo, hi + 1))


# --------------------------------------------------------------------------
# Templates.  Quick-campaign LLC walls (nominal MB): 2.125 @ 8 SMs,
# 4.25 @ 16, 8.5 @ 32 — a hot set between the last two cliffs exactly
# when the 16 -> 32 doubling is taken.
# --------------------------------------------------------------------------

def _t_cliff(rng: np.random.Generator) -> Expr:
    """Hot sweep sized to fall off the LLC until the largest size.

    ``l1_reuse`` is pinned to 1: L1 hits dilute the LLC cliff enough to
    flatten the jump below the classifier's doubling threshold.
    """
    return Prim("sweep", {
        "hot_mb": _u(rng, 5.8, 7.8),
        "l1_reuse": 1,
        "cpa": _u(rng, 3.0, 9.0),
        "apw": _i(rng, 4, 7),
    })


def _t_ramp_cliff(rng: np.random.Generator) -> Expr:
    """Working-set ramp whose last step crosses the 32-SM LLC wall."""
    return Ramp(
        Prim("sweep", {
            "hot_mb": _u(rng, 2.9, 3.6),
            "l1_reuse": 1,
            "cpa": _u(rng, 3.0, 8.0),
            "apw": _i(rng, 4, 6),
        }),
        steps=2,
        growth=_u(rng, 2.0, 2.2),
    )


def _t_burst_cliff(rng: np.random.Generator) -> Expr:
    """Bursty lockstep arrivals over a cliff-sized hot sweep.

    Bursts stress the NoC/LLC differently without touching capacity
    behaviour, so the cliff survives; a bypassing cold stream would not
    — even a few percent of cold traffic steals enough DRAM bandwidth
    to flatten the jump below the classifier's doubling threshold.
    """
    core: Expr = Prim("sweep", {
        "hot_mb": _u(rng, 6.0, 7.6),
        "l1_reuse": 1,
        "cpa": _u(rng, 3.0, 8.0),
        "apw": _i(rng, 4, 7),
    })
    if rng.integers(0, 2):
        core = Repeat(core, times=2)
    return Burst(core, intensity=_u(rng, 0.4, 0.9))


def _t_frontier(rng: np.random.Generator) -> Expr:
    """Power-law graph frontier with heavy per-CTA imbalance."""
    return Prim("frontier", {
        "fp_mb": _u(rng, 10.0, 24.0),
        "zipf_alpha": _u(rng, 0.7, 1.2),
        "sigma": _u(rng, 0.5, 0.9),
        "cpa": _u(rng, 4.0, 9.0),
        "apw": _i(rng, 6, 10),
    })


def _t_chase(rng: np.random.Generator) -> Expr:
    """Tree walks camping on the hot top levels."""
    return Prim("chase", {
        "fp_mb": _u(rng, 8.0, 24.0),
        "levels": _i(rng, 3, 5),
        "sigma": _u(rng, 0.1, 0.4),
        "cpa": _u(rng, 4.0, 9.0),
        "apw": _i(rng, 6, 10),
    })


def _t_hotspot(rng: np.random.Generator) -> Expr:
    """Tiny contended region (atomics proxy) plus cold traffic."""
    return Prim("hotspot", {
        "hot_lines": int(2 ** _i(rng, 6, 9)),
        "hot_frac": _u(rng, 0.35, 0.6),
        "zipf_alpha": _u(rng, 1.0, 1.4),
        "fp_mb": _u(rng, 4.0, 12.0),
        "cpa": _u(rng, 3.0, 8.0),
        "apw": _i(rng, 6, 10),
    })


def _t_frontier_hotspot(rng: np.random.Generator) -> Expr:
    """Phased mix of the two sub-linear mechanisms."""
    return Seq((_t_frontier(rng), _t_hotspot(rng)))


def _t_stream(rng: np.random.Generator) -> Expr:
    """Streaming far past every cache size in the sweep."""
    return Prim("stream", {
        "fp_mb": _u(rng, 40.0, 100.0),
        "random": float(rng.integers(0, 2)) * _u(rng, 0.1, 0.3),
        "cpa": _u(rng, 12.0, 28.0),
        "apw": _i(rng, 4, 8),
    })


def _t_tile(rng: np.random.Generator) -> Expr:
    """Compute-heavy tiling with strong L1 reuse."""
    return Prim("tile", {
        "fp_mb": _u(rng, 16.0, 48.0),
        "reps": _i(rng, 2, 4),
        "cpa": _u(rng, 12.0, 24.0),
        "apw": _i(rng, 8, 16),
    })


def _t_stream_tile(rng: np.random.Generator) -> Expr:
    """Phased memory/compute mix, optionally with bursty arrivals."""
    mix: Expr = Seq((_t_stream(rng), _t_tile(rng)))
    if rng.integers(0, 2):
        mix = Burst(mix, intensity=_u(rng, 0.3, 0.7))
    return mix


_TEMPLATES = {
    ScalingBehavior.SUPER_LINEAR.value: (
        _t_cliff, _t_ramp_cliff, _t_burst_cliff,
    ),
    ScalingBehavior.SUB_LINEAR.value: (
        _t_frontier, _t_chase, _t_hotspot, _t_frontier_hotspot,
    ),
    ScalingBehavior.LINEAR.value: (
        _t_stream, _t_tile, _t_stream_tile,
    ),
}


def sample_spec(
    regime: str, seed: int, index: int = 0, scale: float = 1.0
) -> GeneratedSpec:
    """Draw one generated workload intended for ``regime``.

    Deterministic in ``(regime, seed, index)``; ``scale`` rescales the
    CTA count only.  Raises :class:`~repro.exceptions.WorkloadError` on
    an unknown regime or non-positive scale.
    """
    if regime not in _TEMPLATES:
        raise WorkloadError(
            f"regime: expected one of {sorted(_TEMPLATES)}, got {regime!r}"
        )
    if scale <= 0:
        raise WorkloadError(f"scale: must be positive, got {scale}")
    rng = np.random.default_rng(
        (_SALT, REGIMES.index(regime), int(seed), int(index))
    )
    templates = _TEMPLATES[regime]
    expr = templates[int(rng.integers(len(templates)))](rng)
    # Enough CTAs that the largest campaign size still balances its
    # load — under ~900 CTAs a 32-SM sweep goes tail-limited and linear
    # intents measure sub-linear regardless of the access pattern.
    ctas = _i(rng, 1024, 2048)
    ctas = int(np.clip(round(ctas * scale), 768, MAX_CTAS))
    return realize(
        expr,
        seed=int(seed) * 10_000 + int(index),
        intent=regime,
        ctas_per_phase=ctas,
        threads_per_cta=128,
    )


def sample_batch(
    n: int,
    seed: int,
    regimes: Sequence[str] = REGIMES,
    scale: float = 1.0,
) -> Tuple[GeneratedSpec, ...]:
    """Draw ``n`` specs dealt round-robin across ``regimes``.

    Stratification is exact up to remainder: with ``n = 12`` and three
    regimes every regime contributes four specs.  The whole batch is
    deterministic in ``(n, seed, regimes, scale)``.
    """
    if n < 1:
        raise WorkloadError(f"n: must be >= 1, got {n}")
    if not regimes:
        raise WorkloadError("regimes: must not be empty")
    specs = []
    for position in range(n):
        regime = regimes[position % len(regimes)]
        specs.append(
            sample_spec(
                regime, seed, index=position // len(regimes), scale=scale
            )
        )
    return tuple(specs)

"""repro.bench — the benchmark harness and perf-trajectory gate.

The measurement substrate every performance-facing change is judged by
(ROADMAP item 1): a fixed matrix of workload classes runs through the
detailed engine and the scale-model predictor, and the numbers land in
a schema-versioned ``BENCH_<n>.json`` artifact that the comparator
diffs against the checked-in baseline.

* :mod:`repro.bench.matrix` — the deterministic quick/full matrices;
* :mod:`repro.bench.harness` — :func:`run_bench`, cold + warm campaigns;
* :mod:`repro.bench.schema` — artifact layout and validator;
* :mod:`repro.bench.compare` — per-family regression thresholds.

``scripts/bench.py`` is the CLI; the CI ``bench-smoke`` job runs the
quick tier and fails on regression beyond tolerance.
"""

from repro.bench.compare import Regression, Thresholds, compare_artifacts
from repro.bench.harness import matrix_plan_payload, run_bench
from repro.bench.matrix import (
    BenchCase,
    BenchMatrix,
    full_matrix,
    matrix_for_tier,
    quick_matrix,
)
from repro.bench.schema import (
    ARTIFACT_KIND,
    SCHEMA_VERSION,
    TIERS,
    validate_artifact,
)

__all__ = [
    "ARTIFACT_KIND",
    "SCHEMA_VERSION",
    "TIERS",
    "BenchCase",
    "BenchMatrix",
    "Regression",
    "Thresholds",
    "compare_artifacts",
    "full_matrix",
    "matrix_for_tier",
    "matrix_plan_payload",
    "quick_matrix",
    "run_bench",
    "validate_artifact",
]

"""Baseline comparison: the perf-trajectory regression gate.

Two artifacts of the same tier are compared family by family, each with
its own direction and tolerance:

* **throughput** (higher is better) — fail when the new value falls more
  than ``throughput_frac`` below the baseline;
* **wall time** (lower is better) — fail when the new value exceeds the
  baseline by more than ``walltime_frac``;
* **accuracy** (lower is better, *deterministic*) — fail when MAPE rises
  by more than ``mape_pp`` percentage points.  Simulation results are a
  pure function of the matrix and seed, so this family is held to a far
  tighter tolerance than the host-dependent timing families;
* **memory** (lower is better) — fail when peak RSS grows by more than
  ``rss_frac``.

Wall-clock tolerances default generous because the gate runs across
heterogeneous hosts (a laptop baseline vs. a CI runner); they exist to
catch order-of-magnitude regressions — an accidentally quadratic loop,
a cache that stopped hitting — not 10% scheduler noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bench.schema import validate_artifact

__all__ = ["Thresholds", "Regression", "compare_artifacts"]


@dataclass(frozen=True)
class Thresholds:
    """Per-family regression tolerances (all fractions of the baseline)."""

    #: Allowed fractional throughput loss (0.5 = new may be half as fast).
    throughput_frac: float = 0.5
    #: Allowed fractional wall-time growth (1.5 = new may take 2.5x).
    walltime_frac: float = 1.5
    #: Allowed MAPE growth in absolute percentage points.
    mape_pp: float = 1.0
    #: Allowed fractional peak-RSS growth (1.0 = new may use 2x).
    rss_frac: float = 1.0
    #: Allowed fractional service-latency growth (p50/p95/p99).
    service_latency_frac: float = 1.5
    #: Allowed fractional service-throughput loss.
    service_throughput_frac: float = 0.5
    #: Allowed shed-rate growth in absolute fraction points
    #: (0.15 = a baseline shedding 5% may shed up to 20%).
    service_shed_pts: float = 0.15
    #: Allowed zoo MAPE growth in absolute percentage points.  The zoo
    #: campaign is deterministic in its seed, like the accuracy family,
    #: but spans generated workloads (cliff predictions with triple-digit
    #: APEs), so its tolerance is wider than ``mape_pp``.
    zoo_mape_pp: float = 5.0
    #: Allowed regime-match-rate loss in absolute fraction points.
    zoo_match_pts: float = 0.1


@dataclass(frozen=True)
class Regression:
    """One metric that moved past its tolerance."""

    family: str
    metric: str
    baseline: float
    current: float
    limit: float

    def __str__(self) -> str:
        return (
            f"[{self.family}] {self.metric}: {self.current:.4g} vs "
            f"baseline {self.baseline:.4g} (limit {self.limit:.4g})"
        )


def _check_higher_better(
    regressions: List[Regression],
    family: str,
    metric: str,
    baseline: float,
    current: float,
    frac: float,
) -> None:
    limit = baseline * (1.0 - frac)
    if current < limit:
        regressions.append(Regression(family, metric, baseline, current, limit))


def _check_lower_better(
    regressions: List[Regression],
    family: str,
    metric: str,
    baseline: float,
    current: float,
    frac: float,
) -> None:
    limit = baseline * (1.0 + frac)
    if current > limit:
        regressions.append(Regression(family, metric, baseline, current, limit))


def compare_artifacts(
    baseline: dict, current: dict, thresholds: Thresholds = Thresholds()
) -> List[Regression]:
    """Diff ``current`` against ``baseline``; return the regressions.

    Both documents must be schema-valid and of the same tier — comparing
    a quick run against a full baseline would gate on disjoint matrices.
    """
    for name, document in (("baseline", baseline), ("current", current)):
        problems = validate_artifact(document)
        if problems:
            raise ValueError(f"{name} artifact is not schema-valid: {problems}")
        partial = document.get("partial")
        if partial is not None:
            raise ValueError(
                f"{name} artifact is partial "
                f"({partial.get('reason', 'interrupted')}: "
                f"{partial.get('remaining')} workloads remaining) — resume "
                "the campaign to completion before gating on it"
            )
    if baseline["tier"] != current["tier"]:
        raise ValueError(
            f"cannot compare tiers: baseline is {baseline['tier']!r}, "
            f"current is {current['tier']!r}"
        )

    regressions: List[Regression] = []

    for class_name, base_block in baseline["workload_classes"].items():
        cur_block = current["workload_classes"].get(class_name)
        if cur_block is None:
            regressions.append(
                Regression(
                    "throughput", f"workload_classes.{class_name} (missing)",
                    1.0, 0.0, 1.0,
                )
            )
            continue
        for metric in ("sim_cycles_per_sec", "warp_instructions_per_sec"):
            _check_higher_better(
                regressions, "throughput", f"{class_name}.{metric}",
                base_block[metric], cur_block[metric],
                thresholds.throughput_frac,
            )

    for metric in ("cold_wall_s", "warm_wall_s"):
        _check_lower_better(
            regressions, "walltime", f"campaign.{metric}",
            baseline["campaign"][metric], current["campaign"][metric],
            thresholds.walltime_frac,
        )

    for regime, base_block in baseline["accuracy"].items():
        cur_block = current["accuracy"].get(regime)
        if cur_block is None:
            regressions.append(
                Regression(
                    "accuracy", f"accuracy.{regime} (missing)", 1.0, 0.0, 1.0
                )
            )
            continue
        limit = base_block["mape_pct"] + thresholds.mape_pp
        if cur_block["mape_pct"] > limit:
            regressions.append(
                Regression(
                    "accuracy", f"{regime}.mape_pct",
                    base_block["mape_pct"], cur_block["mape_pct"], limit,
                )
            )

    _check_lower_better(
        regressions, "memory", "peak_rss_bytes",
        baseline["memory"]["peak_rss_bytes"],
        current["memory"]["peak_rss_bytes"],
        thresholds.rss_frac,
    )

    # The service family gates only once a baseline carries it — older
    # baselines predate service mode and must keep comparing clean.  A
    # baseline that has the block and a current that lost it is a
    # regression (the load harness stopped running), not a skip.
    base_service = baseline.get("service")
    if base_service is not None:
        cur_service = current.get("service")
        if cur_service is None:
            regressions.append(
                Regression("service", "service (missing)", 1.0, 0.0, 1.0)
            )
        else:
            for metric in ("p50_ms", "p95_ms", "p99_ms"):
                _check_lower_better(
                    regressions, "service", metric,
                    base_service[metric], cur_service[metric],
                    thresholds.service_latency_frac,
                )
            _check_higher_better(
                regressions, "service", "throughput_rps",
                base_service["throughput_rps"],
                cur_service["throughput_rps"],
                thresholds.service_throughput_frac,
            )
            shed_limit = base_service["shed_rate"] + thresholds.service_shed_pts
            if cur_service["shed_rate"] > shed_limit:
                regressions.append(
                    Regression(
                        "service", "shed_rate",
                        base_service["shed_rate"],
                        cur_service["shed_rate"], shed_limit,
                    )
                )

    # Same opt-in rule for the generated-workload zoo: gate once a
    # baseline carries the block, and losing it is itself a regression.
    base_zoo = baseline.get("zoo")
    if base_zoo is not None:
        cur_zoo = current.get("zoo")
        if cur_zoo is None:
            regressions.append(
                Regression("zoo", "zoo (missing)", 1.0, 0.0, 1.0)
            )
        else:
            _check_lower_better(
                regressions, "zoo", "campaign_wall_s",
                base_zoo["campaign_wall_s"], cur_zoo["campaign_wall_s"],
                thresholds.walltime_frac,
            )
            _check_higher_better(
                regressions, "zoo", "workloads_per_sec",
                base_zoo["workloads_per_sec"], cur_zoo["workloads_per_sec"],
                thresholds.throughput_frac,
            )
            mape_limit = base_zoo["mape_pct"] + thresholds.zoo_mape_pp
            if cur_zoo["mape_pct"] > mape_limit:
                regressions.append(
                    Regression(
                        "zoo", "mape_pct",
                        base_zoo["mape_pct"], cur_zoo["mape_pct"], mape_limit,
                    )
                )
            match_limit = (
                base_zoo["regime_match_rate"] - thresholds.zoo_match_pts
            )
            if cur_zoo["regime_match_rate"] < match_limit:
                regressions.append(
                    Regression(
                        "zoo", "regime_match_rate",
                        base_zoo["regime_match_rate"],
                        cur_zoo["regime_match_rate"], match_limit,
                    )
                )

    return regressions

"""The ``BENCH_<n>.json`` artifact schema and its validator.

One benchmark invocation emits one schema-versioned JSON document; the
comparator (:mod:`repro.bench.compare`) and the CI trajectory gate only
consume documents this module accepts, so schema drift fails loudly at
the artifact boundary instead of as a ``KeyError`` three layers down.

The validator is hand-rolled (no jsonschema dependency) and returns a
list of human-readable problems — empty means valid — mirroring
:func:`repro.obs.export.validate_trace_events`.
"""

from __future__ import annotations

import numbers
from typing import Any, List

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_KIND",
    "TIERS",
    "SERVICE_METRICS",
    "ZOO_METRICS",
    "validate_artifact",
]

#: Bump on any breaking change to the artifact layout.
SCHEMA_VERSION = 1

ARTIFACT_KIND = "repro-bench"

TIERS = ("quick", "full")

#: Per-workload-class throughput metrics (all required, all >= 0).
CLASS_METRICS = (
    "sim_cycles_per_sec",
    "warp_instructions_per_sec",
    "events_per_sec",
    "simulated_cycles",
    "warp_instructions",
    "wall_time_s",
)

#: Per-scaling-regime accuracy metrics.
ACCURACY_METRICS = ("mape_pct", "max_ape_pct", "count")

#: Campaign-level wall-clock metrics.
CAMPAIGN_METRICS = ("cold_wall_s", "warm_wall_s", "runs", "warm_hits", "warm_misses")

#: Service-mode metrics (optional block, emitted by scripts/service_load.py).
SERVICE_METRICS = (
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "throughput_rps",
    "shed_rate",
    "requests",
)

#: Generated-workload-zoo metrics (optional block; a seeded mini-campaign
#: over :mod:`repro.zoo` generated specs run by the harness).
ZOO_METRICS = (
    "workloads",
    "runs",
    "campaign_wall_s",
    "workloads_per_sec",
    "regime_match_rate",
    "mape_pct",
)


def _is_number(value: Any) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _check_metric_block(
    problems: List[str],
    where: str,
    block: Any,
    required: tuple,
) -> None:
    if not isinstance(block, dict):
        problems.append(f"{where}: expected an object, got {type(block).__name__}")
        return
    for metric in required:
        if metric not in block:
            problems.append(f"{where}: missing metric {metric!r}")
        elif not _is_number(block[metric]):
            problems.append(
                f"{where}.{metric}: expected a number, got {block[metric]!r}"
            )
        elif block[metric] < 0:
            problems.append(f"{where}.{metric}: negative value {block[metric]!r}")


def validate_artifact(document: Any) -> List[str]:
    """Validate a ``BENCH_*.json`` document; return problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"artifact must be a JSON object, got {type(document).__name__}"]

    if document.get("kind") != ARTIFACT_KIND:
        problems.append(
            f"kind: expected {ARTIFACT_KIND!r}, got {document.get('kind')!r}"
        )
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"schema_version: expected {SCHEMA_VERSION}, got {version!r}"
        )
    if document.get("tier") not in TIERS:
        problems.append(f"tier: expected one of {TIERS}, got {document.get('tier')!r}")

    classes = document.get("workload_classes")
    if not isinstance(classes, dict) or not classes:
        problems.append("workload_classes: expected a non-empty object")
    else:
        for name, block in classes.items():
            _check_metric_block(
                problems, f"workload_classes.{name}", block, CLASS_METRICS
            )
            if isinstance(block, dict):
                benchmarks = block.get("benchmarks")
                if not isinstance(benchmarks, list) or not benchmarks:
                    problems.append(
                        f"workload_classes.{name}.benchmarks: expected a "
                        "non-empty list"
                    )

    _check_metric_block(
        problems, "campaign", document.get("campaign"), CAMPAIGN_METRICS
    )

    accuracy = document.get("accuracy")
    if not isinstance(accuracy, dict) or not accuracy:
        problems.append("accuracy: expected a non-empty object")
    else:
        for regime, block in accuracy.items():
            _check_metric_block(
                problems, f"accuracy.{regime}", block, ACCURACY_METRICS
            )

    memory = document.get("memory")
    _check_metric_block(problems, "memory", memory, ("peak_rss_bytes",))

    host = document.get("host")
    if not isinstance(host, dict):
        problems.append("host: expected an object")

    cross = document.get("cross_check")
    if cross is not None:
        _check_metric_block(
            problems, "cross_check", cross,
            ("engine_loop_s", "harness_sim_wall_s"),
        )

    service = document.get("service")
    if service is not None:
        _check_metric_block(problems, "service", service, SERVICE_METRICS)
        if isinstance(service, dict):
            shed_rate = service.get("shed_rate")
            if _is_number(shed_rate) and shed_rate > 1:
                problems.append(
                    f"service.shed_rate: expected a fraction in [0, 1], "
                    f"got {shed_rate!r}"
                )

    partial = document.get("partial")
    if partial is not None:
        # An interrupted/budget-stopped campaign: the artifact covers
        # the completed prefix and says so.  Still schema-valid — but
        # the comparator refuses to gate on it.
        if not isinstance(partial, dict):
            problems.append("partial: expected an object")
        else:
            reason = partial.get("reason")
            if not isinstance(reason, str) or not reason:
                problems.append("partial.reason: expected a non-empty string")
            _check_metric_block(
                problems, "partial", partial,
                ("completed", "planned", "remaining"),
            )

    zoo = document.get("zoo")
    if zoo is not None:
        _check_metric_block(problems, "zoo", zoo, ZOO_METRICS)
        if isinstance(zoo, dict):
            match_rate = zoo.get("regime_match_rate")
            if _is_number(match_rate) and match_rate > 1:
                problems.append(
                    f"zoo.regime_match_rate: expected a fraction in [0, 1], "
                    f"got {match_rate!r}"
                )
            per_regime = zoo.get("per_regime")
            if not isinstance(per_regime, dict) or not per_regime:
                problems.append("zoo.per_regime: expected a non-empty object")
            else:
                for regime, block in per_regime.items():
                    _check_metric_block(
                        problems, f"zoo.per_regime.{regime}", block,
                        ("mape_pct", "count"),
                    )

    return problems

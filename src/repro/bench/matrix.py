"""The fixed benchmark matrix the harness runs.

Every invocation of a tier runs the *same* workloads at the same scales
with the same seed, so the simulation-derived fields of the artifact
(simulated cycles, warp instructions, predictor MAPE) are bit-stable
across runs and machines — only the wall-clock families vary.  That
split is what lets the comparator hold accuracy to tight tolerances
while staying generous on host-dependent timing.

Tier design:

* **quick** — one fast representative per scaling class (the classes of
  Table II), small target; finishes in about a minute serially and is
  the CI ``bench-smoke`` tier;
* **full** — every Table II benchmark, two targets; the release-gate
  tier (``scripts/finalize.sh`` territory, tens of minutes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.exceptions import ReproError
from repro.workloads import STRONG_SCALING
from repro.workloads.spec import BenchmarkSpec

__all__ = ["BenchCase", "BenchMatrix", "matrix_for_tier", "quick_matrix", "full_matrix"]


@dataclass(frozen=True)
class BenchCase:
    """One benchmark's slot in the matrix."""

    abbr: str
    scales: Tuple[int, ...] = (8, 16)
    targets: Tuple[int, ...] = (32,)

    def __post_init__(self) -> None:
        if self.abbr not in STRONG_SCALING:
            raise ReproError(f"unknown benchmark {self.abbr!r} in bench matrix")
        if len(self.scales) < 2:
            raise ReproError(
                f"{self.abbr}: scale-model prediction needs >= 2 scale points"
            )
        if not self.targets:
            raise ReproError(f"{self.abbr}: at least one target size required")
        largest = max(self.scales)
        if any(t < largest for t in self.targets):
            raise ReproError(
                f"{self.abbr}: targets {self.targets} must not be smaller "
                f"than the largest scale model ({largest})"
            )

    @property
    def spec(self) -> BenchmarkSpec:
        return STRONG_SCALING[self.abbr]

    @property
    def sizes(self) -> Tuple[int, ...]:
        """All system sizes this case simulates (scales then targets)."""
        return tuple(self.scales) + tuple(self.targets)


@dataclass(frozen=True)
class BenchMatrix:
    """A deterministic set of cases plus the seed they all run under."""

    tier: str
    cases: Tuple[BenchCase, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.cases:
            raise ReproError(f"{self.tier}: empty bench matrix")
        abbrs = [case.abbr for case in self.cases]
        if len(set(abbrs)) != len(abbrs):
            raise ReproError(f"{self.tier}: duplicate benchmarks in matrix: {abbrs}")

    def by_class(self) -> Dict[str, List[BenchCase]]:
        """Cases grouped by the paper's scaling class, insertion-ordered."""
        groups: Dict[str, List[BenchCase]] = {}
        for case in self.cases:
            groups.setdefault(case.spec.scaling.value, []).append(case)
        return groups

    @property
    def run_count(self) -> int:
        """Detailed simulations plus one MRC collection per case."""
        return sum(len(case.sizes) + 1 for case in self.cases)


def quick_matrix() -> BenchMatrix:
    """One fast representative per scaling class (CI smoke tier).

    Representatives were picked by measured serial runtime: ``va``,
    ``btree`` and ``bs`` are the cheapest members of their classes at
    a few seconds per simulation.
    """
    return BenchMatrix(
        tier="quick",
        cases=(
            BenchCase("va"),      # super-linear (miss-rate cliff)
            BenchCase("btree"),   # sub-linear (CTA tails / imbalance)
            BenchCase("bs"),      # linear (balanced, compute-bound)
        ),
    )


def full_matrix() -> BenchMatrix:
    """Every Table II benchmark, two prediction targets."""
    return BenchMatrix(
        tier="full",
        cases=tuple(
            BenchCase(abbr, targets=(32, 64)) for abbr in STRONG_SCALING
        ),
    )


def matrix_for_tier(tier: str) -> BenchMatrix:
    if tier == "quick":
        return quick_matrix()
    if tier == "full":
        return full_matrix()
    raise ReproError(f"unknown bench tier {tier!r}; expected quick or full")

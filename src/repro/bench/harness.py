"""The benchmark harness: run a matrix, emit a schema-valid artifact.

One :func:`run_bench` call executes the matrix twice through the cached
runner — once against an empty store (the *cold* campaign: every run is
a genuine simulation) and once against the store the cold pass filled
(the *warm* campaign: every run must be a cache hit) — and distills the
results into the ``BENCH_<n>.json`` families:

* **throughput** per workload class: simulated cycles/sec,
  warp-instructions/sec and events/sec of the detailed engine, computed
  from each run's engine-measured ``wall_time_s`` so the numbers are
  valid under parallel prefetch too;
* **campaign** wall time cold and warm — the end-to-end cost a user
  pays, cache machinery included;
* **accuracy**: the scale-model predictor's MAPE against the detailed
  simulation, per scaling regime — the paper's headline claim as a
  regression-gated number;
* **zoo**: a seeded :mod:`repro.zoo` mini-campaign over *generated*
  workloads — prediction MAPE and intended-versus-measured regime match
  rate on specs no human hand-picked;
* **memory**: the process peak RSS via :mod:`repro.obs.resources`.

Timing is cross-checked: when the :mod:`repro.obs` profile hooks are
installed the engine's own instrumented loop time (``engine.run_us``)
is captured alongside the harness's wall measurements, and the artifact
records both so a disagreement (instrumentation drift, a timer bug)
shows up in review rather than silently skewing the trajectory.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.faults import ExecutionPolicy
from repro.analysis.parallel import RunRequest
from repro.analysis.runner import CachedRunner
from repro.bench.matrix import BenchCase, BenchMatrix
from repro.bench.schema import ARTIFACT_KIND, SCHEMA_VERSION
from repro.campaign import CampaignBudget, CampaignJournal, run_units
from repro.checkpoint import CheckpointPolicy
from repro.core import ScaleModelPredictor, ScaleModelProfile
from repro.exceptions import CampaignIncomplete, ShutdownRequested
from repro.gpu.results import SimulationResult
from repro.obs import run_phase, sample_peak_rss
from repro.obs.metrics import get_registry
from repro.zoo import CampaignPlan, run_campaign, zoo_bench_block

__all__ = ["matrix_plan_payload", "run_bench"]

#: Generated workloads in the harness's zoo mini-campaign, per tier.
#: Deterministic in the matrix seed, so the zoo family gates as tightly
#: as the accuracy family.
_ZOO_N = {"quick": 6, "full": 12}

#: Checkpointing off for benchmark runs: snapshot I/O is not part of the
#: engine throughput being measured, and bench campaigns are short.
_NO_CHECKPOINT = CheckpointPolicy(root=None)


def _runner(cache_dir: str, jobs: int) -> CachedRunner:
    return CachedRunner(
        cache_dir,
        jobs=jobs,
        policy=ExecutionPolicy(),
        checkpoint=_NO_CHECKPOINT,
    )


def matrix_plan_payload(matrix: BenchMatrix) -> dict:
    """The matrix as JSON — the payload a bench campaign journal's
    sealed header binds its plan digest to."""
    return {
        "tier": matrix.tier,
        "seed": matrix.seed,
        "cases": [
            {
                "abbr": case.abbr,
                "scales": list(case.scales),
                "targets": list(case.targets),
            }
            for case in matrix.cases
        ],
    }


def _requests(matrix: BenchMatrix) -> List[RunRequest]:
    requests = [
        RunRequest("sim", case.spec, size=size, seed=matrix.seed)
        for case in matrix.cases
        for size in case.sizes
    ]
    requests += [
        RunRequest("mrc", case.spec, seed=matrix.seed) for case in matrix.cases
    ]
    return requests


def _campaign(
    runner: CachedRunner, matrix: BenchMatrix
) -> Dict[str, Dict[int, SimulationResult]]:
    """Run (or hit) every sim and MRC of the matrix; return the sims."""
    runner.executed = runner.prefetch(_requests(matrix))
    sims: Dict[str, Dict[int, SimulationResult]] = {}
    for case in matrix.cases:
        sims[case.abbr] = {
            size: runner.simulate(case.spec, size, seed=matrix.seed)
            for size in case.sizes
        }
        runner.miss_rate_curve(case.spec, seed=matrix.seed)
    runner.flush()
    return sims


def _throughput_by_class(
    matrix: BenchMatrix, sims: Dict[str, Dict[int, SimulationResult]]
) -> Dict[str, dict]:
    classes: Dict[str, dict] = {}
    for class_name, cases in matrix.by_class().items():
        results = [
            result for case in cases for result in sims[case.abbr].values()
        ]
        cycles = sum(r.cycles for r in results)
        warp_insns = sum(r.warp_instructions for r in results)
        events = sum(r.events for r in results)
        wall = sum(r.wall_time_s for r in results)
        if wall <= 0:
            # Engine-measured time should never be zero for a real run;
            # degrade to null-rate rather than dividing by zero.
            wall = float("nan")
        classes[class_name] = {
            "benchmarks": [case.abbr for case in cases],
            "sim_cycles_per_sec": cycles / wall,
            "warp_instructions_per_sec": warp_insns / wall,
            "events_per_sec": events / wall,
            "simulated_cycles": cycles,
            "warp_instructions": warp_insns,
            "wall_time_s": wall,
        }
    return classes


def _accuracy_by_regime(
    runner: CachedRunner,
    matrix: BenchMatrix,
    sims: Dict[str, Dict[int, SimulationResult]],
) -> Dict[str, dict]:
    """Scale-model MAPE vs. the detailed engine, per scaling regime.

    Pure function of the (deterministic) simulation results, so the
    numbers are bit-stable across hosts — the comparator's tightest
    family.
    """
    apes: Dict[str, List[float]] = {}
    for case in matrix.cases:
        case_sims = sims[case.abbr]
        profile = ScaleModelProfile(
            workload=case.abbr,
            sizes=tuple(case.scales),
            ipcs=tuple(case_sims[n].ipc for n in case.scales),
            f_mem=case_sims[max(case.scales)].memory_stall_fraction,
            curve=runner.miss_rate_curve(case.spec, seed=matrix.seed),
        )
        predictor = ScaleModelPredictor(profile)
        regime = case.spec.scaling.value
        for target in case.targets:
            actual = case_sims[target].ipc
            predicted = predictor.predict(target).ipc
            apes.setdefault(regime, []).append(
                abs(predicted - actual) / actual
            )
    return {
        regime: {
            "mape_pct": 100.0 * sum(values) / len(values),
            "max_ape_pct": 100.0 * max(values),
            "count": len(values),
        }
        for regime, values in apes.items()
    }


def _engine_loop_seconds() -> float:
    """Instrumented engine-loop time accumulated so far (0 when obs off)."""
    return get_registry().histogram("engine.run_us").total / 1e6


def run_bench(
    matrix: BenchMatrix,
    cache_dir: str,
    jobs: int = 1,
    created_unix: Optional[float] = None,
    journal: Optional[CampaignJournal] = None,
    budget: Optional[CampaignBudget] = None,
) -> dict:
    """Execute ``matrix`` cold then warm; return the artifact document.

    Without a ``journal``, ``cache_dir`` must not hold results from a
    previous campaign, or the "cold" numbers silently measure cache
    hits; the caller owns creating (and cleaning up) a fresh directory.

    With a ``journal`` (which only makes sense over a *persistent*
    ``cache_dir`` — the journal seals which cases completed, the store
    holds their results), the cold pass runs only the cases the journal
    has not sealed; sealed cases are served from the store without
    re-simulation, and the cold-count guard demands computation for
    exactly the new cases.  A drain (SIGINT/SIGTERM) or ``budget`` stop
    finalizes a schema-valid artifact over the completed cases plus a
    ``partial`` block (throughput/accuracy then cover that prefix, and
    the zoo family is skipped); re-running the same matrix resumes and
    converges to the uninterrupted artifact modulo wall-time fields.
    """
    loop_before = _engine_loop_seconds()
    by_abbr = {case.abbr: case for case in matrix.cases}
    units = [case.abbr for case in matrix.cases]
    sealed = journal.completed if journal is not None else {}
    allowed = units
    if budget is not None and budget.max_workloads is not None:
        allowed = units[: budget.max_workloads]
    pending = tuple(by_abbr[abbr] for abbr in allowed if abbr not in sealed)

    with run_phase("bench.cold", tier=matrix.tier, jobs=jobs):
        cold_start = time.perf_counter()
        cold = _runner(cache_dir, jobs)
        cold.executed = 0
        if pending:
            sub_matrix = BenchMatrix(
                tier=matrix.tier, cases=pending, seed=matrix.seed
            )
            try:
                cold.executed = cold.prefetch(_requests(sub_matrix))
            except ShutdownRequested:
                # Drain mid-prefetch: completed runs are merged into the
                # store; the unit loop below stops at the first unsealed
                # case and we finalize a partial artifact.
                pass

        def execute(abbr: str):
            case = by_abbr[abbr]
            for size in case.sizes:
                cold.simulate(case.spec, size, seed=matrix.seed)
            cold.miss_rate_curve(case.spec, seed=matrix.seed)
            return "ok", {"abbr": abbr, "runs": len(case.sizes) + 1}

        summary = run_units(units, execute, journal=journal, budget=budget)
        cold.flush()
        cold_wall = time.perf_counter() - cold_start

    if not summary.outcomes:
        raise CampaignIncomplete(
            f"bench campaign stopped ({summary.stopped}) before any case "
            "completed; rerun the same matrix to resume",
            reason=summary.stopped or "interrupted",
        )

    # Lazy-path misses plus pool-executed runs must account for every
    # *newly executed* case, or the "cold" numbers measured a warm
    # cache.  Journal-reused cases are deliberately excluded: their runs
    # are served from the persistent store and must NOT be demanded as
    # cold misses (that double-counting is exactly what broke resumed
    # campaigns).  An interrupted pass skips the guard — prefetch may
    # have computed runs for cases the stop left unsealed.
    if summary.stopped is None:
        new_runs = sum(
            len(by_abbr[outcome.unit].sizes) + 1
            for outcome in summary.outcomes
            if not outcome.reused
        )
        cold_computed = cold.misses + cold.executed
        if cold_computed != new_runs:
            raise RuntimeError(
                f"cold campaign expected {new_runs} computed runs, got "
                f"{cold_computed} (stale cache_dir {cache_dir!r}?)"
            )

    # Everything downstream measures the *completed* cases: the full
    # matrix on a finished campaign, the sealed prefix on a partial one.
    done_matrix = BenchMatrix(
        tier=matrix.tier,
        cases=tuple(by_abbr[outcome.unit] for outcome in summary.outcomes),
        seed=matrix.seed,
    )

    if summary.stopped == "drain":
        # Finalizing a drained campaign only replays cache hits (fast,
        # no new simulation); rearm the coordinator so the warm and
        # accuracy passes below can finish instead of re-raising.
        from repro.resilience import get_coordinator

        get_coordinator().reset()

    with run_phase("bench.warm", tier=matrix.tier):
        warm_start = time.perf_counter()
        warm = _runner(cache_dir, jobs=1)
        sims = _campaign(warm, done_matrix)
        warm_wall = time.perf_counter() - warm_start
    # Capture before the accuracy phase re-reads curves through the same
    # runner, or the hit count drifts past the campaign's run count.
    warm_hits, warm_misses = warm.hits, warm.misses

    with run_phase("bench.accuracy", tier=matrix.tier):
        accuracy = _accuracy_by_regime(warm, done_matrix, sims)

    classes = _throughput_by_class(done_matrix, sims)
    harness_sim_wall = sum(block["wall_time_s"] for block in classes.values())
    # Capture before the zoo phase: the cross-check pairs the engine-loop
    # time with the *matrix* runs' wall sum, and zoo runs are neither.
    engine_loop_s = _engine_loop_seconds() - loop_before

    # The generated-workload mini-campaign runs through its own cache
    # sibling so the cold-count assertion above and the warm hit counts
    # stay facts about the fixed matrix alone.  A partial bench run
    # skips it (the zoo block is optional in the schema): its cost
    # belongs to a finished campaign, and the resumed rerun will run it.
    zoo_artifact = None
    if summary.stopped is None:
        with run_phase("bench.zoo", tier=matrix.tier, jobs=jobs):
            zoo_plan = CampaignPlan(n=_ZOO_N[matrix.tier], seed=matrix.seed)
            zoo_artifact = run_campaign(
                zoo_plan, _runner(f"{cache_dir}-zoo", jobs)
            )
        if "partial" in zoo_artifact:
            # Drained mid-zoo.  The matrix cases are all sealed in the
            # journal (rerunning is nearly free), so resume rather than
            # publishing a bench artifact with a truncated zoo family.
            raise CampaignIncomplete(
                "bench campaign drained during the zoo phase; rerun the "
                "same matrix to resume",
                reason="drain",
            )

    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": ARTIFACT_KIND,
        "tier": matrix.tier,
        "created_unix": (
            time.time() if created_unix is None else float(created_unix)
        ),
        "host": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpu_count": os.cpu_count() or 1,
            "jobs": jobs,
        },
        "matrix": {
            "seed": matrix.seed,
            "cases": [
                {
                    "abbr": case.abbr,
                    "scales": list(case.scales),
                    "targets": list(case.targets),
                }
                for case in matrix.cases
            ],
        },
        "workload_classes": classes,
        "campaign": {
            "cold_wall_s": cold_wall,
            "warm_wall_s": warm_wall,
            "runs": done_matrix.run_count,
            "warm_hits": warm_hits,
            "warm_misses": warm_misses,
        },
        "accuracy": accuracy,
        "memory": {"peak_rss_bytes": sample_peak_rss()},
        "cross_check": {
            # Instrumented loop time (repro.obs engine hook) versus the
            # engine's own per-run wall measurement.  With obs installed
            # and jobs=1 these agree to within trace-generation overhead;
            # engine_loop_s is 0 when obs is off or runs happened in
            # worker processes.
            "engine_loop_s": engine_loop_s,
            "harness_sim_wall_s": harness_sim_wall,
        },
    }
    if zoo_artifact is not None:
        document["zoo"] = zoo_bench_block(zoo_artifact)
    if summary.partial:
        # Only partial artifacts carry this block: a resumed run that
        # finishes the matrix is indistinguishable from an uninterrupted
        # one (resume telemetry stays in the log and journal).
        document["partial"] = {
            "reason": summary.stopped,
            "signum": summary.signum,
            "completed": summary.completed,
            "planned": len(units),
            "remaining": len(summary.remaining),
        }
    return document

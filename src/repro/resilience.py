"""Resilience layer: graceful shutdown, resource guards, circuit breakers.

Long simulation campaigns die in boring ways: an operator hits Ctrl-C,
a disk fills up mid-flush, one worker eats all the RAM, or one broken
config burns its full retry budget on every single invocation.  This
module makes those events survivable instead of fatal:

* :class:`ShutdownCoordinator` — SIGINT/SIGTERM become a *drain*: stop
  submitting new runs, let in-flight runs finish, flush every completed
  result, write the failure manifest, exit with the resumable code
  :data:`EXIT_INTERRUPTED`.  A second signal force-quits
  (``128 + signum``).
* :class:`DiskGuard` — a free-space preflight plus cheap periodic
  checks; below the threshold the store and checkpointer stop *writing*
  (computation continues from memory), a warning fires once and the
  ``resilience.resource_pressure`` counter records the episode.
* :func:`apply_memory_limit` — an optional per-process address-space
  ceiling (``REPRO_MAX_RSS``, e.g. ``2G``) so a pathological run raises
  :class:`MemoryError` — mapped to a non-retryable run outcome — instead
  of taking the whole worker pool (or the host) down with it.
* :class:`CircuitBreaker` — per-config failure accounting over the
  append-only manifest (``results/failures/``): a config with
  :data:`DEFAULT_BREAKER_THRESHOLD` consecutive terminal failures is
  *skipped* on later ``--keep-going`` invocations until
  ``--retry-quarantined`` re-arms it (a success resets the count).

Exit-code contract for every CLI entry point (documented in
``docs/ARCHITECTURE.md`` § "Resilience")::

    0             success
    1             completed with failures (--keep-going)
    2             error (configuration, unrecoverable execution)
    75            interrupted, resumable: rerun the same command
    128 + signum  forced quit (second signal)

``75`` is ``EX_TEMPFAIL`` from ``sysexits.h`` — "temporary failure,
retrying later will succeed", which is exactly the contract: everything
completed before the signal is durable, and a rerun picks up from the
cache and the checkpoints.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import sys
import time
import warnings
from typing import Dict, Iterable, Optional

from repro.exceptions import ShutdownRequested
from repro.obs.metrics import get_registry

__all__ = [
    "EXIT_OK",
    "EXIT_FAILURES",
    "EXIT_ERROR",
    "EXIT_INTERRUPTED",
    "MIN_FREE_ENV",
    "DEFAULT_MIN_FREE_MB",
    "DISK_CHECK_INTERVAL_ENV",
    "MAX_RSS_ENV",
    "BREAKER_THRESHOLD_ENV",
    "DEFAULT_BREAKER_THRESHOLD",
    "ShutdownCoordinator",
    "get_coordinator",
    "install_shutdown_handlers",
    "DiskGuard",
    "get_disk_guard",
    "preflight_disk",
    "parse_size",
    "apply_memory_limit",
    "CircuitBreaker",
    "breaker_threshold",
    "parse_tolerant",
    "tolerant_env",
    "env_float",
    "env_int",
]

EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_ERROR = 2
#: EX_TEMPFAIL: the campaign was drained, not lost — rerun to resume.
EXIT_INTERRUPTED = 75

MIN_FREE_ENV = "REPRO_MIN_FREE_MB"
DEFAULT_MIN_FREE_MB = 64
DISK_CHECK_INTERVAL_ENV = "REPRO_DISK_CHECK_INTERVAL"
DEFAULT_DISK_CHECK_INTERVAL = 5.0
MAX_RSS_ENV = "REPRO_MAX_RSS"
BREAKER_THRESHOLD_ENV = "REPRO_BREAKER_THRESHOLD"
DEFAULT_BREAKER_THRESHOLD = 3

#: RunOutcome statuses a breaker counts as terminal failures.  Literal
#: mirrors of repro.analysis.faults.{FAILED,TIMEOUT,OOM} — this module
#: must stay import-free of the analysis package (which imports it).
_BREAKER_FAILURE_STATUSES = frozenset(("failed", "timeout", "oom"))
_BREAKER_RESET_STATUS = "ok"
#: Synthetic record left by failure-manifest rotation: carries the
#: key's consecutive-failure count at rotation time.
_BREAKER_STREAK_STATUS = "streak"


# --- tolerant environment parsing -------------------------------------------------

def parse_tolerant(name, raw, default, parse, expected="a value"):
    """Parse one knob value, degrading to ``default`` on garbage.

    ``None``/empty ``raw`` silently yields ``default``; a value ``parse``
    rejects (by raising ``ValueError``/``TypeError`` or returning
    ``None``) yields ``default`` *with a warning naming the knob* —
    never an exception.  ``expected`` finishes the warning sentence
    ("is not a number", "is not a size (try 512M, 2G)", ...).
    """
    if raw is None or raw == "":
        return default
    try:
        value = parse(raw)
    except (TypeError, ValueError):
        value = None
    if value is None:
        action = f"using {default}" if default is not None else "ignoring it"
        warnings.warn(f"{name}={raw!r} is not {expected}; {action}")
        return default
    return value


def tolerant_env(name, default, parse, expected="a value"):
    """Read ``name`` from the environment, degrading to ``default`` on garbage.

    The one shared policy for every ``REPRO_*`` tuning knob: a
    long-running campaign or service must not refuse to start because an
    operator fat-fingered a tuning knob; the conservative default plus a
    loud warning is always the better failure mode.  See
    :func:`parse_tolerant` for the parsing contract.
    """
    return parse_tolerant(name, os.environ.get(name), default, parse, expected)


def _parse_nonneg_float(raw: str) -> Optional[float]:
    value = float(raw)  # ValueError propagates to tolerant_env
    return value if value >= 0 else None


def _parse_nonneg_int(raw: str) -> Optional[int]:
    value = int(raw)
    return value if value >= 0 else None


def env_float(name: str, default: float) -> float:
    """A non-negative float knob (``REPRO_MIN_FREE_MB``-style), tolerant."""
    return tolerant_env(
        name, default, _parse_nonneg_float, expected="a non-negative number"
    )


def env_int(name: str, default: int) -> int:
    """A non-negative integer knob (``REPRO_JOBS``-style), tolerant."""
    return tolerant_env(
        name, default, _parse_nonneg_int, expected="a non-negative integer"
    )


# --- graceful shutdown -----------------------------------------------------------

class ShutdownCoordinator:
    """Turns the first SIGINT/SIGTERM into a drain, the second into a kill.

    One instance per process (see :func:`get_coordinator`).  Nothing is
    installed until a CLI entry point calls :meth:`install` — library
    users keep Python's default signal behaviour, and the execution
    layer's ``BaseException`` handling covers a plain
    :class:`KeyboardInterrupt` with the same partial-progress merge.

    The handler never raises: it sets :attr:`requested` and returns, so
    the coordination loops (pool drain, per-experiment checks) decide
    *where* to stop.  That keeps the drain deterministic — a run that is
    already executing finishes and its result is flushed.
    """

    def __init__(self) -> None:
        self.requested = False
        self.signum: Optional[int] = None
        self.installed = False
        self._previous: Dict[int, object] = {}

    def install(self) -> "ShutdownCoordinator":
        """Install the SIGINT/SIGTERM handlers (main thread only)."""
        if self.installed:
            return self
        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                self._previous[sig] = signal.signal(sig, self._handle)
        except ValueError:
            # Not the main thread (embedded use): leave defaults alone.
            self._previous.clear()
            return self
        self.installed = True
        return self

    def uninstall(self) -> None:
        """Restore the previous handlers (tests, nested CLIs)."""
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, TypeError):
                pass
        self._previous.clear()
        self.installed = False

    def reset(self) -> None:
        """Clear the requested flag (tests; a fresh campaign)."""
        self.requested = False
        self.signum = None

    def _handle(self, signum, frame) -> None:
        if self.requested:
            # Second signal: the operator means it.  No cleanup — the
            # durability story never depends on orderly exit.
            os._exit(128 + signum)
        self.requested = True
        self.signum = signum
        get_registry().inc("resilience.shutdown_requested")
        print(
            f"[resilience] received signal {signum}: draining — no new "
            "runs will start; in-flight runs finish and completed "
            "results are flushed.  Signal again to force-quit.",
            file=sys.stderr,
        )

    def check(self) -> None:
        """Raise :class:`ShutdownRequested` if a drain was requested.

        Called between units of work (experiments, serial runs) so the
        stop lands at a clean boundary.
        """
        if self.requested:
            raise ShutdownRequested(
                "graceful shutdown requested "
                f"(signal {self.signum}); partial progress is flushed",
                signum=self.signum or 0,
            )


_COORDINATOR = ShutdownCoordinator()


def get_coordinator() -> ShutdownCoordinator:
    """The process-wide shutdown coordinator."""
    return _COORDINATOR


def install_shutdown_handlers() -> ShutdownCoordinator:
    """CLI entry helper: install and return the coordinator."""
    return get_coordinator().install()


# --- disk-space guard ------------------------------------------------------------

def _nearest_existing(path: str) -> str:
    """Walk up until a path ``shutil.disk_usage`` can stat."""
    probe = os.path.abspath(path)
    while probe and not os.path.exists(probe):
        parent = os.path.dirname(probe)
        if parent == probe:
            break
        probe = parent
    return probe or os.path.abspath(os.sep)


class DiskGuard:
    """Free-space gate for the persistence seams.

    :meth:`ok` answers "is it safe to write under ``path``?" from a
    cached verdict at most ``interval`` seconds old, so the hot flush
    path pays one monotonic read, not a statvfs, per call.  Crossing
    below the threshold warns once, bumps the
    ``resilience.resource_pressure`` counter and records the free-byte
    gauge; recovering clears the warning latch so a *new* episode warns
    again.  Writers that hit an ``ENOSPC``-shaped error call
    :meth:`note_failure` to force the low state immediately (the kernel
    is a better authority than statvfs).

    The store and the checkpointer skip writes while low — computation
    continues from memory and everything still pending is flushed once
    space recovers.
    """

    def __init__(
        self,
        min_free_bytes: Optional[int] = None,
        interval: Optional[float] = None,
    ) -> None:
        if min_free_bytes is None:
            min_free_bytes = int(
                env_float(MIN_FREE_ENV, DEFAULT_MIN_FREE_MB) * 1024 * 1024
            )
        if interval is None:
            interval = env_float(
                DISK_CHECK_INTERVAL_ENV, DEFAULT_DISK_CHECK_INTERVAL
            )
        self.min_free_bytes = min_free_bytes
        self.interval = interval
        self._cache: Dict[str, tuple] = {}  # path -> (checked_at, ok)
        self._warned_low = False

    def free_bytes(self, path: str) -> Optional[int]:
        """Free bytes on ``path``'s filesystem, or ``None`` if unknown."""
        try:
            return shutil.disk_usage(_nearest_existing(path)).free
        except OSError:
            return None

    def ok(self, path: str) -> bool:
        """True when writing under ``path`` is currently allowed."""
        if self.min_free_bytes <= 0:
            return True
        now = time.monotonic()
        cached = self._cache.get(path)
        if cached is not None and now - cached[0] < self.interval:
            return cached[1]
        free = self.free_bytes(path)
        verdict = free is None or free >= self.min_free_bytes
        self._record(path, verdict, free, now)
        return verdict

    def note_failure(self, path: str) -> None:
        """Force the low state after a real write failure (ENOSPC)."""
        self._record(path, False, None, time.monotonic())

    def _record(
        self, path: str, verdict: bool, free: Optional[int], now: float
    ) -> None:
        self._cache[path] = (now, verdict)
        registry = get_registry()
        if free is not None:
            registry.set_gauge("resilience.disk_free_bytes", float(free))
        if not verdict and not self._warned_low:
            self._warned_low = True
            registry.inc("resilience.resource_pressure")
            where = f" ({free // (1024 * 1024)} MB free)" if free else ""
            warnings.warn(
                f"disk guard: free space under {path}{where} is below the "
                f"{self.min_free_bytes // (1024 * 1024)} MB threshold "
                f"({MIN_FREE_ENV}); cache shards and checkpoints are "
                "paused — computation continues, pending records flush "
                "once space recovers"
            )
        elif verdict and self._warned_low:
            self._warned_low = False


_DISK_GUARD: Optional[DiskGuard] = None


def get_disk_guard() -> DiskGuard:
    """The process-wide disk guard (thresholds from the environment)."""
    global _DISK_GUARD
    if _DISK_GUARD is None:
        _DISK_GUARD = DiskGuard()
    return _DISK_GUARD


def reset_disk_guard() -> None:
    """Drop the singleton so the next use re-reads the environment."""
    global _DISK_GUARD
    _DISK_GUARD = None


def preflight_disk(*paths: Optional[str]) -> bool:
    """Check free space under every given path before a campaign starts.

    Returns False (after warning) when any target is already below the
    threshold — callers proceed anyway, degraded, matching the periodic
    guard's behaviour.
    """
    guard = get_disk_guard()
    verdict = True
    for path in paths:
        if path:
            verdict = guard.ok(path) and verdict
    return verdict


# --- per-worker memory ceiling ---------------------------------------------------

_SIZE_SUFFIXES = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3, "t": 1024 ** 4}


def parse_size(text: str) -> Optional[int]:
    """Parse ``512M``/``2G``/``1048576`` into bytes; ``None`` on garbage."""
    raw = text.strip().lower()
    if not raw:
        return None
    scale = 1
    if raw[-1] in _SIZE_SUFFIXES:
        scale = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        return None
    if value <= 0:
        return None
    return int(value * scale)


def apply_memory_limit(env: Optional[str] = None) -> Optional[int]:
    """Cap this process's address space from ``REPRO_MAX_RSS``.

    Returns the limit applied in bytes, or ``None`` when unset, garbage
    (warns) or unsupported on the platform.  Applied in CLI entry
    points and in every pool worker (via the pool initializer), so one
    pathological run raises :class:`MemoryError` inside its own worker —
    which the execution layer records as a non-retryable outcome —
    instead of triggering the OOM killer and a pool death.
    """
    raw = env if env is not None else os.environ.get(MAX_RSS_ENV)
    limit = parse_tolerant(
        MAX_RSS_ENV, raw, None, parse_size,
        expected="a size (try 512M, 2G)",
    )
    if limit is None:
        return None
    try:
        import resource
    except ImportError:  # non-POSIX platform
        warnings.warn(
            f"{MAX_RSS_ENV} set but the resource module is unavailable; "
            "no memory limit applied"
        )
        return None
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (OSError, ValueError) as error:
        warnings.warn(f"cannot apply {MAX_RSS_ENV}={raw!r}: {error}")
        return None
    return limit


# --- per-config circuit breaker --------------------------------------------------

class CircuitBreaker:
    """Skip configs whose manifest shows a streak of terminal failures.

    Reads the append-only failure manifest shards
    (``results/failures/<shard>.jsonl``) and counts, per run key, the
    failure records (``failed``/``timeout``/``oom``) since the last
    ``ok`` record; ``interrupted`` and ``skipped`` records do not count
    — being drained by a SIGTERM says nothing about the config.  A key
    whose streak reaches ``threshold`` is *tripped*: ``--keep-going``
    batches skip it (status ``skipped``, zero attempts) instead of
    burning the retry budget on a deterministically-broken spec, until
    ``--retry-quarantined`` forces a re-run — whose success appends an
    ``ok`` record and closes the breaker again.

    Counting is load-time only (manifests are small, appends are
    chronological per shard); the breaker holds no open file handles.
    """

    def __init__(self, root: Optional[str], threshold: Optional[int] = None):
        self.root = root
        self.threshold = (
            threshold if threshold is not None else breaker_threshold()
        )
        self._streaks: Optional[Dict[str, int]] = None

    @property
    def enabled(self) -> bool:
        return bool(self.root) and self.threshold > 0

    def _load(self) -> Dict[str, int]:
        if self._streaks is not None:
            return self._streaks
        streaks: Dict[str, int] = {}
        if self.enabled and os.path.isdir(self.root):
            for fname in sorted(os.listdir(self.root)):
                if not fname.endswith(".jsonl"):
                    continue
                self._scan(os.path.join(self.root, fname), streaks)
        self._streaks = streaks
        return streaks

    def _scan(self, path: str, streaks: Dict[str, int]) -> None:
        try:
            with open(path) as fh:
                raw_lines = fh.readlines()
        except OSError as error:
            warnings.warn(f"circuit breaker: cannot read {path}: {error}")
            return
        for line in raw_lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated trailing line: append-only contract
            if not isinstance(record, dict):
                continue
            key = record.get("key")
            status = record.get("status")
            if not isinstance(key, str):
                continue
            if status == _BREAKER_RESET_STATUS:
                streaks[key] = 0
            elif status == _BREAKER_STREAK_STATUS:
                # A manifest rotation (repro.analysis.faults) compacted
                # this key's history to its consecutive-failure count;
                # seed the streak from it so semantics survive rotation.
                count = record.get("count")
                if isinstance(count, int) and not isinstance(count, bool):
                    streaks[key] = max(0, count)
            elif status in _BREAKER_FAILURE_STATUSES:
                streaks[key] = streaks.get(key, 0) + 1

    def consecutive_failures(self, key: str) -> int:
        """Terminal failures recorded for ``key`` since its last success."""
        return self._load().get(key, 0)

    def tripped(self, key: str) -> bool:
        """True when ``key`` should be skipped (streak >= threshold)."""
        return (
            self.enabled
            and self.consecutive_failures(key) >= self.threshold
        )

    def tripped_keys(self, keys: Iterable[str]) -> list:
        return [key for key in keys if self.tripped(key)]


def breaker_threshold(default: int = DEFAULT_BREAKER_THRESHOLD) -> int:
    """Threshold from ``REPRO_BREAKER_THRESHOLD`` (0 disables), tolerant."""
    return env_int(BREAKER_THRESHOLD_ENV, default)

"""Sieve-style stratified kernel sampling (Naderan-Tahan et al. [47]).

The paper traces MLPerf workloads with tens of thousands of kernel
invocations and uses the *Sieve* methodology to pick representative
invocations: kernels are grouped into strata by execution signature, one
representative is simulated per stratum, and each representative's
contribution is weighted by its stratum's total work.

This module provides the same facility for this repository's traces:

>>> plan = sieve_sample(workload, max_strata=4)
>>> reduced = plan.reduced_workload()        # simulate this instead
>>> est = plan.estimate_cycles({...})        # weight results back up

Stratification uses the kernels' static signature (warp instructions,
memory accesses, access density) with a deterministic 1-D quantile
clustering — no randomness, no training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import math

from repro.exceptions import TraceError
from repro.trace.kernel import KernelTrace, WorkloadTrace


@dataclass(frozen=True)
class KernelSignature:
    """Static per-kernel execution signature used for stratification."""

    index: int
    name: str
    warp_instructions: int
    accesses: int

    @property
    def access_density(self) -> float:
        if self.warp_instructions == 0:
            return 0.0
        return self.accesses / self.warp_instructions

    def feature(self) -> float:
        """1-D stratification feature: log-work x density blend."""
        work = math.log2(max(1, self.warp_instructions))
        return work + self.access_density


@dataclass
class SievePlan:
    """A stratified sampling plan over one workload's kernels."""

    workload: WorkloadTrace
    signatures: List[KernelSignature]
    strata: List[List[int]]            # kernel indices per stratum
    representatives: List[int]         # one kernel index per stratum

    @property
    def weights(self) -> List[float]:
        """Work-share weight of each representative's stratum."""
        total = sum(s.warp_instructions for s in self.signatures)
        out = []
        for members in self.strata:
            stratum_work = sum(
                self.signatures[i].warp_instructions for i in members
            )
            out.append(stratum_work / total if total else 0.0)
        return out

    def reduced_workload(self) -> WorkloadTrace:
        """A workload containing only the representative kernels."""
        kernels = [self.workload.kernels[i] for i in self.representatives]
        return WorkloadTrace(
            name=f"{self.workload.name}-sieve",
            kernels=kernels,
            footprint_bytes=self.workload.footprint_bytes,
            metadata={**self.workload.metadata, "sieve": True},
        )

    def estimate_cycles(self, representative_cycles: Mapping[int, float]) -> float:
        """Scale representative cycle counts back to the full workload.

        ``representative_cycles`` maps kernel index (as in
        :attr:`representatives`) to its simulated cycle count; each is
        scaled by its stratum's work relative to the representative's own.
        """
        total = 0.0
        for members, rep in zip(self.strata, self.representatives):
            if rep not in representative_cycles:
                raise TraceError(f"missing cycles for representative {rep}")
            rep_work = self.signatures[rep].warp_instructions
            stratum_work = sum(
                self.signatures[i].warp_instructions for i in members
            )
            scale = stratum_work / rep_work if rep_work else 0.0
            total += representative_cycles[rep] * scale
        return total

    @property
    def reduction_factor(self) -> float:
        """Simulated-work reduction of the plan (>= 1)."""
        total = sum(s.warp_instructions for s in self.signatures)
        kept = sum(
            self.signatures[i].warp_instructions for i in self.representatives
        )
        return total / kept if kept else float("inf")


def kernel_signature(index: int, kernel: KernelTrace) -> KernelSignature:
    """Compute one kernel's signature by walking its CTAs once."""
    instructions = 0
    accesses = 0
    for cta in kernel.iter_ctas():
        instructions += cta.warp_instructions
        accesses += cta.num_accesses
    return KernelSignature(
        index=index,
        name=kernel.name,
        warp_instructions=instructions,
        accesses=accesses,
    )


def sieve_sample(workload: WorkloadTrace, max_strata: int = 4) -> SievePlan:
    """Build a stratified sampling plan with at most ``max_strata`` strata.

    Kernels are ordered by their 1-D feature and cut into equal-width
    quantile strata; the kernel with the largest work inside each stratum
    becomes its representative (it dominates the stratum's contribution).
    """
    if max_strata < 1:
        raise TraceError(f"max_strata must be >= 1, got {max_strata}")
    signatures = [
        kernel_signature(i, k) for i, k in enumerate(workload.kernels)
    ]
    order = sorted(range(len(signatures)), key=lambda i: signatures[i].feature())
    num_strata = min(max_strata, len(order))
    strata: List[List[int]] = [[] for __ in range(num_strata)]
    for rank, idx in enumerate(order):
        strata[rank * num_strata // len(order)].append(idx)
    strata = [s for s in strata if s]
    representatives = [
        max(members, key=lambda i: signatures[i].warp_instructions)
        for members in strata
    ]
    return SievePlan(
        workload=workload,
        signatures=signatures,
        strata=strata,
        representatives=representatives,
    )

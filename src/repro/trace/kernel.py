"""Trace data types: warp, CTA, kernel and workload."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from repro.exceptions import TraceError


@dataclass
class WarpTrace:
    """The execution trace of one warp.

    ``compute[i]`` warp instructions execute before memory access ``i``
    touches line ``lines[i]``; ``tail_compute`` warp instructions run after
    the final access.  All counts are *warp* instructions (multiply by the
    threads-per-warp of the machine to get thread instructions).

    ``start_offset`` is a launch delay in cycles before the warp issues its
    first instruction (scheduler and launch-overhead stagger).  It executes
    no instructions and is invisible to functional (MRC) replay.
    """

    compute: List[int]
    lines: List[int]
    tail_compute: int = 0
    start_offset: float = 0.0

    def __post_init__(self) -> None:
        if len(self.compute) != len(self.lines):
            raise TraceError(
                f"compute ({len(self.compute)}) and lines ({len(self.lines)}) "
                "must have equal length"
            )
        if self.tail_compute < 0:
            raise TraceError(f"tail_compute must be >= 0, got {self.tail_compute}")
        if self.start_offset < 0:
            raise TraceError(f"start_offset must be >= 0, got {self.start_offset}")

    @property
    def num_accesses(self) -> int:
        return len(self.lines)

    @property
    def warp_instructions(self) -> int:
        """Total warp instructions: compute bursts + memory instructions."""
        return sum(self.compute) + len(self.lines) + self.tail_compute


@dataclass
class CTATrace:
    """One cooperative thread array: a list of warp traces."""

    cta_id: int
    warps: List[WarpTrace]

    def __post_init__(self) -> None:
        if not self.warps:
            raise TraceError(f"CTA {self.cta_id} has no warps")

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def warp_instructions(self) -> int:
        return sum(w.warp_instructions for w in self.warps)

    @property
    def num_accesses(self) -> int:
        return sum(w.num_accesses for w in self.warps)


@dataclass
class KernelTrace:
    """A kernel launch: ``num_ctas`` CTAs built on demand.

    ``build_cta`` must be deterministic in ``cta_id``; simulators may call
    it multiple times (timing run, MRC collection) and rely on identical
    results.
    """

    name: str
    num_ctas: int
    threads_per_cta: int
    build_cta: Callable[[int], CTATrace]

    def __post_init__(self) -> None:
        if self.num_ctas < 1:
            raise TraceError(f"kernel {self.name}: num_ctas must be >= 1")
        if self.threads_per_cta < 1:
            raise TraceError(f"kernel {self.name}: threads_per_cta must be >= 1")

    @property
    def warps_per_cta(self) -> int:
        return max(1, self.threads_per_cta // 32)

    def iter_ctas(self) -> Iterator[CTATrace]:
        for cta_id in range(self.num_ctas):
            yield self.build_cta(cta_id)


@dataclass
class WorkloadTrace:
    """A full benchmark run: kernels executed back to back."""

    name: str
    kernels: List[KernelTrace]
    footprint_bytes: int = 0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kernels:
            raise TraceError(f"workload {self.name} has no kernels")

    @property
    def num_ctas(self) -> int:
        return sum(k.num_ctas for k in self.kernels)

    def count_instructions(self, threads_per_warp: int = 32) -> int:
        """Total thread instructions; walks every CTA (use on small traces)."""
        total = 0
        for kernel in self.kernels:
            for cta in kernel.iter_ctas():
                total += cta.warp_instructions
        return total * threads_per_warp

    def count_accesses(self) -> int:
        """Total warp-level memory accesses; walks every CTA."""
        total = 0
        for kernel in self.kernels:
            for cta in kernel.iter_ctas():
                total += cta.num_accesses
        return total

    def iter_accesses(self) -> Iterator[int]:
        """All line addresses in CTA-then-warp program order.

        This is the *unshuffled* stream; the MRC collector applies its own
        interleaving model (see :mod:`repro.mrc.interleave`).
        """
        for kernel in self.kernels:
            for cta in kernel.iter_ctas():
                for warp in cta.warps:
                    for line in warp.lines:
                        yield line

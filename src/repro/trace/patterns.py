"""Address-pattern generators.

Each generator returns a numpy array of cache-line numbers.  The
benchmark miniatures in :mod:`repro.workloads` compose these primitives to
match the published footprint, reuse and sharing behaviour of each
benchmark:

* :func:`sequential` — streaming, no temporal reuse (cold misses only);
* :func:`cyclic_sweep` — repeated passes over a working set; under LRU this
  produces the textbook cliff at the working-set size, the mechanism behind
  the paper's super-linearly scaling workloads (dct, fwt, ...);
* :func:`uniform_random` — uniform references in a region, giving a smooth,
  gradually decaying miss-rate curve (bfs-like);
* :func:`zipf` — skewed popularity, concave miss-rate curve;
* :func:`strided` — fixed-stride walks;
* :func:`stencil_rows` — neighbour reuse along rows (stencil codes);
* :func:`pointer_chase_tree` — root-to-leaf walks in a B-tree-like
  structure whose top levels are shared and hot (camping on LLC slices);
* :func:`hot_cold` — a mix of hot shared lines and cold private lines.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TraceError


def _check_positive(**kwargs: int) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise TraceError(f"{name} must be positive, got {value}")


def sequential(start: int, count: int, stride: int = 1) -> np.ndarray:
    """``count`` line addresses starting at ``start`` with a fixed stride."""
    _check_positive(count=count)
    if stride == 0:
        raise TraceError("stride must be non-zero")
    return start + stride * np.arange(count, dtype=np.int64)


def strided(start: int, count: int, stride: int) -> np.ndarray:
    """Alias of :func:`sequential` with a mandatory stride argument."""
    return sequential(start, count, stride)


def cyclic_sweep(base: int, ws_lines: int, count: int, offset: int = 0) -> np.ndarray:
    """Repeated in-order passes over a working set of ``ws_lines`` lines.

    Under LRU a cyclic sweep yields 0% hits while the cache is smaller than
    the working set and ~100% hits (after warm-up) once it fits — a sharp
    miss-rate cliff exactly at the working-set size.
    """
    _check_positive(ws_lines=ws_lines, count=count)
    idx = (offset + np.arange(count, dtype=np.int64)) % ws_lines
    return base + idx


def uniform_random(
    base: int, ws_lines: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly random references within a region of ``ws_lines`` lines."""
    _check_positive(ws_lines=ws_lines, count=count)
    return base + rng.integers(0, ws_lines, size=count, dtype=np.int64)


def zipf(
    base: int,
    ws_lines: int,
    count: int,
    rng: np.random.Generator,
    exponent: float = 1.2,
) -> np.ndarray:
    """Zipf-distributed references: line ``k`` has weight ``(k+1)**-exponent``.

    A random per-call permutation would break determinism of repeated
    builds, so popularity rank equals line index; callers who want hot
    lines spread across LLC slices should pass a scattered ``base`` or
    post-process.
    """
    _check_positive(ws_lines=ws_lines, count=count)
    if exponent <= 0:
        raise TraceError(f"zipf exponent must be positive, got {exponent}")
    ranks = np.arange(1, ws_lines + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    return base + rng.choice(ws_lines, size=count, p=weights).astype(np.int64)


def stencil_rows(
    base: int,
    row_lines: int,
    num_rows: int,
    count: int,
    offset_row: int = 0,
) -> np.ndarray:
    """Row-sweep with neighbour reuse: each step touches the line above.

    Models 2D stencils (hotspot, srad): the sweep reads row ``r`` and row
    ``r-1``, so each line is reused once with a short reuse distance
    (captured by a cache of about one row).
    """
    _check_positive(row_lines=row_lines, num_rows=num_rows, count=count)
    pos = np.arange(count, dtype=np.int64)
    row = (offset_row + pos // (2 * row_lines)) % num_rows
    col = (pos // 2) % row_lines
    is_north = pos % 2 == 1
    north_row = np.where(row > 0, row - 1, row)
    eff_row = np.where(is_north, north_row, row)
    return base + eff_row * row_lines + col


def pointer_chase_tree(
    base: int,
    levels: int,
    fanout: int,
    walks: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Root-to-leaf walks: level ``k`` holds ``fanout**k`` one-line nodes.

    The root and top levels are touched by every walk — the shared hot
    data that causes LLC-slice camping in B-tree style workloads.
    """
    _check_positive(levels=levels, fanout=fanout, walks=walks)
    out = np.empty(walks * levels, dtype=np.int64)
    level_base = np.zeros(levels, dtype=np.int64)
    acc = 0
    for level in range(levels):
        level_base[level] = acc
        acc += fanout**level
    node = np.zeros(walks, dtype=np.int64)
    for level in range(levels):
        out[level::levels] = base + level_base[level] + node
        if level + 1 < levels:
            node = node * fanout + rng.integers(0, fanout, size=walks, dtype=np.int64)
    return out


def hot_cold(
    hot_base: int,
    hot_lines: int,
    cold_base: int,
    cold_lines: int,
    count: int,
    hot_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mix of hot shared lines and a cold streaming region.

    ``hot_fraction`` of references go to the hot region (uniform over
    ``hot_lines``); the rest stream sequentially through the cold region.
    """
    _check_positive(hot_lines=hot_lines, cold_lines=cold_lines, count=count)
    if not 0.0 <= hot_fraction <= 1.0:
        raise TraceError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    is_hot = rng.random(count) < hot_fraction
    hot = hot_base + rng.integers(0, hot_lines, size=count, dtype=np.int64)
    cold_idx = np.cumsum(~is_hot) - 1
    cold = cold_base + np.mod(cold_idx, cold_lines, dtype=np.int64)
    return np.where(is_hot, hot, cold)


def interleave_compute(
    num_accesses: int,
    mean_compute: float,
    rng: np.random.Generator,
    jitter: float = 0.25,
) -> np.ndarray:
    """Per-access compute-burst lengths around ``mean_compute`` instructions.

    Jitter decorrelates warps so they do not issue memory in lockstep;
    bursts are clamped to be non-negative integers.
    """
    if num_accesses <= 0:
        raise TraceError(f"num_accesses must be positive, got {num_accesses}")
    if mean_compute < 0:
        raise TraceError(f"mean_compute must be >= 0, got {mean_compute}")
    if jitter <= 0:
        return np.full(num_accesses, int(round(mean_compute)), dtype=np.int64)
    low = mean_compute * (1.0 - jitter)
    high = mean_compute * (1.0 + jitter)
    bursts = rng.uniform(low, high, size=num_accesses)
    return np.maximum(0, np.rint(bursts)).astype(np.int64)

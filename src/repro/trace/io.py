"""Trace serialization: save/load workload traces as ``.npz`` bundles.

The paper's artifact distributes pre-collected traces and results so the
prediction step can run without re-simulation; this module provides the
same capability for this repository's traces.  A saved trace is a single
compressed ``.npz`` holding flattened per-warp arrays plus an index, and
loads back into a :class:`~repro.trace.kernel.WorkloadTrace` whose
``build_cta`` slices the arrays (no re-generation, identical replay).
"""

from __future__ import annotations

import hashlib
import json
from typing import List

import numpy as np

from repro.exceptions import TraceError
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace

FORMAT_VERSION = 1


def save_trace(workload: WorkloadTrace, path: str) -> None:
    """Materialize every CTA of ``workload`` and write it to ``path``."""
    lines: List[np.ndarray] = []
    compute: List[np.ndarray] = []
    warp_lengths: List[int] = []
    warp_tails: List[int] = []
    warp_offsets: List[float] = []
    cta_warp_counts: List[int] = []
    kernel_meta = []
    for kernel in workload.kernels:
        kernel_meta.append(
            {
                "name": kernel.name,
                "num_ctas": kernel.num_ctas,
                "threads_per_cta": kernel.threads_per_cta,
            }
        )
        for cta in kernel.iter_ctas():
            cta_warp_counts.append(cta.num_warps)
            for warp in cta.warps:
                lines.append(np.asarray(warp.lines, dtype=np.int64))
                compute.append(np.asarray(warp.compute, dtype=np.int64))
                warp_lengths.append(warp.num_accesses)
                warp_tails.append(warp.tail_compute)
                warp_offsets.append(warp.start_offset)
    header = {
        "version": FORMAT_VERSION,
        "name": workload.name,
        "footprint_bytes": workload.footprint_bytes,
        "metadata": _jsonable(workload.metadata),
        "kernels": kernel_meta,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        lines=np.concatenate(lines) if lines else np.empty(0, dtype=np.int64),
        compute=np.concatenate(compute) if compute else np.empty(0, dtype=np.int64),
        warp_lengths=np.asarray(warp_lengths, dtype=np.int64),
        warp_tails=np.asarray(warp_tails, dtype=np.int64),
        warp_offsets=np.asarray(warp_offsets, dtype=np.float64),
        cta_warp_counts=np.asarray(cta_warp_counts, dtype=np.int64),
    )


def load_trace(path: str) -> WorkloadTrace:
    """Load a trace bundle written by :func:`save_trace`."""
    with np.load(path) as data:
        header = json.loads(bytes(data["header"].tobytes()).decode())
        if header.get("version") != FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace format version "
                f"{header.get('version')!r}"
            )
        lines = data["lines"]
        compute = data["compute"]
        warp_lengths = data["warp_lengths"]
        warp_tails = data["warp_tails"]
        warp_offsets = data["warp_offsets"]
        cta_warp_counts = data["cta_warp_counts"]

    warp_ends = np.cumsum(warp_lengths)
    warp_starts = warp_ends - warp_lengths
    cta_warp_ends = np.cumsum(cta_warp_counts)
    cta_warp_starts = cta_warp_ends - cta_warp_counts

    kernels = []
    cta_base = 0
    for meta in header["kernels"]:
        num_ctas = int(meta["num_ctas"])

        def build_cta(cta_id: int, base=cta_base) -> CTATrace:
            index = base + cta_id
            warps = []
            for w in range(int(cta_warp_starts[index]), int(cta_warp_ends[index])):
                lo, hi = int(warp_starts[w]), int(warp_ends[w])
                warps.append(
                    WarpTrace(
                        compute[lo:hi].tolist(),
                        lines[lo:hi].tolist(),
                        tail_compute=int(warp_tails[w]),
                        start_offset=float(warp_offsets[w]),
                    )
                )
            return CTATrace(cta_id, warps)

        kernels.append(
            KernelTrace(
                name=meta["name"],
                num_ctas=num_ctas,
                threads_per_cta=int(meta["threads_per_cta"]),
                build_cta=build_cta,
            )
        )
        cta_base += num_ctas

    metadata = dict(header.get("metadata", {}))
    warm = metadata.get("warm_region")
    if warm is not None:
        metadata["warm_region"] = tuple(warm)
    return WorkloadTrace(
        name=header["name"],
        kernels=kernels,
        footprint_bytes=int(header.get("footprint_bytes", 0)),
        metadata=metadata,
    )


def _jsonable(metadata: dict) -> dict:
    out = {}
    for key, value in metadata.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        elif isinstance(value, (str, int, float, bool, list)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def trace_digest(workload: WorkloadTrace) -> str:
    """``sha256:<hex>`` over the full materialized trace content.

    Walks every CTA of every kernel (build on demand, nothing retained)
    and hashes the exact per-warp line/compute streams plus tails and
    launch offsets.  Two traces digest equally iff a simulator would
    replay identical streams — the determinism contract of
    :func:`repro.workloads.generators.build_trace` made checkable
    across processes and hosts.
    """
    hasher = hashlib.sha256()
    for kernel in workload.kernels:
        hasher.update(
            repr((kernel.name, kernel.num_ctas, kernel.threads_per_cta)).encode()
        )
        for cta in kernel.iter_ctas():
            for warp in cta.warps:
                hasher.update(np.asarray(warp.lines, dtype=np.int64).tobytes())
                hasher.update(np.asarray(warp.compute, dtype=np.int64).tobytes())
                hasher.update(
                    repr((warp.tail_compute, warp.start_offset)).encode()
                )
    return "sha256:" + hasher.hexdigest()

"""Workload traces: the interface between benchmarks and simulators.

A workload is a sequence of kernels; a kernel is a grid of CTAs; a CTA is
a handful of warps; a warp trace is an alternating sequence of compute
bursts and memory accesses at cache-line granularity.  Traces are built
lazily and deterministically — ``build_cta(cta_id)`` always returns the
same trace for the same spec and seed — so the timing simulator and the
miss-rate-curve collector replay identical streams without storing the
whole workload in memory.
"""

from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace
from repro.trace.sampling import SievePlan, sieve_sample
from repro.trace import patterns
from repro.trace.io import trace_digest

__all__ = [
    "WarpTrace",
    "CTATrace",
    "KernelTrace",
    "WorkloadTrace",
    "SievePlan",
    "sieve_sample",
    "patterns",
    "trace_digest",
]

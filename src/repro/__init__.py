"""repro — GPU Scale-Model Simulation (HPCA 2024), reproduced in Python.

The package rebuilds the paper's full stack:

* :mod:`repro.gpu` — an event-driven GPU timing simulator (the Accel-Sim
  stand-in) with proportional-resource-scaling configurations (Tables I,
  III, V) and a multi-chiplet extension;
* :mod:`repro.workloads` — synthetic miniatures of the 21 benchmarks of
  Table II and the weak-scaling inputs of Table IV;
* :mod:`repro.mrc` — miss-rate-curve collection (stack distances,
  StatStack, GPU interleaving model) and cliff/region analysis;
* :mod:`repro.core` — the scale-model predictor (Eqs. 1-4), the four
  baseline methods, and the end-to-end workflow of Figure 3;
* :mod:`repro.analysis` — runners that regenerate every table and figure
  of the paper's evaluation.

Quickstart::

    from repro import get_benchmark
    from repro.core import predict_strong_scaling

    study = predict_strong_scaling(get_benchmark("dct"))
    print(study.predictions["scale-model"][128], study.actuals[128])
"""

from repro.checkpoint import Checkpointer, CheckpointPolicy
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    PredictionError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.gpu import (
    GPUConfig,
    GPUSimulator,
    McmConfig,
    McmSimulator,
    SimulationResult,
    simulate,
    simulate_mcm,
)
from repro.mrc import MissRateCurve, analyze_regions, collect_miss_rate_curve
from repro.core import (
    PredictionResult,
    ScaleModelPredictor,
    ScaleModelProfile,
    predict_strong_scaling,
    predict_weak_scaling,
)
from repro.validate import validate_config, validate_trace
from repro.workloads import (
    STRONG_SCALING,
    WEAK_SCALING,
    BenchmarkSpec,
    ScalingBehavior,
    build_trace,
    get_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "TraceError",
    "PredictionError",
    "WorkloadError",
    "CheckpointError",
    # checkpointing & validation
    "CheckpointPolicy",
    "Checkpointer",
    "validate_config",
    "validate_trace",
    # gpu
    "GPUConfig",
    "McmConfig",
    "GPUSimulator",
    "McmSimulator",
    "SimulationResult",
    "simulate",
    "simulate_mcm",
    # mrc
    "MissRateCurve",
    "collect_miss_rate_curve",
    "analyze_regions",
    # core
    "ScaleModelPredictor",
    "ScaleModelProfile",
    "PredictionResult",
    "predict_strong_scaling",
    "predict_weak_scaling",
    # workloads
    "BenchmarkSpec",
    "ScalingBehavior",
    "STRONG_SCALING",
    "WEAK_SCALING",
    "build_trace",
    "get_benchmark",
]

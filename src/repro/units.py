"""Unit helpers shared across the simulator and the prediction core.

All byte quantities in the code base are plain integers in bytes, all
bandwidths are floats in bytes per second, and all clocks are floats in
hertz.  These helpers exist so that configuration code reads like the
paper's tables (``34 * MB``, ``2.7 * TBPS``) instead of raw powers of two.
"""

from __future__ import annotations

# --- capacity ---------------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# --- bandwidth (decimal, as vendor datasheets and the paper use) ------------
GBPS = 1e9
TBPS = 1e12

# --- frequency ---------------------------------------------------------------
MHZ = 1e6
GHZ = 1e9


def bytes_per_cycle(bandwidth_bps: float, clock_hz: float) -> float:
    """Convert a bandwidth in bytes/second into bytes per clock cycle."""
    if clock_hz <= 0:
        raise ValueError(f"clock must be positive, got {clock_hz}")
    return bandwidth_bps / clock_hz


def cycles_for_bytes(num_bytes: float, bandwidth_bps: float, clock_hz: float) -> float:
    """Cycles needed to move ``num_bytes`` over a link of the given bandwidth."""
    per_cycle = bytes_per_cycle(bandwidth_bps, clock_hz)
    if per_cycle <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    return num_bytes / per_cycle


def format_bytes(num_bytes: float) -> str:
    """Human-readable capacity string, e.g. ``34.0 MB`` or ``512 KB``."""
    if num_bytes >= GB:
        return f"{num_bytes / GB:g} GB"
    if num_bytes >= MB:
        return f"{num_bytes / MB:g} MB"
    if num_bytes >= KB:
        return f"{num_bytes / KB:g} KB"
    return f"{num_bytes:g} B"


def format_bandwidth(bps: float) -> str:
    """Human-readable bandwidth string, e.g. ``2.7 TB/s`` or ``145 GB/s``."""
    if bps >= TBPS:
        return f"{bps / TBPS:g} TB/s"
    return f"{bps / GBPS:g} GB/s"

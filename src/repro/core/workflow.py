"""The end-to-end scale-model simulation workflow (Figure 3).

Strong scaling: simulate the two scale models (detailed timing), collect
the miss-rate curve (functional, one-time cost), predict every target.
Weak scaling: simulate the scale models with proportionally scaled inputs;
no miss-rate curve is needed because the working set scales with the
system and no cliff can occur.

The heavy steps are injected as callables so callers can swap in cached
runners (see :mod:`repro.analysis.runner`) or fakes in tests:

* ``simulate_fn(num_sms, work_scale) -> SimulationResult``
* ``mrc_fn() -> MissRateCurve``

Passing ``runner=`` (a :class:`repro.analysis.runner.CachedRunner`)
instead derives both callables from the cache, enumerates the study's
runs up front and submits them as one batch, so misses execute across
the runner's worker pool.  A runner-backed workflow also inherits the
runner's fault tolerance and checkpoint/resume behaviour: long timing
runs snapshot at kernel boundaries and a retried run resumes from its
latest valid snapshot (see :mod:`repro.checkpoint`), so a crashed
workflow invocation re-run with the same cache loses at most one
kernel's worth of simulation per in-flight run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.core.baselines import METHOD_NAMES, make_predictor
from repro.core.model import ScaleModelPredictor
from repro.core.profile import ScaleModelProfile
from repro.exceptions import ExecutionError, PredictionError
from repro.gpu import GPUConfig, simulate
from repro.gpu.results import SimulationResult
from repro.mrc import MissRateCurve, collect_miss_rate_curve
from repro.workloads import build_trace
from repro.workloads.spec import BenchmarkSpec


@dataclass
class ScaleModelStudy:
    """All predictions (every method) for one workload and scenario."""

    workload: str
    scenario: str
    scale_sizes: Sequence[int]
    target_sizes: Sequence[int]
    profile: ScaleModelProfile
    predictions: Dict[str, Dict[int, float]] = field(default_factory=dict)
    actuals: Dict[int, float] = field(default_factory=dict)

    def errors(self, method: str) -> Dict[int, float]:
        """Relative errors per target size (requires actuals)."""
        if method not in self.predictions:
            raise PredictionError(
                f"{self.workload}: no predictions for {method!r}"
            )
        if not self.actuals:
            raise PredictionError(f"{self.workload}: no actuals recorded")
        out = {}
        for size, predicted in self.predictions[method].items():
            actual = self.actuals.get(size)
            if actual is None:
                continue
            out[size] = abs(predicted - actual) / actual
        return out


def _wire_runner(
    spec: BenchmarkSpec,
    runner,
    simulate_fn: Optional[Callable],
    mrc_fn: Optional[Callable],
    sizes: Sequence[int],
    base_size: Optional[int],
    want_mrc: bool,
) -> tuple:
    """Derive the workflow callables from a cached runner and prefetch.

    ``base_size=None`` selects strong scaling (work_scale 1 everywhere);
    otherwise the weak-scaling ``n / base_size`` rule applies.
    """
    # Deferred: repro.core must stay importable without repro.analysis.
    from repro.analysis.parallel import RunRequest

    def scale_of(n: int) -> float:
        return 1.0 if base_size is None else n / base_size

    if simulate_fn is None:
        def simulate_fn(num_sms: int, work_scale: float) -> SimulationResult:
            return runner.simulate(spec, num_sms, work_scale=work_scale)

    if want_mrc and mrc_fn is None:
        def mrc_fn() -> MissRateCurve:
            return runner.miss_rate_curve(spec)

    requests = [
        RunRequest("sim", spec, size=n, work_scale=scale_of(n))
        for n in sorted(set(sizes))
    ]
    if want_mrc:
        requests.append(RunRequest("mrc", spec))
    prefetch = getattr(runner, "prefetch", None)
    if prefetch is not None:
        # The prefetch is an optimization: it fans cache misses across a
        # worker pool.  If the batch fails (worker faults, timeouts), the
        # completed results are already merged into the store, so the
        # study can still proceed — the lazy in-process path below
        # recomputes whatever is missing and surfaces the underlying
        # error only if the run fails deterministically.
        try:
            prefetch(requests)
        except ExecutionError as error:
            warnings.warn(
                f"{spec.abbr}: parallel prefetch failed ({error}); "
                "continuing with in-process execution for the missing runs"
            )
    return simulate_fn, mrc_fn


def _default_simulate(spec: BenchmarkSpec, scenario: str) -> Callable:
    def run(num_sms: int, work_scale: float) -> SimulationResult:
        config = GPUConfig.paper_system(num_sms)
        trace = build_trace(
            spec, work_scale=work_scale, capacity_scale=config.capacity_scale
        )
        return simulate(config, trace)

    return run


def _run_all_methods(
    profile: ScaleModelProfile,
    target_sizes: Sequence[int],
) -> Dict[str, Dict[int, float]]:
    predictions: Dict[str, Dict[int, float]] = {}
    scale_model = ScaleModelPredictor(profile)
    predictions["scale-model"] = {
        t: scale_model.predict(t).ipc for t in target_sizes
    }
    for name in METHOD_NAMES:
        if name == "scale-model":
            continue
        baseline = make_predictor(name).fit(profile.sizes, profile.ipcs)
        predictions[name] = {t: baseline.predict(t) for t in target_sizes}
    return predictions


def predict_strong_scaling(
    spec: BenchmarkSpec,
    scale_sizes: Sequence[int] = (8, 16),
    target_sizes: Sequence[int] = (32, 64, 128),
    simulate_fn: Optional[Callable] = None,
    mrc_fn: Optional[Callable] = None,
    include_actuals: bool = True,
    runner=None,
) -> ScaleModelStudy:
    """Run the full strong-scaling workflow for one benchmark."""
    if max(scale_sizes) > min(target_sizes):
        raise PredictionError(
            f"scale models {scale_sizes} must be smaller than targets {target_sizes}"
        )
    if runner is not None:
        sizes = list(scale_sizes) + (list(target_sizes) if include_actuals else [])
        simulate_fn, mrc_fn = _wire_runner(
            spec, runner, simulate_fn, mrc_fn, sizes, None, want_mrc=True
        )
    run = simulate_fn or _default_simulate(spec, "strong")
    results = {n: run(n, 1.0) for n in scale_sizes}
    if mrc_fn is None:
        config = GPUConfig.paper_baseline()
        trace = build_trace(spec, capacity_scale=config.capacity_scale)
        curve = collect_miss_rate_curve(trace, config=config)
    else:
        curve = mrc_fn()
    largest = max(scale_sizes)
    profile = ScaleModelProfile(
        workload=spec.abbr,
        sizes=tuple(sorted(scale_sizes)),
        ipcs=tuple(results[n].ipc for n in sorted(scale_sizes)),
        f_mem=results[largest].memory_stall_fraction,
        curve=curve,
    )
    study = ScaleModelStudy(
        workload=spec.abbr,
        scenario="strong",
        scale_sizes=tuple(scale_sizes),
        target_sizes=tuple(target_sizes),
        profile=profile,
        predictions=_run_all_methods(profile, target_sizes),
    )
    if include_actuals:
        for t in target_sizes:
            study.actuals[t] = run(t, 1.0).ipc
    return study


def predict_weak_scaling(
    spec: BenchmarkSpec,
    scale_sizes: Sequence[int] = (8, 16),
    target_sizes: Sequence[int] = (32, 64, 128),
    base_size: int = 8,
    simulate_fn: Optional[Callable] = None,
    include_actuals: bool = True,
    runner=None,
) -> ScaleModelStudy:
    """Run the weak-scaling workflow: inputs scale with system size and
    the miss-rate curve is unnecessary (pre-cliff by construction)."""
    if not spec.weak_scalable:
        raise PredictionError(f"{spec.abbr} has no weak-scaling inputs")
    if runner is not None:
        sizes = list(scale_sizes) + (list(target_sizes) if include_actuals else [])
        simulate_fn, __ = _wire_runner(
            spec, runner, simulate_fn, None, sizes, base_size, want_mrc=False
        )
    run = simulate_fn or _default_simulate(spec, "weak")
    results = {n: run(n, n / base_size) for n in scale_sizes}
    profile = ScaleModelProfile(
        workload=spec.abbr,
        sizes=tuple(sorted(scale_sizes)),
        ipcs=tuple(results[n].ipc for n in sorted(scale_sizes)),
        f_mem=results[max(scale_sizes)].memory_stall_fraction,
        curve=None,
    )
    study = ScaleModelStudy(
        workload=spec.abbr,
        scenario="weak",
        scale_sizes=tuple(scale_sizes),
        target_sizes=tuple(target_sizes),
        profile=profile,
        predictions=_run_all_methods(profile, target_sizes),
    )
    if include_actuals:
        for t in target_sizes:
            study.actuals[t] = run(t, t / base_size).ipc
    return study

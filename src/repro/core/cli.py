"""Artifact-style command-line prediction tool.

Mirrors the paper artifact's ``scaleModel.py``::

    gpu-scale-model <IPC_small> <IPC_large> <mpki_1> ... <mpki_N>

The first two values are the IPCs of the smallest and largest scale model;
the remaining N values are the miss-rate curve (MPKI) sampled at the scale
models and every target system, smallest to largest, each system twice the
previous one.  The tool predicts performance for every system beyond the
largest scale model and prints the comparison against logarithmic, linear
and power-law regression and proportional scaling.

Like the artifact, the smallest scale model's size is requested (flag
``--small-sms`` or interactive prompt), and ``f_mem`` — the fraction of
time the largest scale model cannot issue due to memory stalls — is
requested only when a cliff is detected (flag ``--f-mem`` or prompt).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.baselines import METHOD_NAMES, make_predictor
from repro.core.model import ScaleModelPredictor
from repro.core.profile import ScaleModelProfile
from repro.exceptions import PredictionError, ReproError
from repro.mrc.cliff import analyze_regions
from repro.mrc.curve import MissRateCurve
from repro.units import MB


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-scale-model",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("ipc_small", type=float, help="IPC of the smallest scale model")
    parser.add_argument("ipc_large", type=float, help="IPC of the largest scale model")
    parser.add_argument(
        "mpki",
        type=float,
        nargs="+",
        help="miss-rate curve: MPKI per system, smallest to largest",
    )
    parser.add_argument(
        "--small-sms",
        type=int,
        default=None,
        help="SMs (or chiplets) of the smallest scale model (prompted if omitted)",
    )
    parser.add_argument(
        "--f-mem",
        type=float,
        default=None,
        help="memory-stall fraction of the largest scale model (prompted "
        "only when a cliff is detected)",
    )
    parser.add_argument(
        "--llc-mb-per-sm",
        type=float,
        default=34.0 / 128.0,
        help="LLC capacity per SM in MB (default: the paper's 34 MB / 128 SMs)",
    )
    parser.add_argument("--plot", action="store_true", help="ASCII plot of the methods")
    return parser


def _prompt_float(label: str) -> float:
    value = input(f"{label}: ").strip()
    return float(value)


def run(args: argparse.Namespace, out=sys.stdout) -> int:
    if len(args.mpki) < 3:
        raise PredictionError(
            "need MPKI for at least the two scale models and one target"
        )
    if args.small_sms is None:
        args.small_sms = int(_prompt_float("Number of SMs of the smallest scale model"))
    if args.small_sms < 1:
        raise PredictionError("smallest scale model must have >= 1 SMs")

    sizes = [args.small_sms * (1 << i) for i in range(len(args.mpki))]
    capacities = [int(n * args.llc_mb_per_sm * MB) for n in sizes]
    curve = MissRateCurve(
        workload="cli",
        capacities_bytes=tuple(capacities),
        mpki=tuple(args.mpki),
    )
    analysis = analyze_regions(curve)
    f_mem: Optional[float] = args.f_mem
    if analysis.has_cliff and f_mem is None:
        f_mem = _prompt_float(
            "Cliff detected; fraction of time the largest scale model "
            "stalls on memory (f_mem)"
        )
    profile = ScaleModelProfile(
        workload="cli",
        sizes=(sizes[0], sizes[1]),
        ipcs=(args.ipc_small, args.ipc_large),
        f_mem=f_mem,
        curve=curve,
    )
    predictor = ScaleModelPredictor(profile)
    targets = sizes[2:]

    print(f"Measured IPC: {sizes[0]} SMs = {args.ipc_small:.1f}, "
          f"{sizes[1]} SMs = {args.ipc_large:.1f}", file=out)
    print(f"Correction factor C (Eq. 1): {profile.correction_factor():.3f}", file=out)
    if analysis.has_cliff:
        low, high = analysis.cliff_capacities
        print(
            f"Cliff detected between {low / MB:.2f} MB and {high / MB:.2f} MB",
            file=out,
        )
    else:
        print("No cliff detected (pre-cliff regime everywhere)", file=out)

    baselines = {
        name: make_predictor(name).fit(profile.sizes, profile.ipcs)
        for name in METHOD_NAMES
        if name != "scale-model"
    }
    header = f"{'#SMs':>6} {'scale-model':>12} " + " ".join(
        f"{name:>12}" for name in baselines
    )
    print(header, file=out)
    rows: List[List[float]] = []
    for target in targets:
        result = predictor.predict(target)
        row = [result.ipc] + [b.predict(target) for b in baselines.values()]
        rows.append(row)
        cells = " ".join(f"{v:12.1f}" for v in row)
        print(f"{target:>6} {cells}  [{result.region.value}]", file=out)

    if args.plot:
        from repro.analysis.ascii_plot import plot_series

        series = {"scale-model": [r[0] for r in rows]}
        for i, name in enumerate(baselines):
            series[name] = [r[i + 1] for r in rows]
        print(plot_series([float(t) for t in targets], series,
                          title="Predicted IPC vs system size",
                          x_label="#SMs"), file=out)
    return 0


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Scale-model performance profiles: the predictor's measured inputs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import PredictionError
from repro.mrc.curve import MissRateCurve


@dataclass(frozen=True)
class ScaleModelProfile:
    """Everything measured on the scale models for one workload.

    ``sizes`` and ``ipcs`` hold the two (or more) scale-model points in
    ascending size order.  ``f_mem`` is the memory-stall fraction of the
    *largest* scale model (needed only when a cliff must be crossed);
    ``curve`` is the LLC miss-rate curve (needed only under strong
    scaling).
    """

    workload: str
    sizes: Tuple[int, ...]
    ipcs: Tuple[float, ...]
    f_mem: Optional[float] = None
    curve: Optional[MissRateCurve] = None
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.ipcs):
            raise PredictionError("sizes and ipcs must have equal length")
        if len(self.sizes) < 2:
            raise PredictionError(
                f"{self.workload}: need at least two scale models, "
                f"got {len(self.sizes)}"
            )
        if any(b <= a for a, b in zip(self.sizes, self.sizes[1:])):
            raise PredictionError(f"sizes must be strictly increasing: {self.sizes}")
        if any(ipc <= 0 for ipc in self.ipcs):
            raise PredictionError(f"IPCs must be positive: {self.ipcs}")
        if self.f_mem is not None and not 0.0 <= self.f_mem < 1.0:
            raise PredictionError(
                f"f_mem must be in [0, 1), got {self.f_mem}"
            )

    @property
    def smallest(self) -> Tuple[int, float]:
        return self.sizes[0], self.ipcs[0]

    @property
    def largest(self) -> Tuple[int, float]:
        return self.sizes[-1], self.ipcs[-1]

    def correction_factor(self) -> float:
        """Eq. 1: deviation from ideal scaling between the two extremes."""
        (s, ipc_s), (l, ipc_l) = self.smallest, self.largest
        return (ipc_l / ipc_s) / (l / s)

"""Multi-cliff scale-model prediction (the paper's future-work sketch).

Section V-D: *"a workload may potentially exhibit multiple cliffs, as
different sets of the data set progressively fit inside the various cache
levels ... [this] could possibly be accounted for by estimating how each
cliff individually affects the respective memory stall fraction."*

This module implements that sketch.  The capacity axis is walked one
doubling at a time from the largest scale model to the target:

* a **pre/post-cliff step** multiplies performance by ``2 * C`` — the
  per-workload correction factor of Eq. 1 applied per doubling, which for
  a single step is exactly the paper's Eq. 2/Eq. 4 treatment;
* a **cliff step** multiplies performance by ``2 / (1 - f_mem * w_i)``
  where ``w_i`` is cliff *i*'s share of the total MPKI reduction — each
  cliff individually removes its share of the measured memory stall.
  With one cliff (``w = 1``) the walk reproduces Eqs. 2-4 exactly.

The walker degrades gracefully: with no cliffs anywhere it equals the
single-cliff predictor's pre-cliff chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.profile import ScaleModelProfile
from repro.exceptions import PredictionError
from repro.mrc.cliff import CLIFF_DROP_THRESHOLD, NEGLIGIBLE_MPKI
from repro.mrc.curve import MissRateCurve


@dataclass(frozen=True)
class CliffStep:
    """One qualifying miss-rate drop on the capacity axis."""

    step_index: int          # drop between capacities [i] and [i+1]
    capacity_before: int
    capacity_after: int
    mpki_before: float
    mpki_after: float

    @property
    def mpki_drop(self) -> float:
        return self.mpki_before - self.mpki_after


def find_all_cliffs(
    curve: MissRateCurve, threshold: float = CLIFF_DROP_THRESHOLD
) -> List[CliffStep]:
    """Every step whose MPKI shrinks by more than ``threshold``."""
    if threshold <= 1.0:
        raise PredictionError(f"threshold must exceed 1.0, got {threshold}")
    cliffs = []
    for i, ratio in enumerate(curve.drop_ratios()):
        if curve.mpki[i] <= NEGLIGIBLE_MPKI:
            continue
        if ratio > threshold:
            cliffs.append(
                CliffStep(
                    step_index=i,
                    capacity_before=curve.capacities_bytes[i],
                    capacity_after=curve.capacities_bytes[i + 1],
                    mpki_before=curve.mpki[i],
                    mpki_after=curve.mpki[i + 1],
                )
            )
    return cliffs


class MultiCliffPredictor:
    """Chained per-doubling prediction handling any number of cliffs."""

    def __init__(
        self,
        profile: ScaleModelProfile,
        capacity_per_unit: Optional[float] = None,
        threshold: float = CLIFF_DROP_THRESHOLD,
    ) -> None:
        if profile.curve is None:
            raise PredictionError(
                "multi-cliff prediction needs a miss-rate curve"
            )
        self.profile = profile
        self.curve = profile.curve
        self.cliffs = find_all_cliffs(self.curve, threshold)
        if capacity_per_unit is None:
            capacity_per_unit = (
                self.curve.capacities_bytes[0] / profile.sizes[0]
            )
        self.capacity_per_unit = capacity_per_unit
        total_drop = sum(c.mpki_drop for c in self.cliffs)
        self._stall_share: Dict[int, float] = {}
        for cliff in self.cliffs:
            self._stall_share[cliff.step_index] = (
                cliff.mpki_drop / total_drop if total_drop > 0 else 0.0
            )

    def stall_share(self, cliff: CliffStep) -> float:
        """Cliff's share ``w_i`` of the total MPKI reduction."""
        return self._stall_share[cliff.step_index]

    def _step_of_size(self, size: int) -> int:
        """Index of the sampled capacity belonging to a system size."""
        capacity = round(self.capacity_per_unit * size)
        caps = self.curve.capacities_bytes
        for i, cap in enumerate(caps):
            if abs(cap - capacity) <= max(1, cap // 50):
                return i
        raise PredictionError(
            f"size {size} maps to capacity {capacity}, which is not a "
            f"sampled point of the miss-rate curve {caps}"
        )

    def predict(self, target_size: int) -> Tuple[float, List[str]]:
        """Predicted IPC plus a human-readable step log."""
        profile = self.profile
        large_size, ipc = profile.largest
        if target_size < large_size:
            raise PredictionError(
                f"target ({target_size}) must be at least the largest "
                f"scale model ({large_size})"
            )
        f_mem = profile.f_mem
        correction = profile.correction_factor()
        start = self._step_of_size(large_size)
        end = self._step_of_size(target_size)
        cliff_at = {c.step_index: c for c in self.cliffs}
        log: List[str] = []
        for step in range(start, end):
            cliff = cliff_at.get(step)
            if cliff is not None:
                if f_mem is None:
                    raise PredictionError(
                        f"{profile.workload}: crossing a cliff requires f_mem"
                    )
                share = self.stall_share(cliff)
                relief = 1.0 / (1.0 - f_mem * share)
                ipc *= 2.0 * relief
                log.append(
                    f"step {step}: cliff (w={share:.2f}) -> x2 x{relief:.2f}"
                )
            else:
                ipc *= 2.0 * correction
                log.append(f"step {step}: smooth -> x2 x{correction:.2f}")
        return ipc, log

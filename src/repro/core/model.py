"""The scale-model predictor: Equations 1-4 of the paper."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import PredictionError
from repro.mrc.cliff import CliffAnalysis, Region, analyze_regions
from repro.core.profile import ScaleModelProfile
from repro.validate import degenerate_curve_reason


@dataclass(frozen=True)
class PredictionResult:
    """One target-system prediction."""

    workload: str
    target_size: int
    ipc: float
    region: Region
    correction_factor: float
    details: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ipc <= 0:
            raise PredictionError(
                f"{self.workload}@{self.target_size}: non-positive prediction"
            )


class ScaleModelPredictor:
    """Per-workload GPU scale-model prediction (Section V-C).

    The predictor is stateless beyond its inputs: no training phase, no
    cross-workload regression.  Capacities are assumed proportional to
    system size (the proportional-scaling design rule), so the LLC
    capacity of a size-``n`` system is ``capacity_per_unit * n``.

    When no miss-rate curve is supplied (the weak-scaling scenario, where
    the working set scales with the system and no cliff can occur), every
    target is treated as pre-cliff.
    """

    def __init__(
        self,
        profile: ScaleModelProfile,
        capacity_per_unit: Optional[float] = None,
    ) -> None:
        self.profile = profile
        curve = profile.curve
        if curve is not None:
            reason = degenerate_curve_reason(curve)
            if reason is not None:
                warnings.warn(
                    f"{profile.workload}: {reason}; degrading to "
                    "proportional scaling (Eq. 2)"
                )
                curve = None
        self.analysis: Optional[CliffAnalysis] = (
            analyze_regions(curve) if curve is not None else None
        )
        if curve is not None and capacity_per_unit is None:
            # Infer bytes-of-LLC per SM from the curve: under proportional
            # scaling the smallest sampled capacity belongs to the smallest
            # scale model.
            capacity_per_unit = (
                profile.curve.capacities_bytes[0] / profile.sizes[0]
            )
        self.capacity_per_unit = capacity_per_unit

    # --- helpers -----------------------------------------------------------
    def capacity_of(self, size: int) -> int:
        if self.capacity_per_unit is None:
            raise PredictionError(
                "capacity mapping unavailable; supply capacity_per_unit"
            )
        return round(self.capacity_per_unit * size)

    def _region_of(self, size: int) -> Region:
        if self.analysis is None:
            return Region.PRE_CLIFF
        return self.analysis.region_of(self.capacity_of(size))

    def _require_f_mem(self) -> float:
        if self.profile.f_mem is None:
            raise PredictionError(
                f"{self.profile.workload}: crossing the miss-rate cliff "
                "requires f_mem of the largest scale model (Eq. 3)"
            )
        return self.profile.f_mem

    # --- the model -----------------------------------------------------------
    def predict(self, target_size: int) -> PredictionResult:
        """Predict target-system IPC (Eqs. 2-4 by region)."""
        profile = self.profile
        large_size, ipc_l = profile.largest
        if target_size < large_size:
            raise PredictionError(
                f"target ({target_size}) must be at least as large as the "
                f"largest scale model ({large_size})"
            )
        correction = profile.correction_factor()
        region = self._region_of(target_size)

        if region is Region.PRE_CLIFF:
            # Eq. 2: performance keeps scaling as it did across the models.
            ipc = ipc_l * (target_size / large_size) * correction
            details = {"ipc_large": ipc_l, "scale": target_size / large_size}
        elif region is Region.CLIFF:
            # Eq. 3: crossing the cliff removes the memory-stall fraction.
            f_mem = self._require_f_mem()
            ipc = ipc_l * (target_size / large_size) / (1.0 - f_mem)
            details = {"f_mem": f_mem, "scale": target_size / large_size}
        else:
            # Eq. 4: extrapolate from the smallest post-... system beyond
            # the cliff, whose performance is itself an Eq. 3 prediction.
            f_mem = self._require_f_mem()
            cliff_size = self._first_size_beyond_cliff()
            ipc_k = ipc_l * (cliff_size / large_size) / (1.0 - f_mem)
            ipc = ipc_k * (target_size / cliff_size) * correction
            details = {
                "f_mem": f_mem,
                "anchor_size": float(cliff_size),
                "anchor_ipc": ipc_k,
            }
        return PredictionResult(
            workload=profile.workload,
            target_size=target_size,
            ipc=ipc,
            region=region,
            correction_factor=correction,
            details=details,
        )

    def predict_many(self, target_sizes: List[int]) -> List[PredictionResult]:
        return [self.predict(t) for t in sorted(target_sizes)]

    def _first_size_beyond_cliff(self) -> int:
        """System size whose LLC is the first capacity past the cliff."""
        assert self.analysis is not None and self.analysis.has_cliff
        __, first_after = self.analysis.cliff_capacities
        size = first_after / self.capacity_per_unit
        rounded = round(size)
        if rounded < 1:
            raise PredictionError(
                f"{self.profile.workload}: cliff capacity maps to size {size}"
            )
        return rounded

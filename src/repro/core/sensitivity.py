"""Input-sensitivity analysis for the scale-model predictor.

The predictor consumes three measured quantities — two scale-model IPCs
and (when a cliff must be crossed) the stall fraction ``f_mem`` — plus a
miss-rate curve that only matters through its *region* structure.  This
module quantifies how prediction responds to measurement error in each
input, answering the practical question "how accurate do my scale-model
simulations need to be?":

* IPC noise enters Eq. 1 multiplicatively: a relative error ``e`` on
  ``IPC_L`` moves a pre-cliff prediction by about ``(1 + e)^2 - 1``
  (it appears in both the anchor and the correction factor);
* ``f_mem`` error is amplified by ``1 / (1 - f_mem)`` — steeply so for
  heavily stalled scale models;
* MPKI noise only matters when it flips a region boundary (cliff
  appearing/disappearing), which :func:`region_stability` detects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.core.model import ScaleModelPredictor
from repro.core.profile import ScaleModelProfile
from repro.exceptions import PredictionError
from repro.mrc.cliff import analyze_regions
from repro.mrc.curve import MissRateCurve


@dataclass(frozen=True)
class SensitivityReport:
    """Relative prediction change per perturbed input."""

    target_size: int
    base_ipc: float
    sensitivities: Dict[str, Dict[float, float]]  # input -> {perturbation: delta}

    def worst_case(self, input_name: str) -> float:
        return max(abs(v) for v in self.sensitivities[input_name].values())

    def as_rows(self) -> List[List[str]]:
        rows = []
        for name, per_eps in sorted(self.sensitivities.items()):
            for eps, delta in sorted(per_eps.items()):
                rows.append([name, f"{eps:+.0%}", f"{delta:+.1%}"])
        return rows


def _perturbed_profile(
    profile: ScaleModelProfile,
    ipc_small_eps: float = 0.0,
    ipc_large_eps: float = 0.0,
    f_mem_eps: float = 0.0,
) -> ScaleModelProfile:
    ipcs = list(profile.ipcs)
    ipcs[0] *= 1.0 + ipc_small_eps
    ipcs[-1] *= 1.0 + ipc_large_eps
    f_mem = profile.f_mem
    if f_mem is not None:
        f_mem = min(0.999, max(0.0, f_mem * (1.0 + f_mem_eps)))
    return ScaleModelProfile(
        workload=profile.workload,
        sizes=profile.sizes,
        ipcs=tuple(ipcs),
        f_mem=f_mem,
        curve=profile.curve,
    )


def sensitivity_report(
    profile: ScaleModelProfile,
    target_size: int,
    perturbations: Sequence[float] = (-0.10, -0.05, 0.05, 0.10),
) -> SensitivityReport:
    """Relative prediction change for each perturbed input."""
    if not perturbations:
        raise PredictionError("need at least one perturbation level")
    base = ScaleModelPredictor(profile).predict(target_size).ipc
    out: Dict[str, Dict[float, float]] = {}
    for name, kwargs in (
        ("ipc_small", "ipc_small_eps"),
        ("ipc_large", "ipc_large_eps"),
        ("f_mem", "f_mem_eps"),
    ):
        if name == "f_mem" and profile.f_mem is None:
            continue
        per_eps = {}
        for eps in perturbations:
            perturbed = _perturbed_profile(profile, **{kwargs: eps})
            value = ScaleModelPredictor(perturbed).predict(target_size).ipc
            per_eps[eps] = value / base - 1.0
        out[name] = per_eps
    return SensitivityReport(
        target_size=target_size, base_ipc=base, sensitivities=out
    )


def region_stability(
    curve: MissRateCurve,
    noise_levels: Sequence[float] = (0.05, 0.10, 0.20),
) -> Dict[float, bool]:
    """Whether the cliff structure survives uniform MPKI scaling noise.

    The detector uses drop *ratios*, so uniform scaling never flips it;
    instability arises from noise concentrated on single points, which is
    probed by damping each point individually.
    """
    base = analyze_regions(curve).cliff_step
    stable: Dict[float, bool] = {}
    for noise in noise_levels:
        ok = True
        for i in range(len(curve.mpki)):
            bumped = list(curve.mpki)
            bumped[i] *= 1.0 + noise
            damped = list(curve.mpki)
            damped[i] *= max(0.0, 1.0 - noise)
            for variant in (bumped, damped):
                result = analyze_regions(
                    MissRateCurve(curve.workload, curve.capacities_bytes,
                                  tuple(variant))
                ).cliff_step
                if result != base:
                    ok = False
        stable[noise] = ok
    return stable

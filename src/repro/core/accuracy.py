"""Prediction-error metrics and summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.exceptions import PredictionError


def prediction_error(predicted: float, actual: float) -> float:
    """Relative absolute error, the paper's metric: |pred - real| / real."""
    if actual <= 0:
        raise PredictionError(f"actual IPC must be positive, got {actual}")
    return abs(predicted - actual) / actual


@dataclass(frozen=True)
class ErrorSummary:
    """Average and maximum error of one method across benchmarks."""

    method: str
    mean: float
    maximum: float
    worst_benchmark: str
    count: int

    def as_row(self) -> Tuple[str, str, str, str]:
        return (
            self.method,
            f"{100 * self.mean:.1f}%",
            f"{100 * self.maximum:.1f}%",
            self.worst_benchmark,
        )


def summarize_errors(errors: Mapping[str, Mapping[str, float]]) -> List[ErrorSummary]:
    """Summarize ``{method: {benchmark: error}}`` into per-method rows."""
    summaries = []
    for method, per_bench in errors.items():
        if not per_bench:
            raise PredictionError(f"method {method!r} has no errors to summarize")
        worst = max(per_bench, key=per_bench.get)
        values = list(per_bench.values())
        summaries.append(
            ErrorSummary(
                method=method,
                mean=sum(values) / len(values),
                maximum=per_bench[worst],
                worst_benchmark=worst,
                count=len(values),
            )
        )
    return summaries


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for speedup aggregation)."""
    if not values:
        raise PredictionError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise PredictionError(f"geometric mean needs positive values: {values}")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))

"""The paper's core contribution: GPU scale-model performance prediction.

Given (1) the IPC of two proportionally scaled-down *scale models* and
(2) the workload's LLC miss-rate curve (strong scaling only), the
predictor estimates target-system IPC without ever simulating the target
(Section V of the paper):

* pre-cliff region  — Eq. 2: proportional scaling corrected by the
  per-workload factor ``C`` measured between the scale models (Eq. 1);
* cliff region      — Eq. 3: proportional scaling boosted by
  ``1 / (1 - f_mem)``, the memory-stall fraction of the largest scale
  model, because crossing the cliff eliminates memory stalls;
* post-cliff region — Eq. 4: extrapolation from the first post-cliff
  system, itself predicted with Eq. 3, corrected by ``C`` again.

:mod:`repro.core.baselines` implements the four comparison methods
(proportional scaling, linear, power-law and logarithmic regression);
:mod:`repro.core.workflow` wires simulator, MRC collection and prediction
into the end-to-end flow of Figure 3.
"""

from repro.core.model import PredictionResult, ScaleModelPredictor
from repro.core.multicliff import MultiCliffPredictor, find_all_cliffs
from repro.core.profile import ScaleModelProfile
from repro.core.baselines import (
    BaselinePredictor,
    LinearRegression,
    LogarithmicRegression,
    PowerLawRegression,
    ProportionalScaling,
    make_predictor,
    METHOD_NAMES,
)
from repro.core.accuracy import prediction_error, summarize_errors
from repro.core.workflow import (
    ScaleModelStudy,
    predict_strong_scaling,
    predict_weak_scaling,
)

__all__ = [
    "ScaleModelPredictor",
    "MultiCliffPredictor",
    "find_all_cliffs",
    "PredictionResult",
    "ScaleModelProfile",
    "BaselinePredictor",
    "ProportionalScaling",
    "LinearRegression",
    "PowerLawRegression",
    "LogarithmicRegression",
    "make_predictor",
    "METHOD_NAMES",
    "prediction_error",
    "summarize_errors",
    "ScaleModelStudy",
    "predict_strong_scaling",
    "predict_weak_scaling",
]

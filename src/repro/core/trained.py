"""Trained one-size-fits-all scaling model (the prior-work approach).

Prior CPU scale-model work (Liu et al. [45, 46]) *trains* an extrapolation
model on a set of training benchmarks — simulating them at every system
size — and applies the learned curve to new workloads.  Section II of the
paper argues this breaks on GPUs because workloads scale in qualitatively
different ways; this module implements a faithful stand-in so the argument
can be reproduced quantitatively:

* **training**: for every training benchmark, normalize its measured IPC
  curve to the largest scale model, ``r_b(n) = IPC_b(n) / IPC_b(L)``;
  the trained model is the geometric mean curve ``g(n)`` over benchmarks
  (geometric, because ratios compose multiplicatively);
* **prediction**: for a new workload, ``IPC(T) = IPC_L * g(T)`` — one
  shared curve for everything, exactly the one-size-fits-all property
  the paper criticizes.

Leave-one-out evaluation (:func:`leave_one_out_errors`) quantifies how a
trained global model fares on each benchmark when trained on the rest:
accurate when training and test workloads scale alike, and far off when a
super-linear workload is predicted from a mostly-linear training set —
the failure mode that motivates per-workload prediction.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.exceptions import PredictionError


class TrainedScalingModel:
    """A global normalized-scaling curve learned from training benchmarks."""

    def __init__(self, anchor_size: int) -> None:
        if anchor_size < 1:
            raise PredictionError(f"anchor_size must be >= 1, got {anchor_size}")
        self.anchor_size = anchor_size
        self._curve: Dict[int, float] = {}
        self._num_training = 0

    def fit(self, training_curves: Sequence[Mapping[int, float]]) -> "TrainedScalingModel":
        """Learn the geometric-mean normalized curve.

        Each training curve maps system size to measured IPC and must
        include the anchor size.
        """
        if not training_curves:
            raise PredictionError("need at least one training benchmark")
        log_sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for curve in training_curves:
            if self.anchor_size not in curve:
                raise PredictionError(
                    f"training curve lacks the anchor size {self.anchor_size}"
                )
            anchor = curve[self.anchor_size]
            if anchor <= 0:
                raise PredictionError("anchor IPC must be positive")
            for size, ipc in curve.items():
                if ipc <= 0:
                    raise PredictionError("training IPCs must be positive")
                log_sums[size] = log_sums.get(size, 0.0) + math.log(ipc / anchor)
                counts[size] = counts.get(size, 0) + 1
        self._curve = {
            size: math.exp(total / counts[size])
            for size, total in log_sums.items()
        }
        self._num_training = len(training_curves)
        return self

    @property
    def curve(self) -> Dict[int, float]:
        """The learned normalized scaling curve (size -> ratio)."""
        if not self._curve:
            raise PredictionError("model is not fitted")
        return dict(self._curve)

    def predict(self, anchor_ipc: float, target_size: int) -> float:
        """Predict IPC at ``target_size`` from the anchor measurement."""
        if not self._curve:
            raise PredictionError("model is not fitted")
        if anchor_ipc <= 0:
            raise PredictionError("anchor IPC must be positive")
        if target_size not in self._curve:
            raise PredictionError(
                f"size {target_size} was not in the training data "
                f"(trained sizes: {sorted(self._curve)})"
            )
        return anchor_ipc * self._curve[target_size]


def leave_one_out_errors(
    curves: Mapping[str, Mapping[int, float]],
    anchor_size: int,
    target_size: int,
) -> Dict[str, float]:
    """Per-benchmark relative error of the trained model, leave-one-out.

    For each benchmark, the model is trained on every *other* benchmark's
    curve and applied to the held-out one — the honest evaluation of a
    trained approach on an unseen workload of interest.
    """
    if len(curves) < 2:
        raise PredictionError("leave-one-out needs at least two benchmarks")
    errors: Dict[str, float] = {}
    names: List[str] = list(curves)
    for held_out in names:
        training = [curves[n] for n in names if n != held_out]
        model = TrainedScalingModel(anchor_size).fit(training)
        actual = curves[held_out].get(target_size)
        anchor = curves[held_out].get(anchor_size)
        if actual is None or anchor is None:
            raise PredictionError(
                f"{held_out}: curve lacks anchor or target size"
            )
        predicted = model.predict(anchor, target_size)
        errors[held_out] = abs(predicted - actual) / actual
    return errors

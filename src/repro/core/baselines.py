"""Baseline prediction methods the paper compares against (Section VII).

* **proportional scaling** — target performance is ``S`` times the scale
  model that is ``S`` times smaller;
* **linear regression** — ``y = a*x + b`` fitted to the scale models;
* **power-law regression** — ``y = a * x**b``;
* **logarithmic regression** — ``y = a * log2(x)``, the model prior CPU
  scale-model work [46] found best for multi-program CPU workloads and
  the paper includes as the prior-art baseline.

All fits use least squares over however many scale-model points are
supplied (two, in the paper's setup, which makes linear and power-law
fits exact interpolations).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Type

import numpy as np

from repro.exceptions import PredictionError


class BaselinePredictor:
    """Base class: fit on scale-model (size, ipc) points, then predict."""

    name = "baseline"

    def __init__(self) -> None:
        self._fitted = False

    def fit(self, sizes: Sequence[int], ipcs: Sequence[float]) -> "BaselinePredictor":
        if len(sizes) != len(ipcs):
            raise PredictionError("sizes and ipcs must have equal length")
        if len(sizes) < self.min_points():
            raise PredictionError(
                f"{self.name}: needs >= {self.min_points()} points, got {len(sizes)}"
            )
        if any(s <= 0 for s in sizes) or any(i <= 0 for i in ipcs):
            raise PredictionError(f"{self.name}: sizes and IPCs must be positive")
        self._fit(np.asarray(sizes, dtype=float), np.asarray(ipcs, dtype=float))
        self._fitted = True
        return self

    def predict(self, size: int) -> float:
        if not self._fitted:
            raise PredictionError(f"{self.name}: predict() before fit()")
        if size <= 0:
            raise PredictionError(f"{self.name}: size must be positive")
        value = self._predict(float(size))
        if not math.isfinite(value):
            raise PredictionError(f"{self.name}: non-finite prediction at {size}")
        return value

    # --- subclass hooks ------------------------------------------------------
    def min_points(self) -> int:
        return 2

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, x: float) -> float:
        raise NotImplementedError


class ProportionalScaling(BaselinePredictor):
    """Performance scales exactly with system size from the largest model."""

    name = "proportional"

    def min_points(self) -> int:
        return 1

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._anchor_size = float(x[-1])
        self._anchor_ipc = float(y[-1])

    def _predict(self, x: float) -> float:
        return self._anchor_ipc * x / self._anchor_size


class LinearRegression(BaselinePredictor):
    """Least-squares fit of ``y = a*x + b``."""

    name = "linear"

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._a, self._b = np.polyfit(x, y, 1)

    def _predict(self, x: float) -> float:
        return self._a * x + self._b


class PowerLawRegression(BaselinePredictor):
    """Least-squares fit of ``y = a * x**b`` (linear in log-log space)."""

    name = "power-law"

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        self._b, log_a = np.polyfit(np.log(x), np.log(y), 1)
        self._a = math.exp(log_a)

    def _predict(self, x: float) -> float:
        return self._a * x**self._b


class LogarithmicRegression(BaselinePredictor):
    """Least-squares fit of ``y = a * log2(x)`` (the prior-work CPU model)."""

    name = "logarithmic"

    def min_points(self) -> int:
        return 1

    def _fit(self, x: np.ndarray, y: np.ndarray) -> None:
        logs = np.log2(x)
        denom = float(np.dot(logs, logs))
        if denom == 0.0:
            raise PredictionError(
                "logarithmic regression is undefined for a single size-1 model"
            )
        self._a = float(np.dot(logs, y) / denom)

    def _predict(self, x: float) -> float:
        return self._a * math.log2(x)


_REGISTRY: Dict[str, Type[BaselinePredictor]] = {
    cls.name: cls
    for cls in (
        ProportionalScaling,
        LinearRegression,
        PowerLawRegression,
        LogarithmicRegression,
    )
}

#: All method names reported in the paper's figures, in plot order.
METHOD_NAMES = (
    "logarithmic",
    "proportional",
    "linear",
    "power-law",
    "scale-model",
)


def make_predictor(name: str) -> BaselinePredictor:
    """Instantiate a baseline predictor by name."""
    if name not in _REGISTRY:
        raise PredictionError(
            f"unknown baseline {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]()

"""Shared address-region conventions between workloads and simulators.

Line numbers at or above :data:`BYPASS_BASE` carry a *no-allocate* (LLC
streaming) hint: the LLC neither caches nor keeps them, they go straight
to memory.  GPU L2 caches expose exactly this policy for streaming data
(e.g. CUDA's ``evict_first``/no-allocate access properties); workload
generators place one-shot streaming traffic there so it contributes
bandwidth pressure and a miss-rate floor without polluting the shared
cache.  Both the timing model (:mod:`repro.gpu.memory`) and the
functional MRC collector (:mod:`repro.mrc.collector`) honour the hint, so
timing and miss-rate views stay consistent.
"""

from __future__ import annotations

#: First line number of the LLC-bypass (no-allocate) region.
BYPASS_BASE = 1 << 38


def is_bypass(line: int) -> bool:
    """True when the line carries the LLC no-allocate hint."""
    return line >= BYPASS_BASE

"""Integrity-verified checkpoint/resume for long simulations.

PR-level fault tolerance (:mod:`repro.analysis.faults`) retries a failed
run — but a retry that starts from cycle zero pays for every cycle the
dead attempt already simulated.  This module makes the *intra-run*
progress durable: the GPU simulator snapshots its complete state at
kernel boundaries (the one point where the event queue is empty, so no
callback needs to serialize) and a retried attempt resumes from the
latest valid snapshot.

On-disk layout, one directory per run under the checkpoint root::

    results/checkpoints/<run-digest>/ckpt-<k>.json

where ``<run-digest>`` is a digest of the run's cache key and ``k`` is
the number of completed kernels.  Each file is a single JSON document::

    {"schema": 1, "sha256": "<hex digest of payload>", "payload": {...}}

written atomically (tmp + ``os.replace``), so a crash mid-write never
leaves a partial file under the final name.  On load the payload digest
and schema version are verified; a corrupt or version-drifted file is
*quarantined* (moved to ``quarantine/`` inside the run directory) with a
warning and resume falls back to the next-older snapshot, then to a cold
start — never to an exception.

``REPRO_CHECKPOINT_INTERVAL`` / ``--checkpoint-interval`` select how
many kernels run between snapshots (``1`` = every boundary, ``0``
disables checkpointing); parsing is tolerant the same way ``REPRO_JOBS``
is — garbage warns and falls back to the default instead of crashing.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import fsio
from repro.exceptions import CheckpointError
from repro.obs.tracing import get_tracer
from repro.resilience import get_disk_guard

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_CHECKPOINT_ROOT",
    "CHECKPOINT_INTERVAL_ENV",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "parse_checkpoint_interval",
    "default_checkpoint_interval",
    "run_digest",
    "CheckpointPolicy",
    "Checkpointer",
]

SCHEMA_VERSION = 1
DEFAULT_CHECKPOINT_ROOT = os.path.join("results", "checkpoints")
CHECKPOINT_INTERVAL_ENV = "REPRO_CHECKPOINT_INTERVAL"
DEFAULT_CHECKPOINT_INTERVAL = 1
QUARANTINE_DIR = "quarantine"

_CKPT_NAME = re.compile(r"^ckpt-(\d+)\.json$")


def parse_checkpoint_interval(
    value, default: int = DEFAULT_CHECKPOINT_INTERVAL
) -> int:
    """Tolerantly parse a checkpoint interval (kernels between snapshots).

    Mirrors the ``REPRO_JOBS`` contract: a non-integer or negative value
    warns and falls back to ``default``; ``0`` is valid and disables
    checkpointing.  ``None``/empty returns the default silently.
    """
    if value is None or value == "":
        return default
    try:
        interval = int(value)
    except (TypeError, ValueError):
        warnings.warn(
            f"checkpoint interval {value!r} is not an integer; "
            f"falling back to {default}"
        )
        return default
    if interval < 0:
        warnings.warn(
            f"checkpoint interval must be >= 0, got {interval}; "
            f"falling back to {default}"
        )
        return default
    return interval


def default_checkpoint_interval(
    default: int = DEFAULT_CHECKPOINT_INTERVAL,
) -> int:
    """Interval from ``REPRO_CHECKPOINT_INTERVAL``, tolerantly parsed."""
    return parse_checkpoint_interval(
        os.environ.get(CHECKPOINT_INTERVAL_ENV), default
    )


def run_digest(run_key: str) -> str:
    """Stable directory name for one run's checkpoints."""
    return hashlib.sha256(run_key.encode()).hexdigest()[:24]


def _payload_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where, how often and whether to checkpoint and resume.

    ``root=None`` or ``interval=0`` disables checkpointing entirely;
    ``resume=False`` keeps writing snapshots (for post-mortems) but
    every run starts cold (``--no-resume``).
    """

    root: Optional[str] = DEFAULT_CHECKPOINT_ROOT
    interval: int = DEFAULT_CHECKPOINT_INTERVAL
    resume: bool = True

    @property
    def enabled(self) -> bool:
        return bool(self.root) and self.interval >= 1

    def checkpointer_for(
        self,
        run_key: str,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> Optional["Checkpointer"]:
        """Build the per-run :class:`Checkpointer`, or ``None`` if disabled."""
        if not self.enabled:
            return None
        return Checkpointer(
            os.path.join(self.root, run_digest(run_key)),
            run_key=run_key,
            interval=self.interval,
            resume=self.resume,
            on_checkpoint=on_checkpoint,
        )


class Checkpointer:
    """Writes and reads one run's integrity-verified snapshots.

    The simulator drives it: :meth:`should_checkpoint` gates on the
    interval, :meth:`save` persists a snapshot, :meth:`load_latest`
    returns the newest valid payload for resume, and :meth:`cleanup`
    removes the run directory once the run completes (its result is in
    the cache; the snapshots have nothing left to protect).

    ``on_checkpoint(kernels_completed)`` fires after each durable save —
    the hook fault injection uses to kill a run *after* its progress is
    safe, which is exactly the crash window resume must cover.

    Save failures degrade to a warning: checkpoint I/O must never kill
    the simulation it protects.
    """

    def __init__(
        self,
        directory: str,
        run_key: str,
        interval: int = 1,
        resume: bool = True,
        on_checkpoint: Optional[Callable[[int], None]] = None,
    ) -> None:
        if interval < 1:
            raise CheckpointError(
                f"checkpoint interval must be >= 1, got {interval}"
            )
        self.directory = directory
        self.run_key = run_key
        self.interval = interval
        self.resume = resume
        self.on_checkpoint = on_checkpoint
        #: Kernel index the current run resumed from (None = cold start).
        self.resumed_from: Optional[int] = None
        #: Simulated cycles skipped thanks to the resume.
        self.cycles_saved: float = 0.0
        self.saves = 0
        self.quarantined = 0

    # --- writing ---------------------------------------------------------------
    def should_checkpoint(self, kernels_completed: int) -> bool:
        return kernels_completed % self.interval == 0

    def path_for(self, kernels_completed: int) -> str:
        return os.path.join(self.directory, f"ckpt-{kernels_completed}.json")

    def save(self, payload: dict) -> bool:
        """Atomically persist one snapshot; returns True when durable.

        ``payload`` must carry ``kernels_completed`` (the boundary index)
        and be JSON-serializable; the run key and schema version are
        stamped here so :meth:`load_latest` can reject foreign or
        version-drifted files.
        """
        kernels_completed = int(payload["kernels_completed"])
        payload = dict(payload, run_key=self.run_key)
        record = {
            "schema": SCHEMA_VERSION,
            "sha256": _payload_digest(payload),
            "payload": payload,
        }
        path = self.path_for(kernels_completed)
        if not get_disk_guard().ok(self.directory):
            # Low disk: the simulation keeps running, just unprotected —
            # the next interval retries once space recovers.
            return False
        try:
            os.makedirs(self.directory, exist_ok=True)
            fsio.atomic_write_text(path, json.dumps(record), op="checkpoint")
        except (OSError, TypeError, ValueError) as error:
            get_disk_guard().note_failure(self.directory)
            warnings.warn(
                f"checkpoint: cannot write {path}: {error}; "
                "continuing without this snapshot"
            )
            return False
        self.saves += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(kernels_completed)
        return True

    # --- reading ---------------------------------------------------------------
    def available(self) -> List[int]:
        """Boundary indices with a snapshot on disk, newest first."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        indices = []
        for name in names:
            match = _CKPT_NAME.match(name)
            if match:
                indices.append(int(match.group(1)))
        return sorted(indices, reverse=True)

    def load_latest(self) -> Optional[dict]:
        """Newest valid snapshot payload, or ``None`` for a cold start.

        Corrupt (digest mismatch, unparseable) and version-drifted files
        are quarantined with a warning and the next-older snapshot is
        tried; with ``resume=False`` nothing is read at all.
        """
        if not self.resume:
            return None
        for kernels_completed in self.available():
            path = self.path_for(kernels_completed)
            payload = self._load_one(path)
            if payload is not None:
                return payload
        return None

    def _load_one(self, path: str) -> Optional[dict]:
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError) as error:
            self._quarantine(path, f"unreadable ({error})")
            return None
        if not isinstance(record, dict):
            self._quarantine(path, "not a JSON object")
            return None
        if record.get("schema") != SCHEMA_VERSION:
            self._quarantine(
                path,
                f"schema version {record.get('schema')!r} "
                f"(current is {SCHEMA_VERSION})",
            )
            return None
        payload = record.get("payload")
        if not isinstance(payload, dict):
            self._quarantine(path, "missing payload")
            return None
        if record.get("sha256") != _payload_digest(payload):
            self._quarantine(path, "payload digest mismatch")
            return None
        if payload.get("run_key") != self.run_key:
            self._quarantine(
                path, f"belongs to run {payload.get('run_key')!r}"
            )
            return None
        return payload

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a bad snapshot aside so it is never retried or trusted."""
        qdir = os.path.join(self.directory, QUARANTINE_DIR)
        base = os.path.basename(path)
        dest = os.path.join(qdir, base)
        try:
            os.makedirs(qdir, exist_ok=True)
            suffix = 0
            while os.path.exists(dest):
                suffix += 1
                dest = os.path.join(qdir, f"{base}.{suffix}")
            fsio.replace_file(path, dest)
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        self.quarantined += 1
        warnings.warn(
            f"checkpoint: {path} is invalid — {reason}; quarantined, "
            "falling back to an older snapshot or a cold start"
        )

    # --- bookkeeping -----------------------------------------------------------
    def mark_resumed(self, kernels_completed: int, cycles: float) -> None:
        """Record that the run restarted past ``kernels_completed`` kernels."""
        self.resumed_from = kernels_completed
        self.cycles_saved = float(cycles)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "checkpoint.resume",
                cat="checkpoint",
                args={
                    "kernels_completed": kernels_completed,
                    "cycles_saved": float(cycles),
                },
            )

    def cleanup(self) -> None:
        """Remove the run's snapshots after a successful completion."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if _CKPT_NAME.match(name) or name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:
                    pass
        # Drop the directory tree when nothing (e.g. quarantine) remains.
        for directory in (
            os.path.join(self.directory, QUARANTINE_DIR),
            self.directory,
        ):
            try:
                os.rmdir(directory)
            except OSError:
                pass

"""Durable filesystem writes, shared by every persistence seam.

Three modules used to carry their own "atomic" tmp + rename writers
(:mod:`repro.analysis.simcache`, :mod:`repro.checkpoint`,
:mod:`repro.obs.export`) — and none of them ``fsync``'d the file or its
directory, so a power loss shortly after the rename could still surface
a truncated file under the final name.  This module is the single
implementation all of them now use:

* :func:`atomic_write_text` — write to ``<path>.tmp``, flush + fsync,
  rename over ``path``, fsync the directory.  A crash at any point
  leaves either the old content or the new content under ``path``,
  never a mixture and never a torn page the rename made visible before
  the data was durable.
* :func:`append_text` — append + flush + fsync for the append-only
  JSONL shards (result store, failure manifest).  The directory is only
  fsync'd when the append created the file (that is the only case where
  the *name* is new).
* :func:`replace_file` — ``os.replace`` with a copy + unlink fallback
  for ``EXDEV`` (rename across filesystems, e.g. a quarantine directory
  symlinked to scratch storage).
* ``REPRO_NO_FSYNC=1`` skips the fsync calls (not the atomicity) — an
  escape hatch for test suites and throwaway runs where the fsync cost
  dominates.

Chaos seams: every writer takes an ``op`` label (``store``,
``checkpoint``, ``trace``, ``metrics``, ``manifest``) checked against
the ``REPRO_FAULT_INJECT`` plan (see :mod:`repro.analysis.faults`).
``enospc:<op>`` raises :class:`OSError` ``ENOSPC`` before any byte is
written; ``partial-write:<op>`` persists a truncated prefix and *then*
raises, modelling a disk that filled mid-write; ``slow-io:<op>``
sleeps first.  The injection check is one environment lookup when no
plan is armed.
"""

from __future__ import annotations

import errno
import os
import shutil
import time
from typing import Optional, Tuple

__all__ = [
    "NO_FSYNC_ENV",
    "fsync_enabled",
    "fsync_dir",
    "atomic_write_text",
    "append_text",
    "replace_file",
]

NO_FSYNC_ENV = "REPRO_NO_FSYNC"

#: Mirrors :data:`repro.analysis.faults.FAULT_INJECT_ENV`; duplicated as
#: a literal so this leaf module never imports the analysis package at
#: import time (simcache/checkpoint/export all import this module).
_FAULT_ENV = "REPRO_FAULT_INJECT"


def fsync_enabled() -> bool:
    """False when ``REPRO_NO_FSYNC=1`` disables the durability syncs."""
    return os.environ.get(NO_FSYNC_ENV, "") != "1"


def fsync_dir(path: str) -> None:
    """Best-effort fsync of a directory (needed after create/rename).

    Some filesystems refuse ``open(O_RDONLY)`` on directories or
    ``fsync`` on the resulting descriptor; durability degrades silently
    there — the same contract the kernel gives everyone else.
    """
    if not fsync_enabled():
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _io_fault(op: Optional[str]) -> Optional[Tuple[str, Optional[float]]]:
    """The armed io-fault ``(action, arg)`` for ``op``, or ``None``.

    Imports the fault grammar lazily: the common case (no plan armed)
    must cost one environment lookup, and a module-level import would
    cycle through ``repro.analysis``.
    """
    if not op or not os.environ.get(_FAULT_ENV):
        return None
    from repro.analysis.faults import next_io_fault

    return next_io_fault(op)


def _apply_pre_write_fault(
    action: Optional[Tuple[str, Optional[float]]], path: str
) -> bool:
    """Handle slow-io/enospc before writing; True = truncate (partial)."""
    if action is None:
        return False
    kind, arg = action
    if kind == "slow-io":
        time.sleep(arg if arg is not None else 0.05)
        return False
    if kind == "enospc":
        raise OSError(
            errno.ENOSPC, f"injected ENOSPC (fault plan) writing {path}"
        )
    return kind == "partial-write"


def atomic_write_text(path: str, text: str, op: Optional[str] = None) -> None:
    """Durably replace ``path`` with ``text`` (tmp + fsync + rename).

    A crash at any point leaves either the previous file or the new one
    under ``path`` — the tmp file may survive, which every caller either
    overwrites on the next attempt or sweeps up in its cleanup path.
    """
    partial = _apply_pre_write_fault(_io_fault(op), path)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        if partial:
            fh.write(text[: max(1, len(text) // 2)])
            fh.flush()
            raise OSError(
                errno.ENOSPC,
                f"injected partial write (fault plan) writing {path}",
            )
        fh.write(text)
        if fsync_enabled():
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    parent = os.path.dirname(path)
    if parent:
        fsync_dir(parent)


def append_text(path: str, text: str, op: Optional[str] = None) -> None:
    """Durably append ``text`` to ``path`` (flush + fsync).

    An interrupted append can leave a truncated final line — which every
    JSONL reader in this repository tolerates — but a completed call
    means the bytes are on the platter, not in the page cache.
    """
    partial = _apply_pre_write_fault(_io_fault(op), path)
    created = not os.path.exists(path)
    with open(path, "a") as fh:
        if partial:
            fh.write(text[: max(1, len(text) // 2)])
            fh.flush()
            raise OSError(
                errno.ENOSPC,
                f"injected partial write (fault plan) appending to {path}",
            )
        fh.write(text)
        if fsync_enabled():
            fh.flush()
            os.fsync(fh.fileno())
    if created:
        parent = os.path.dirname(path)
        if parent:
            fsync_dir(parent)


def replace_file(src: str, dst: str) -> None:
    """``os.replace`` that survives ``EXDEV`` (cross-filesystem move).

    ``results/`` layouts where the quarantine directory is a symlink to
    scratch storage put ``src`` and ``dst`` on different filesystems;
    rename fails with ``EXDEV`` there, so fall back to copy + unlink.
    The copy is not atomic, but quarantine destinations are never
    load-bearing — the unique name is picked immediately before the
    move.
    """
    try:
        os.replace(src, dst)
    except OSError as error:
        if error.errno != errno.EXDEV:
            raise
        shutil.copy2(src, dst)
        os.unlink(src)

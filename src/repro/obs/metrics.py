"""Process-wide metrics: counters, gauges and streaming histograms.

The registry is the single substrate for every stat bag in the
repository: the engine's :class:`repro.engine.stats.Counter`, the result
store's telemetry dict and the per-run execution counters are all thin
views over the primitives here (see the "Observability" section of
``docs/ARCHITECTURE.md``).

Design constraints, in order:

* **Hot-path cheap.**  Incrementing a counter is one dict-free attribute
  add; recording a histogram sample is one ``log`` call and a dict
  increment.  Nothing allocates per observation.
* **No sample storage.**  Histograms are streaming: samples land in
  geometrically spaced buckets, so p50/p95/p99 come from bucket
  interpolation with a bounded relative error (one half bucket width,
  ~4.5% with the default resolution) regardless of how many samples were
  recorded.
* **Snapshot-able.**  :meth:`MetricsRegistry.snapshot` returns a plain
  JSON-serializable dict (counters, gauges, histogram quantiles) that
  ``--metrics-out`` writes verbatim.

Registries are plain objects: the process-wide default from
:func:`get_registry` backs the global observability surface, while
components that need isolated counts (e.g. one
:class:`repro.analysis.runner.CachedRunner` per test) instantiate their
own.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "CounterBag",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


class CounterBag:
    """A named bag of numeric counters with dict-like access.

    The shared stat-bag primitive: ``add`` accumulates, item assignment
    overwrites (for gauge-ish members such as ``entries``), and
    :meth:`as_dict` snapshots.  Values are ints until a float is added,
    mirroring how the pre-existing ad-hoc dicts behaved.
    """

    __slots__ = ("_counts",)

    def __init__(self, initial: Optional[Dict[str, float]] = None) -> None:
        self._counts: Dict[str, float] = dict(initial) if initial else {}

    def add(self, key: str, amount: float = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def get(self, key: str, default: float = 0) -> float:
        return self._counts.get(key, default)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(self._counts.items())

    def __getitem__(self, key: str) -> float:
        return self._counts.get(key, 0)

    def __setitem__(self, key: str, value: float) -> None:
        self._counts[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"{type(self).__name__}({inner})"


class Counter:
    """A single monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A single point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A streaming histogram with geometrically spaced buckets.

    Positive samples land in bucket ``ceil(log(value) / log(growth))``;
    with the default ``growth = 2 ** (1/8)`` adjacent bucket bounds are
    ~9% apart, so any quantile read back from a bucket midpoint is within
    ~4.5% of the exact sample quantile.  Zero and negative samples are
    counted in a dedicated underflow bucket (durations and sizes, the
    intended inputs, are non-negative).  Memory is O(occupied buckets),
    never O(samples).
    """

    __slots__ = (
        "name", "count", "total", "min", "max", "_buckets", "_log_growth",
        "_underflow",
    )

    #: Default bucket growth factor: 8 buckets per doubling.
    GROWTH = 2.0 ** 0.125

    def __init__(self, name: str, growth: float = GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError(f"histogram growth must be > 1, got {growth}")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: Dict[int, int] = {}
        self._log_growth = math.log(growth)
        self._underflow = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self._underflow += 1
            return
        index = math.ceil(math.log(value) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 <= q <= 1``) of the samples.

        Nearest-rank: the bucket holding the ``ceil(q * count)``-th
        smallest sample answers, as its geometric midpoint clamped into
        ``[min, max]`` — so the endpoints are exact and interior
        quantiles are within half a bucket width (~4.5% relative with
        the default growth) of the true sample quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = max(0, math.ceil(q * self.count) - 1)
        seen = self._underflow
        if rank < seen:
            return self.min
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                # Geometric midpoint of (growth**(i-1), growth**i].
                mid = math.exp((index - 0.5) * self._log_growth)
                return min(max(mid, self.min), self.max)
        return self.max

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class MetricsRegistry:
    """Named counters, gauges and histograms with a JSON snapshot.

    Metric handles are create-on-first-use and stable, so hot paths can
    hold the handle (``c = registry.counter("x")`` once, ``c.inc()``
    per event) and pay no lookup.  Operations are single bytecode-level
    mutations, safe under the GIL for the process-internal use here.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # --- handles -----------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # --- one-shot conveniences ---------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    # --- snapshots ---------------------------------------------------------
    def counters_dict(self) -> Dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def snapshot(self) -> dict:
        """JSON-able view of every metric (see ``--metrics-out``)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, other: "MetricsRegistry", prefix: str) -> None:
        """Copy ``other``'s current values in under ``prefix``.

        Used at export time to fold per-component registries (e.g. a
        runner's isolated execution counters) into the process-wide
        snapshot without sharing mutable state.
        """
        for name, counter in other._counters.items():
            self.counter(f"{prefix}{name}").value = counter.value
        for name, gauge in other._gauges.items():
            self.gauge(f"{prefix}{name}").value = gauge.value
        for name, histogram in other._histograms.items():
            self._histograms[f"{prefix}{name}"] = histogram

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY

"""Export traces and metrics: Chrome ``trace_event`` JSON + flat reports.

``chrome://tracing`` and https://ui.perfetto.dev both load the JSON
object format::

    {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", "ts": ...,
                      "dur": ..., "pid": ..., "tid": ...}, ...],
     "displayTimeUnit": "ms"}

Events come from two places: the in-process tracer buffer and the
per-worker JSONL spill files pool workers append under the spill
directory (see :mod:`repro.obs.tracing`).  The reader is tolerant the
same way the result store is — a truncated trailing line is skipped, not
fatal.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, Iterable, List, Optional

from repro import fsio
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer
from repro.resilience import get_disk_guard

__all__ = [
    "collect_events",
    "read_spill_dir",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_metrics",
    "metrics_report",
    "validate_trace_events",
]

#: Phases this exporter emits; the validator accepts exactly these.
_KNOWN_PHASES = {"X", "i", "B", "E", "M"}


def read_spill_dir(spill_dir: Optional[str]) -> List[dict]:
    """Load every ``trace-*.jsonl`` spill file under ``spill_dir``."""
    if not spill_dir or not os.path.isdir(spill_dir):
        return []
    events: List[dict] = []
    for fname in sorted(os.listdir(spill_dir)):
        if not (fname.startswith("trace-") and fname.endswith(".jsonl")):
            continue
        path = os.path.join(spill_dir, fname)
        try:
            with open(path) as fh:
                raw_lines = fh.readlines()
        except OSError as error:
            warnings.warn(f"trace export: cannot read {path}: {error}")
            continue
        for line in raw_lines:
            if not line.strip():
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated trailing line from a dead worker
            if isinstance(event, dict):
                events.append(event)
    return events


def collect_events(
    tracer: Optional[Tracer] = None, spill_dir: Optional[str] = None
) -> List[dict]:
    """Buffered + spilled events, merged and sorted by timestamp."""
    tracer = tracer or get_tracer()
    spill_dir = spill_dir if spill_dir is not None else tracer.spill_dir
    events = read_spill_dir(spill_dir) + tracer.events()
    events.sort(key=lambda e: e.get("ts", 0.0))
    return events


def _export_json(path: str, text: str, op: str) -> bool:
    """Durably write one export artifact; failures warn, never raise.

    Observability output is best-effort by contract: a full disk or an
    injected fault costs the artifact, not the campaign.  Returns True
    when the file landed.
    """
    if not get_disk_guard().ok(os.path.dirname(path) or "."):
        warnings.warn(
            f"obs export: skipping {path} (disk space low); "
            "the in-memory data is unaffected"
        )
        return False
    try:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fsio.atomic_write_text(path, text, op=op)
    except OSError as error:
        get_disk_guard().note_failure(os.path.dirname(path) or ".")
        warnings.warn(f"obs export: cannot write {path}: {error}")
        return False
    return True


def chrome_trace_document(
    events: Iterable[dict], metadata: Optional[Dict] = None
) -> dict:
    """Wrap events in the Chrome trace JSON-object envelope."""
    document = {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["otherData"] = dict(metadata)
    return document


def write_chrome_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    spill_dir: Optional[str] = None,
    metadata: Optional[Dict] = None,
) -> int:
    """Write a Chrome-trace-loadable JSON file; returns the event count.

    Atomic and durable (tmp + fsync + rename via :mod:`repro.fsio`) so
    a crash mid-export never leaves a truncated file under the final
    name.  A failed write (``ENOSPC``, low disk) degrades to a warning:
    losing a trace must never lose the run that produced it.
    """
    events = collect_events(tracer, spill_dir)
    document = chrome_trace_document(events, metadata)
    _export_json(path, json.dumps(document), op="trace")
    return len(events)


def write_metrics(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict[str, MetricsRegistry]] = None,
) -> dict:
    """Write a metrics snapshot JSON; returns the snapshot written.

    ``extra`` maps prefixes to additional registries (e.g. a runner's
    isolated execution counters) folded into the snapshot under
    ``<prefix>.<name>``.
    """
    registry = registry or get_registry()
    if extra:
        merged = MetricsRegistry()
        merged.merge_snapshot(registry, "")
        for prefix, other in extra.items():
            merged.merge_snapshot(other, f"{prefix}.")
        registry = merged
    snapshot = registry.snapshot()
    _export_json(
        path, json.dumps(snapshot, indent=2, sort_keys=True), op="metrics"
    )
    return snapshot


def metrics_report(snapshot: dict) -> str:
    """Flat human-readable report of a :meth:`MetricsRegistry.snapshot`."""
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"counter    {name:<40s} {value:>14g}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"gauge      {name:<40s} {value:>14g}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        if not summary.get("count"):
            continue
        lines.append(
            f"histogram  {name:<40s} n={summary['count']:<8d}"
            f" mean={summary['mean']:<12.1f}"
            f" p50={summary['p50']:<12.1f}"
            f" p95={summary['p95']:<12.1f}"
            f" p99={summary['p99']:<12.1f}"
        )
    return "\n".join(lines)


def validate_trace_events(document: object) -> List[str]:
    """Validate a trace document against the ``trace_event`` schema.

    Returns a list of problems (empty = valid).  Checks the envelope and
    the per-event required fields Chrome/Perfetto rely on: ``name``,
    ``ph`` (a phase this exporter emits), numeric ``ts``, numeric
    ``dur`` for complete events, and ``pid``/``tid``.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric ts")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: complete event without numeric dur")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: missing integer {field}")
    return problems

"""Opt-in profiling hooks: zero overhead unless ``REPRO_OBS`` asks.

The hot paths this module instruments — the simulation event loop, the
parallel runner's dispatch, result-store I/O and checkpoint
save/restore — are *not* modified when observability is off: the
wrappers are installed by monkey-patching the real entry points only
when :func:`install` runs, so the disabled cost is literally nothing.
(The handful of in-line recording sites elsewhere in the repository all
guard on ``tracer.enabled``, one attribute check.)

Activation:

* ``REPRO_OBS=1`` (any value other than ``0``/``false``/``off``/``no``)
  turns recording on for the process; the CLIs' ``--trace-out`` /
  ``--metrics-out`` flags set it for their own process so pool workers
  inherit it.
* ``REPRO_OBS_SPILL=<dir>`` points worker processes at the JSONL spill
  directory the parent's exporter merges (set automatically by
  :func:`repro.obs.bootstrap` when a trace output is requested).

Workers self-arm: :func:`repro.analysis.parallel.execute_attempt` calls
:func:`ensure_worker` (one env lookup when the variable is unset) so a
forked/spawned pool worker installs the same hooks and spills its spans
after every attempt.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer

__all__ = [
    "OBS_ENV",
    "SPILL_ENV",
    "obs_enabled",
    "install",
    "uninstall",
    "ensure_worker",
]

OBS_ENV = "REPRO_OBS"
SPILL_ENV = "REPRO_OBS_SPILL"

_FALSY = {"", "0", "false", "off", "no"}

_installed = False
_originals: dict = {}


def obs_enabled(value: Optional[str] = None) -> bool:
    """Is observability requested? (``REPRO_OBS``, tolerantly parsed)."""
    if value is None:
        value = os.environ.get(OBS_ENV, "")
    return value.strip().lower() not in _FALSY


# --- wrappers -------------------------------------------------------------------

def _observe_engine_run(kernel, fired: int, duration_s: float) -> None:
    """Per-``SimulationKernel.run`` accounting (events + loop time)."""
    registry = get_registry()
    registry.inc("engine.events", fired)
    registry.observe("engine.run_us", duration_s * 1e6)
    get_tracer().complete(
        "engine.run",
        "kernel",
        get_tracer().now_us() - duration_s * 1e6,
        duration_s * 1e6,
        args={"events": fired},
    )


def _wrap_store(store_cls) -> None:
    _originals["store.flush"] = store_cls.flush
    _originals["store._load_one_shard"] = store_cls._load_one_shard

    def flush(self):
        with get_tracer().span("cache.flush", cat="cache"):
            written = _originals["store.flush"](self)
        get_registry().inc("cache.flushed_records", written)
        return written

    def _load_one_shard(self, path):
        with get_tracer().span(
            "cache.load_shard", cat="cache",
            shard=os.path.basename(path),
        ):
            result = _originals["store._load_one_shard"](self, path)
        get_registry().inc("cache.shards_loaded")
        return result

    store_cls.flush = flush
    store_cls._load_one_shard = _load_one_shard


def _wrap_checkpointer(ckpt_cls) -> None:
    _originals["ckpt.save"] = ckpt_cls.save
    _originals["ckpt.load_latest"] = ckpt_cls.load_latest

    def save(self, payload):
        with get_tracer().span(
            "checkpoint.save", cat="checkpoint",
            boundary=int(payload.get("kernels_completed", -1)),
        ):
            durable = _originals["ckpt.save"](self, payload)
        get_registry().inc(
            "checkpoint.saves" if durable else "checkpoint.save_failures"
        )
        return durable

    def load_latest(self):
        with get_tracer().span("checkpoint.load", cat="checkpoint"):
            payload = _originals["ckpt.load_latest"](self)
        if payload is not None:
            get_registry().inc("checkpoint.loads")
        return payload

    ckpt_cls.save = save
    ckpt_cls.load_latest = load_latest


def _wrap_parallel_runner(runner_cls) -> None:
    _originals["runner.run_batch_report"] = runner_cls.run_batch_report

    def run_batch_report(self, requests):
        start = time.perf_counter()
        with get_tracer().span("batch", cat="run"):
            report = _originals["runner.run_batch_report"](self, requests)
        registry = get_registry()
        registry.observe(
            "batch.wall_us", (time.perf_counter() - start) * 1e6
        )
        for status, count in report.counts().items():
            registry.inc(f"batch.{status}", count)
        return report

    runner_cls.run_batch_report = run_batch_report


# --- installation ---------------------------------------------------------------

def install(spill_dir: Optional[str] = None) -> None:
    """Enable recording and patch the profiling wrappers in (idempotent)."""
    global _installed
    tracer = get_tracer()
    tracer.metrics = get_registry()
    tracer.enable(
        spill_dir if spill_dir is not None else os.environ.get(SPILL_ENV)
    )
    if _installed:
        return
    # Deferred imports: repro.obs must stay importable on its own, and
    # the patch targets must not import obs hooks back at module scope.
    from repro.analysis.parallel import ParallelRunner
    from repro.analysis.simcache import ResultStore
    from repro.checkpoint import Checkpointer
    from repro.engine import kernel as engine_kernel

    _originals["engine._run_observer"] = engine_kernel._run_observer
    engine_kernel._run_observer = _observe_engine_run
    _wrap_store(ResultStore)
    _wrap_checkpointer(Checkpointer)
    _wrap_parallel_runner(ParallelRunner)
    _installed = True


def uninstall() -> None:
    """Restore the unwrapped entry points and stop recording."""
    global _installed
    tracer = get_tracer()
    tracer.disable()
    tracer.metrics = None
    if not _installed:
        return
    from repro.analysis.parallel import ParallelRunner
    from repro.analysis.simcache import ResultStore
    from repro.checkpoint import Checkpointer
    from repro.engine import kernel as engine_kernel

    engine_kernel._run_observer = _originals["engine._run_observer"]
    ResultStore.flush = _originals["store.flush"]
    ResultStore._load_one_shard = _originals["store._load_one_shard"]
    Checkpointer.save = _originals["ckpt.save"]
    Checkpointer.load_latest = _originals["ckpt.load_latest"]
    ParallelRunner.run_batch_report = _originals["runner.run_batch_report"]
    _originals.clear()
    _installed = False


def ensure_worker() -> None:
    """Arm observability inside a pool worker (no-op when already armed).

    Called from the worker entry point when ``REPRO_OBS`` is set; safe
    to call repeatedly — installation is idempotent and the tracer
    handles fork inheritance itself.
    """
    if obs_enabled():
        install()

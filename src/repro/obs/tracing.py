"""Run tracing: spans and instant events with bounded buffers.

The :class:`Tracer` records *complete spans* (name, category, start
timestamp, duration) and *instant events* in the Chrome ``trace_event``
vocabulary, so :mod:`repro.obs.export` can serialize them for
``chrome://tracing`` / Perfetto without translation.

Contract:

* **Disabled is free.**  ``tracer.span(...)`` returns a shared no-op
  context manager when the tracer is off; the only cost is one attribute
  check.  Nothing in the repository records unconditionally.
* **Bounded memory.**  The in-memory buffer holds at most
  ``buffer_limit`` events.  With a spill directory configured the buffer
  drains to an append-only JSONL file (one event per line) when full;
  without one, the oldest events are dropped and counted.
* **Timestamps merge across processes.**  Events carry wall-anchored
  microsecond timestamps: a per-process monotonic clock
  (``perf_counter``) measures offsets and durations, anchored once to
  the wall clock at tracer creation.  Worker-process spill files and the
  parent buffer therefore share one timeline.
* **Fork-safe.**  A tracer inherited through ``fork`` (pool workers)
  detects the pid change on first use and drops the parent's buffered
  events, so they are never double-reported from the child's spill.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

__all__ = ["Tracer", "NULL_SPAN", "get_tracer", "SPILL_BASENAME"]

#: Worker spill files: ``<spill_dir>/trace-<pid>.jsonl``.
SPILL_BASENAME = "trace-{pid}.jsonl"

DEFAULT_BUFFER_LIMIT = 65536


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: records one complete event when it exits."""

    __slots__ = ("tracer", "name", "cat", "args", "start_us")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start_us = 0.0

    def __enter__(self) -> "_Span":
        self.start_us = self.tracer.now_us()
        return self

    def __exit__(self, *exc_info) -> None:
        self.tracer.complete(
            self.name,
            self.cat,
            self.start_us,
            self.tracer.now_us() - self.start_us,
            args=self.args,
        )


class Tracer:
    """Records spans and instants into a bounded buffer (JSONL spill)."""

    def __init__(self, buffer_limit: int = DEFAULT_BUFFER_LIMIT) -> None:
        if buffer_limit < 1:
            raise ValueError(f"buffer_limit must be >= 1, got {buffer_limit}")
        self.enabled = False
        self.buffer_limit = buffer_limit
        self.spill_dir: Optional[str] = None
        self.dropped = 0
        self.metrics = None  # optional MetricsRegistry sink for span durations
        self._events: List[dict] = []
        self._pid = os.getpid()
        # Wall-anchored monotonic clock: offsets and durations come from
        # perf_counter (never rewinds), anchored once to the wall clock
        # so timestamps from different processes share a timeline.
        self._epoch_wall_us = time.time() * 1e6
        self._epoch_perf = time.perf_counter()

    # --- clock -------------------------------------------------------------
    def now_us(self) -> float:
        """Current wall-anchored timestamp in microseconds."""
        return self._epoch_wall_us + (
            time.perf_counter() - self._epoch_perf
        ) * 1e6

    # --- lifecycle ---------------------------------------------------------
    def enable(self, spill_dir: Optional[str] = None) -> None:
        if spill_dir is not None:
            self.spill_dir = spill_dir
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # --- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "misc", **args):
        """Context manager timing one span; no-op while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, cat, args or None)

    def complete(
        self,
        name: str,
        cat: str,
        ts_us: float,
        dur_us: float,
        args: Optional[Dict] = None,
    ) -> None:
        """Record one already-measured complete span."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": ts_us,
            "dur": max(0.0, dur_us),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
        }
        if args:
            event["args"] = args
        self._record(event)
        if self.metrics is not None:
            self.metrics.observe(f"span.{cat}.us", max(0.0, dur_us))

    def instant(
        self, name: str, cat: str = "misc", args: Optional[Dict] = None
    ) -> None:
        """Record one instant event (a point on the timeline)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "p",  # process-scoped instant
            "ts": self.now_us(),
            "pid": os.getpid(),
            "tid": threading.get_ident() & 0xFFFFFFFF,
        }
        if args:
            event["args"] = args
        self._record(event)

    def _record(self, event: dict) -> None:
        self._check_fork()
        self._events.append(event)
        if len(self._events) >= self.buffer_limit:
            if self.spill_dir:
                self.flush_spill()
            else:
                # Keep the newest half; bounded memory beats completeness.
                drop = len(self._events) // 2
                del self._events[:drop]
                self.dropped += drop

    def _check_fork(self) -> None:
        """Drop events inherited from a parent process through fork."""
        pid = os.getpid()
        if pid != self._pid:
            self._events.clear()
            self._pid = pid

    # --- draining ----------------------------------------------------------
    def events(self) -> List[dict]:
        """Snapshot of the buffered (un-spilled) events."""
        self._check_fork()
        return list(self._events)

    def spill_path(self) -> Optional[str]:
        if not self.spill_dir:
            return None
        return os.path.join(
            self.spill_dir, SPILL_BASENAME.format(pid=os.getpid())
        )

    def flush_spill(self) -> int:
        """Append the buffer to this process's spill file; returns count.

        One ``write()`` for the whole batch, same crash contract as the
        result store: a crash can at worst truncate the final line, which
        the tolerant reader in :mod:`repro.obs.export` skips.
        """
        self._check_fork()
        path = self.spill_path()
        if path is None or not self._events:
            return 0
        os.makedirs(self.spill_dir, exist_ok=True)
        lines = "".join(
            json.dumps(event) + "\n" for event in self._events
        )
        with open(path, "a") as fh:
            fh.write(lines)
        flushed = len(self._events)
        self._events.clear()
        return flushed


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _TRACER

"""One structured-logging setup for every CLI and script.

``setup_logging`` configures the ``repro`` logger hierarchy exactly
once per call (idempotent: handlers are replaced, never stacked, so
repeated ``main()`` invocations in one process — the test suite — do
not duplicate output).  Two formats:

* ``human`` — bare messages on stderr, matching the diagnostics the
  CLIs printed before this module existed (scripts that grep the old
  output keep working).
* ``json`` — one JSON object per line (``ts``, ``level``, ``logger``,
  ``msg``) for log shippers.

``captureWarnings`` routes :mod:`warnings` output — the repository's
degrade-with-a-warning tolerance paths — through the same handler, so a
``--log-format json`` run emits *only* structured lines.  Library code
keeps using ``warnings.warn`` (callers and tests rely on the warnings
API); the bridge is active only in processes that called
``setup_logging``.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional, TextIO

__all__ = ["setup_logging", "get_logger", "JsonFormatter"]

ROOT_LOGGER = "repro"

_FORMATS = ("human", "json")


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)

    def formatTime(self, record, datefmt=None):  # pragma: no cover - unused
        return time.strftime("%H:%M:%S", time.localtime(record.created))


def setup_logging(
    fmt: str = "human",
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
    capture_warnings: bool = True,
) -> logging.Logger:
    """Configure (or reconfigure) the ``repro`` logger; returns it.

    ``stream=None`` follows ``sys.stderr`` dynamically — important under
    pytest's ``capsys``, which swaps ``sys.stderr`` per test; a handler
    bound to the stream object at setup time would write to a closed
    capture buffer.
    """
    if fmt not in _FORMATS:
        raise ValueError(f"unknown log format {fmt!r} (expected {_FORMATS})")
    handler = (
        _DynamicStderrHandler() if stream is None
        else logging.StreamHandler(stream)
    )
    handler.setFormatter(
        JsonFormatter() if fmt == "json" else logging.Formatter("%(message)s")
    )
    for name in (ROOT_LOGGER, "py.warnings"):
        logger = logging.getLogger(name)
        for old in list(logger.handlers):
            logger.removeHandler(old)
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    logging.captureWarnings(capture_warnings)
    return logging.getLogger(ROOT_LOGGER)


class _DynamicStderrHandler(logging.StreamHandler):
    """A StreamHandler that re-reads ``sys.stderr`` on every emit."""

    def __init__(self) -> None:
        super().__init__(sys.stderr)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:
        # StreamHandler.__init__ assigns; the dynamic lookup wins.
        pass


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")

"""Process resource gauges: peak RSS.

The benchmark harness (and any CLI with ``--metrics-out``) reports the
process's peak resident set size so memory regressions are tracked with
the same trajectory machinery as throughput regressions.  The reading
comes from ``getrusage`` — a high-water mark maintained by the kernel,
so sampling it once at the end of a run is exact, not a poll race.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

from repro.obs.metrics import MetricsRegistry, get_registry

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

__all__ = [
    "PEAK_RSS_GAUGE",
    "peak_rss_bytes",
    "current_rss_bytes",
    "sample_peak_rss",
]

#: Gauge name the peak-RSS sample lands under in metrics snapshots.
PEAK_RSS_GAUGE = "process.peak_rss_bytes"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unknown).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both are
    normalized to bytes here.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak * 1024)


def current_rss_bytes() -> int:
    """Current resident set size in bytes (0 if unknown).

    Unlike :func:`peak_rss_bytes` this is a *live* reading — the
    long-running prediction service samples it per ``/statsz`` request,
    where the high-water mark alone would hide a leak that grows and
    shrinks.  Linux only (``/proc/self/statm``); elsewhere returns 0 and
    callers fall back to the peak.
    """
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return 0


def sample_peak_rss(registry: Optional[MetricsRegistry] = None) -> int:
    """Record the current peak RSS into ``registry`` and return it."""
    peak = peak_rss_bytes()
    (registry or get_registry()).set_gauge(PEAK_RSS_GAUGE, peak)
    return peak

"""repro.obs — unified observability: metrics, tracing, profiling, logs.

One subsystem answers "what did this run actually do, and where did the
time go":

* :mod:`repro.obs.metrics` — process-wide counters, gauges and
  streaming histograms (:func:`get_registry`);
* :mod:`repro.obs.tracing` — spans and instant events with bounded
  buffers and JSONL spill (:func:`get_tracer`);
* :mod:`repro.obs.export` — Chrome ``trace_event`` / Perfetto JSON and
  flat metrics reports;
* :mod:`repro.obs.profile_hooks` — the ``REPRO_OBS`` opt-in wrappers
  around the simulator event loop, the parallel runner, store I/O and
  checkpointing (zero overhead when disabled);
* :mod:`repro.obs.logging` — the one structured-logging setup
  (``--log-format human|json``).

CLI entry points call :func:`bootstrap` once; the returned
:class:`ObsSession` owns output paths, worker spill plumbing and the
final export.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, Optional

from repro.obs.export import (
    metrics_report,
    validate_trace_events,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.logging import get_logger, setup_logging
from repro.obs.metrics import CounterBag, MetricsRegistry, get_registry
from repro.obs.profile_hooks import (
    OBS_ENV,
    SPILL_ENV,
    install,
    obs_enabled,
    uninstall,
)
from repro.obs.resources import (
    PEAK_RSS_GAUGE,
    peak_rss_bytes,
    sample_peak_rss,
)
from repro.obs.tracing import Tracer, get_tracer

__all__ = [
    "CounterBag",
    "MetricsRegistry",
    "Tracer",
    "ObsSession",
    "bootstrap",
    "get_registry",
    "get_tracer",
    "get_logger",
    "setup_logging",
    "install",
    "uninstall",
    "obs_enabled",
    "metrics_report",
    "validate_trace_events",
    "write_chrome_trace",
    "write_metrics",
    "run_phase",
    "peak_rss_bytes",
    "sample_peak_rss",
    "PEAK_RSS_GAUGE",
    "OBS_ENV",
    "SPILL_ENV",
]


def run_phase(name: str, **args):
    """Span context manager for one named phase of a run.

    Phases are the coarse, human-named stages of a campaign ("cold
    campaign", "warm campaign", "accuracy") — one level above the
    per-run spans the profile hooks record.  They export under the
    ``phase`` category so a Chrome trace shows the run's outline at a
    glance, and the benchmark harness uses the recorded durations to
    cross-check its own wall-clock measurements.
    """
    return get_tracer().span(f"phase:{name}", cat="phase", **args)

_log = get_logger("obs")


class ObsSession:
    """One CLI invocation's observability plumbing.

    Created by :func:`bootstrap`.  When active it owns the spill
    directory pool workers append to, and :meth:`finalize` merges
    everything into the requested artifacts.
    """

    def __init__(
        self,
        active: bool,
        trace_out: Optional[str] = None,
        metrics_out: Optional[str] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        self.active = active
        self.trace_out = trace_out
        self.metrics_out = metrics_out
        self.spill_dir = spill_dir

    def finalize(
        self, extra_metrics: Optional[Dict[str, MetricsRegistry]] = None
    ) -> None:
        """Write the requested artifacts and clean the spill directory."""
        if not self.active:
            return
        # The high-water mark is free to read and belongs in every
        # metrics snapshot: memory is a first-class benchmarked metric.
        sample_peak_rss(get_registry())
        tracer = get_tracer()
        if self.trace_out:
            events = write_chrome_trace(
                self.trace_out, tracer, spill_dir=self.spill_dir
            )
            _log.info("trace: %d events written to %s", events, self.trace_out)
        if self.metrics_out:
            write_metrics(
                self.metrics_out, get_registry(), extra=extra_metrics
            )
            _log.info("metrics: snapshot written to %s", self.metrics_out)
        if self.spill_dir:
            shutil.rmtree(self.spill_dir, ignore_errors=True)
            os.environ.pop(SPILL_ENV, None)


def bootstrap(
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    log_format: Optional[str] = None,
) -> ObsSession:
    """Wire observability for one CLI invocation.

    Recording turns on when ``REPRO_OBS`` is set *or* an output path is
    requested; either way the environment is updated so pool workers
    (which inherit it) record too.  Logging is configured regardless —
    every CLI gets the structured setup, with ``human`` as the default
    format.
    """
    setup_logging(log_format or "human")
    active = obs_enabled() or bool(trace_out or metrics_out)
    if not active:
        return ObsSession(active=False)
    os.environ.setdefault(OBS_ENV, "1")
    spill_dir = None
    if trace_out:
        # Workers spill beside the final artifact; merged at finalize.
        spill_dir = trace_out + ".spill"
        os.makedirs(spill_dir, exist_ok=True)
        os.environ[SPILL_ENV] = spill_dir
    install(spill_dir=spill_dir)
    registry = get_registry()
    registry.set_gauge("obs.enabled", 1.0)
    return ObsSession(
        active=True,
        trace_out=trace_out,
        metrics_out=metrics_out,
        spill_dir=spill_dir,
    )

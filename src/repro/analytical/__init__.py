"""First-order analytical GPU performance model (cross-check substrate).

The paper positions scale-model simulation against analytical modeling
(Section VIII cites Hong & Kim, GPUMech, GCoM).  This package provides a
small white-box bound model in that tradition: given a system
configuration and workload summary statistics, it computes the
issue/latency/NoC/DRAM throughput bounds and predicts IPC as their
minimum — useful as an independent sanity check on the timing simulator
and as a teaching artifact for *why* a workload lands in a scaling class.
"""

from repro.analytical.bounds import (
    AnalyticalEstimate,
    WorkloadStats,
    analyze,
    stats_from_result,
)

__all__ = [
    "AnalyticalEstimate",
    "WorkloadStats",
    "analyze",
    "stats_from_result",
]

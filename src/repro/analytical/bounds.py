"""Throughput-bound analytical model (roofline-style, MLP-aware).

Model inputs are per-workload summary statistics — instructions per
memory access and the L1/LLC miss rates — plus the machine configuration.
Four first-order bounds on aggregate IPC (thread instructions/cycle):

* **issue**:   ``num_sms * issue_width * threads_per_warp``;
* **latency**: each warp sustains one access per (burst + avg latency)
  cycles; with ``W`` warps per SM the machine sustains
  ``num_sms * W / (burst + latency)`` accesses/cycle (Little's law),
  times instructions per access;
* **noc**:     every L1 miss moves a request plus a response line across
  the NoC bisection;
* **dram**:    every LLC miss moves one line through the effective DRAM
  bandwidth.

The predicted IPC is the minimum; the binding bound names the workload's
bottleneck, which maps directly onto the paper's scaling taxonomy
(issue-bound -> linear, DRAM-bound with a fitting working set ->
super-linear once the cliff is crossed, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import PredictionError
from repro.gpu.config import GPUConfig
from repro.gpu.results import SimulationResult


@dataclass(frozen=True)
class WorkloadStats:
    """Per-workload summary statistics consumed by the model."""

    instructions_per_access: float  # thread instructions per warp access
    l1_miss_rate: float
    llc_miss_rate: float            # misses per LLC access

    def __post_init__(self) -> None:
        if self.instructions_per_access <= 0:
            raise PredictionError("instructions_per_access must be positive")
        for name in ("l1_miss_rate", "llc_miss_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise PredictionError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class AnalyticalEstimate:
    """Bound breakdown and the resulting IPC prediction."""

    bounds: Dict[str, float]
    ipc: float
    bottleneck: str

    def as_text(self) -> str:
        rows = "\n".join(
            f"  {name:8s} {value:10.1f}" + ("  <- binding" if name == self.bottleneck else "")
            for name, value in sorted(self.bounds.items(), key=lambda kv: kv[1])
        )
        return f"analytical IPC bounds:\n{rows}\npredicted IPC: {self.ipc:.1f}"


def stats_from_result(result: SimulationResult) -> WorkloadStats:
    """Summarize a simulation result into model inputs."""
    if result.memory_accesses == 0:
        raise PredictionError("workload performed no memory accesses")
    return WorkloadStats(
        instructions_per_access=(
            result.thread_instructions / result.memory_accesses
        ),
        l1_miss_rate=result.l1_miss_rate,
        llc_miss_rate=result.llc_miss_rate,
    )


def analyze(
    config: GPUConfig,
    stats: WorkloadStats,
    avg_memory_latency: float = None,
) -> AnalyticalEstimate:
    """Compute the four bounds and the predicted IPC."""
    threads = config.threads_per_warp
    ipa = stats.instructions_per_access

    issue_bound = config.num_sms * config.issue_width * threads

    if avg_memory_latency is None:
        hit = config.l1_hit_latency
        llc = (
            config.l1_hit_latency
            + 2 * config.effective_noc_latency
            + config.llc_latency
        )
        dram = llc + config.dram_latency
        p_l1 = 1.0 - stats.l1_miss_rate
        p_llc = stats.l1_miss_rate * (1.0 - stats.llc_miss_rate)
        p_dram = stats.l1_miss_rate * stats.llc_miss_rate
        avg_memory_latency = p_l1 * hit + p_llc * llc + p_dram * dram
    burst = (ipa / threads) / config.issue_width
    accesses_per_cycle = (
        config.num_sms * config.warps_per_sm / (burst + avg_memory_latency)
    )
    latency_bound = accesses_per_cycle * ipa

    line = config.line_size
    request = config.noc_request_bytes
    noc_bytes_per_access = stats.l1_miss_rate * (line + request)
    if noc_bytes_per_access > 0:
        noc_bound = config.noc_bytes_per_cycle / noc_bytes_per_access * ipa
    else:
        noc_bound = float("inf")

    dram_bytes_per_access = stats.l1_miss_rate * stats.llc_miss_rate * line
    if dram_bytes_per_access > 0:
        total_dram = config.num_mcs * config.mc_bytes_per_cycle
        dram_bound = total_dram / dram_bytes_per_access * ipa
    else:
        dram_bound = float("inf")

    bounds = {
        "issue": issue_bound,
        "latency": latency_bound,
        "noc": noc_bound,
        "dram": dram_bound,
    }
    bottleneck = min(bounds, key=bounds.get)
    return AnalyticalEstimate(
        bounds=bounds, ipc=bounds[bottleneck], bottleneck=bottleneck
    )

"""The append-only campaign progress journal.

A long sweep dispatches hundreds of individually fault-tolerant runs,
but the *campaign* itself used to be all-or-nothing: a crash an hour in
discarded every completed workload because nothing durable said which
ones were done.  The journal fixes that at the layer where campaigns
actually die.

One campaign owns one directory, ``<base>/<plan digest>/``, holding a
single ``journal.jsonl``:

* line 1 is the **sealed header** — campaign kind, journal schema
  version, the full plan payload and the 16-hex plan digest that names
  the directory, plus a self-digest over those fields.  Attaching to an
  existing journal re-derives both digests; a mismatch (different plan,
  tampered header) raises :class:`~repro.exceptions.CampaignError`
  rather than silently mixing two campaigns' progress.
* every later line is one **workload outcome**: unit id, status
  (``ok``/``failed``), the full measurement record, a sequence number
  and a content digest of the record.  Lines are written through
  :func:`repro.fsio.append_text` (seam label ``journal``), so a
  completed append is durable and a crash can at worst tear the final
  line — which :meth:`CampaignJournal.replay` skips, costing exactly
  one workload's recomputation.
* an optional trailing ``complete`` marker records that the sweep
  finished.

Resume is therefore a pure function of the journal: re-invoking the
same plan replays the records, skips every sealed unit, and the runtime
(:mod:`repro.campaign.runtime`) executes only the remainder.

Chaos seam: ``REPRO_CAMPAIGN_KILL_AFTER=<k>`` SIGKILLs the process the
moment this process's *k*-th workload record becomes durable — the
exact crash window ``scripts/campaign_chaos.py`` drills, mirroring the
``die-at-kernel`` directive one layer down.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import warnings
from typing import Dict, List, Optional

from repro import fsio
from repro.exceptions import CampaignError
from repro.verify.digest import canonical_json, content_digest

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "KILL_AFTER_ENV",
    "CampaignJournal",
    "plan_digest",
]

#: Bump on any breaking change to the journal line formats.
JOURNAL_SCHEMA_VERSION = 1

#: Chaos seam: SIGKILL this process right after its <k>-th workload
#: record is durably appended (see module docstring).
KILL_AFTER_ENV = "REPRO_CAMPAIGN_KILL_AFTER"

_JOURNAL_NAME = "journal.jsonl"

#: Statuses a workload record may carry.
_UNIT_STATUSES = frozenset(("ok", "failed"))


def plan_digest(kind: str, plan: dict) -> str:
    """16-hex digest naming a campaign: kind + schema + canonical plan."""
    payload = canonical_json(
        {"kind": kind, "schema_version": JOURNAL_SCHEMA_VERSION, "plan": plan}
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _header_digest(header: dict) -> str:
    """Self-digest over every header field except the digest itself."""
    scrubbed = {k: v for k, v in header.items() if k != "header_digest"}
    return content_digest(scrubbed)


def _kill_after() -> Optional[int]:
    raw = os.environ.get(KILL_AFTER_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(f"{KILL_AFTER_ENV}={raw!r} is not an integer; ignored")
        return None
    return value if value > 0 else None


class CampaignJournal:
    """One campaign's durable progress record (see module docstring).

    Build with :meth:`open`: it derives the plan digest, creates (and
    seals) a fresh journal or attaches to the existing one, and replays
    completed units into :attr:`completed` — a ``unit id -> {"status",
    "record"}`` mapping in journal order.
    """

    def __init__(self, directory: str, kind: str, digest: str) -> None:
        self.directory = directory
        self.kind = kind
        self.digest = digest
        self.path = os.path.join(directory, _JOURNAL_NAME)
        #: unit id -> {"status": ..., "record": ...}, journal order.
        self.completed: Dict[str, dict] = {}
        #: Torn/corrupt record lines skipped during replay.
        self.corrupt_lines = 0
        #: True once a ``complete`` marker was seen or written.
        self.complete = False
        self._seq = 0
        self._appended_here = 0

    # --- construction ----------------------------------------------------------
    @classmethod
    def open(
        cls, base_dir: str, kind: str, plan: dict, created_unix: float
    ) -> "CampaignJournal":
        """Create-or-attach the journal for ``plan`` under ``base_dir``.

        A fresh journal writes the sealed header immediately (fsync'd),
        so the binding between directory name and plan is durable before
        any workload executes.  ``created_unix`` is stamped into fresh
        headers only; attaching keeps the original stamp.
        """
        digest = plan_digest(kind, plan)
        journal = cls(os.path.join(base_dir, digest), kind, digest)
        if os.path.exists(journal.path):
            journal._replay(plan)
        else:
            os.makedirs(journal.directory, exist_ok=True)
            header = {
                "type": "header",
                "kind": kind,
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "plan_digest": digest,
                "plan": plan,
                "created_unix": created_unix,
            }
            header["header_digest"] = _header_digest(header)
            fsio.append_text(
                journal.path, json.dumps(header, sort_keys=True) + "\n",
                op="journal",
            )
        return journal

    @classmethod
    def discard(cls, base_dir: str, kind: str, plan: dict) -> bool:
        """Remove an existing journal for ``plan`` (``--no-resume``).

        Returns True when something was deleted.  Only the journal file
        and its (then-empty) digest directory are touched — never
        siblings under ``base_dir``.
        """
        import shutil

        directory = os.path.join(base_dir, plan_digest(kind, plan))
        if not os.path.isdir(directory):
            return False
        shutil.rmtree(directory)
        return True

    # --- replay ----------------------------------------------------------------
    def _replay(self, plan: dict) -> None:
        with open(self.path) as fh:
            lines = fh.readlines()
        if not lines:
            raise CampaignError(
                f"campaign journal {self.path} is empty — no sealed header; "
                "remove the directory (or rerun with --no-resume) to start "
                "fresh"
            )
        self._check_header(lines[0], plan)
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn trailing line (crash mid-append): the unit was
                # not sealed, so it simply re-executes.
                self.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                self.corrupt_lines += 1
                continue
            kind = record.get("type")
            if kind == "workload":
                self._replay_unit(record)
            elif kind == "complete":
                self.complete = True
        if self.corrupt_lines:
            warnings.warn(
                f"campaign journal {self.path}: skipped "
                f"{self.corrupt_lines} corrupt line(s); the affected "
                "workloads will re-execute"
            )

    def _check_header(self, line: str, plan: dict) -> None:
        try:
            header = json.loads(line)
        except json.JSONDecodeError:
            raise CampaignError(
                f"campaign journal {self.path}: unreadable header; remove "
                "the directory (or rerun with --no-resume) to start fresh"
            )
        if not isinstance(header, dict) or header.get("type") != "header":
            raise CampaignError(
                f"campaign journal {self.path}: first line is not a header"
            )
        if header.get("header_digest") != _header_digest(header):
            raise CampaignError(
                f"campaign journal {self.path}: header failed its "
                "self-digest — the seal is broken"
            )
        expected = plan_digest(self.kind, plan)
        if (
            header.get("plan_digest") != expected
            or header.get("kind") != self.kind
            or header.get("schema_version") != JOURNAL_SCHEMA_VERSION
        ):
            raise CampaignError(
                f"campaign journal {self.path} was sealed for a different "
                f"plan (journal {header.get('plan_digest')!r}, current "
                f"{expected!r}); refusing to mix campaigns"
            )

    def _replay_unit(self, record: dict) -> None:
        unit = record.get("unit")
        status = record.get("status")
        payload = record.get("record")
        if (
            not isinstance(unit, str)
            or status not in _UNIT_STATUSES
            or not isinstance(payload, dict)
        ):
            self.corrupt_lines += 1
            return
        if record.get("record_digest") != content_digest(payload):
            # A flipped bit inside a sealed record: treat the unit as
            # unsealed so it recomputes, rather than trusting bad data.
            self.corrupt_lines += 1
            return
        if unit in self.completed:
            warnings.warn(
                f"campaign journal {self.path}: duplicate record for "
                f"unit {unit}; keeping the latest"
            )
        self.completed[unit] = {"status": status, "record": payload}
        self._seq = max(self._seq, int(record.get("seq", 0)))

    # --- appends ---------------------------------------------------------------
    def record(
        self, unit: str, status: str, record: dict, recorded_unix: float
    ) -> None:
        """Durably seal one workload outcome, then arm the chaos seam."""
        if status not in _UNIT_STATUSES:
            raise CampaignError(
                f"journal record for {unit}: unknown status {status!r}"
            )
        self._seq += 1
        line = {
            "type": "workload",
            "seq": self._seq,
            "unit": unit,
            "status": status,
            "record": record,
            "record_digest": content_digest(record),
            "recorded_unix": recorded_unix,
        }
        fsio.append_text(
            self.path, json.dumps(line, sort_keys=True) + "\n", op="journal"
        )
        self.completed[unit] = {"status": status, "record": record}
        self._appended_here += 1
        kill_after = _kill_after()
        if kill_after is not None and self._appended_here == kill_after:
            # The chaos harness's crash window: the record above is
            # durable, nothing else is.  SIGKILL = no cleanup, by design.
            os.kill(os.getpid(), signal.SIGKILL)

    def mark_complete(self, workloads: int, recorded_unix: float) -> None:
        """Append the trailing ``complete`` marker (idempotent)."""
        if self.complete:
            return
        line = {
            "type": "complete",
            "workloads": workloads,
            "recorded_unix": recorded_unix,
        }
        fsio.append_text(
            self.path, json.dumps(line, sort_keys=True) + "\n", op="journal"
        )
        self.complete = True

    # --- introspection ---------------------------------------------------------
    def statuses(self) -> Dict[str, int]:
        """Completed-unit counts by status (``ok``/``failed``)."""
        counts: Dict[str, int] = {status: 0 for status in _UNIT_STATUSES}
        for entry in self.completed.values():
            counts[entry["status"]] += 1
        return counts

    def units(self) -> List[str]:
        """Completed unit ids, journal order."""
        return list(self.completed)

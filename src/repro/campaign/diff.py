"""Differential comparison of campaign artifacts.

The resilience contract says a crashed-and-resumed campaign must
converge to the artifact an uninterrupted run would have produced,
bit-identically once volatile wall-time fields are scrubbed.  "The
artifacts differ" is useless for debugging that; in the spirit of
:mod:`repro.verify.replay`, :func:`first_artifact_divergence` walks the
two artifacts together and names the *first* dotted path where they
part ways — ``workloads[3].ipcs[1]``, ``confusion.linear.sub-linear`` —
plus both values at that path.

``scripts/campaign_chaos.py`` and the resume tests assert on this:
convergence means :func:`first_artifact_divergence` returns ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.campaign.runtime import VOLATILE_ARTIFACT_FIELDS, scrub_artifact

__all__ = ["ArtifactDivergence", "first_artifact_divergence"]


@dataclass(frozen=True)
class ArtifactDivergence:
    """First point where two artifacts disagree."""

    path: str
    ours: object
    theirs: object

    def describe(self) -> str:
        return f"artifacts diverge at {self.path}: {self.ours!r} != {self.theirs!r}"


def _walk(ours, theirs, path: str) -> Optional[ArtifactDivergence]:
    if isinstance(ours, dict) and isinstance(theirs, dict):
        for key in sorted(set(ours) | set(theirs)):
            here = f"{path}.{key}" if path else str(key)
            if key not in ours:
                return ArtifactDivergence(here, "<absent>", theirs[key])
            if key not in theirs:
                return ArtifactDivergence(here, ours[key], "<absent>")
            found = _walk(ours[key], theirs[key], here)
            if found is not None:
                return found
        return None
    if isinstance(ours, list) and isinstance(theirs, list):
        if len(ours) != len(theirs):
            return ArtifactDivergence(
                f"{path}.length" if path else "length", len(ours), len(theirs)
            )
        for index, (a, b) in enumerate(zip(ours, theirs)):
            found = _walk(a, b, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if ours != theirs or type(ours) is not type(theirs):
        return ArtifactDivergence(path or "<root>", ours, theirs)
    return None


def first_artifact_divergence(
    ours: dict,
    theirs: dict,
    scrub: bool = True,
    volatile=VOLATILE_ARTIFACT_FIELDS,
) -> Optional[ArtifactDivergence]:
    """First divergence between two artifacts, or None if they converge.

    With ``scrub=True`` (the default) volatile wall-time fields are
    dropped from both sides first, so only the deterministic core is
    compared — the exact convergence the resilience contract promises.
    """
    if scrub:
        ours = scrub_artifact(ours, volatile)
        theirs = scrub_artifact(theirs, volatile)
    return _walk(ours, theirs, "")

"""Campaign resilience: journaled, crash-safe, resumable sweeps.

The per-run layers (retry/checkpoint/breaker, PRs 2/3/5) make a single
simulation survivable; this package makes the *campaign* survivable.
Three pieces:

* :mod:`repro.campaign.journal` — the append-only progress journal
  under ``results/campaigns/<plan digest>/``: a sealed header binding
  the plan, then one durable record per workload outcome.
* :mod:`repro.campaign.runtime` — :func:`~repro.campaign.runtime.
  run_units`, the execute-or-reuse loop with SIGINT/SIGTERM drain and
  ``--max-wall`` / ``--max-workloads`` budgets, plus
  :func:`~repro.campaign.runtime.scrub_artifact` for the volatile
  wall-time fields.
* :mod:`repro.campaign.diff` — :func:`~repro.campaign.diff.
  first_artifact_divergence`, the differential that proves a resumed
  campaign converged to the uninterrupted artifact.

``repro.zoo.campaign`` and ``repro.bench.harness`` both execute through
this runtime; ``scripts/campaign_chaos.py`` kill -9s it at seeded
points and asserts the contract holds.
"""

from repro.campaign.diff import ArtifactDivergence, first_artifact_divergence
from repro.campaign.journal import (
    JOURNAL_SCHEMA_VERSION,
    KILL_AFTER_ENV,
    CampaignJournal,
    plan_digest,
)
from repro.campaign.runtime import (
    VOLATILE_ARTIFACT_FIELDS,
    CampaignBudget,
    RuntimeSummary,
    UnitOutcome,
    run_units,
    scrub_artifact,
)

__all__ = [
    "ArtifactDivergence",
    "CampaignBudget",
    "CampaignJournal",
    "JOURNAL_SCHEMA_VERSION",
    "KILL_AFTER_ENV",
    "RuntimeSummary",
    "UnitOutcome",
    "VOLATILE_ARTIFACT_FIELDS",
    "first_artifact_divergence",
    "plan_digest",
    "run_units",
    "scrub_artifact",
]

"""Resumable unit-by-unit campaign execution with budgets.

:func:`run_units` is the one loop every campaign driver (zoo sweep,
bench harness) executes through.  It walks the plan's units **in plan
order**, and for each one either

* reuses the sealed outcome from the :class:`~repro.campaign.journal.
  CampaignJournal` (zero recomputation — the record in the journal *is*
  the measurement), or
* calls the driver's ``execute`` callback, then durably journals the
  outcome before moving on.

Because reuse preserves plan order and journaled records are fully
deterministic, a resumed campaign assembles the *same* outcome sequence
an uninterrupted run would — which is what makes artifacts converge
bit-identically once volatile wall-time fields are scrubbed
(:func:`scrub_artifact`).

The loop also owns the two graceful-stop paths:

* **drain** — ``ShutdownCoordinator.check()`` is polled at every unit
  boundary; a SIGINT/SIGTERM stops the sweep with everything sealed so
  far intact (the CLI then writes a partial artifact and exits 75);
* **budgets** — :class:`CampaignBudget` caps this invocation's wall
  clock (``--max-wall``) and the campaign's total completed unit count
  (``--max-workloads``).  ``max_workloads`` counts reused units too, so
  a budgeted run and its resumed continuation stop at the same place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ShutdownRequested
from repro.campaign.journal import CampaignJournal

__all__ = [
    "VOLATILE_ARTIFACT_FIELDS",
    "CampaignBudget",
    "UnitOutcome",
    "RuntimeSummary",
    "run_units",
    "scrub_artifact",
]

#: Artifact fields that legitimately differ between two runs of the same
#: plan (timestamps, wall-clock throughput, RSS).  Everything else must
#: converge bit-identically between an uninterrupted campaign and a
#: crashed-and-resumed one — that is the contract ``scripts/
#: campaign_chaos.py`` enforces.
VOLATILE_ARTIFACT_FIELDS = frozenset(
    {
        "created_unix",
        "recorded_unix",
        "wall_s",
        "wall_time_s",
        "collection_seconds",
        "workloads_per_sec",
        "runs_per_sec",
        "cold_wall_s",
        "warm_wall_s",
        "peak_rss_mb",
        "baseline_rss_mb",
    }
)


def scrub_artifact(value, volatile=VOLATILE_ARTIFACT_FIELDS):
    """Recursively drop volatile fields, leaving the comparable core."""
    if isinstance(value, dict):
        return {
            key: scrub_artifact(item, volatile)
            for key, item in value.items()
            if key not in volatile
        }
    if isinstance(value, list):
        return [scrub_artifact(item, volatile) for item in value]
    return value


@dataclass(frozen=True)
class CampaignBudget:
    """Graceful stop-early limits for one campaign invocation.

    ``max_wall_s`` bounds *this process's* elapsed wall clock (a resumed
    invocation gets a fresh allowance — reused units are nearly free, so
    successive budgeted invocations ratchet the sweep forward).
    ``max_workloads`` bounds the campaign's **total** completed units,
    reused included, so the stopping point is a function of the plan,
    not of crash history.
    """

    max_wall_s: Optional[float] = None
    max_workloads: Optional[int] = None

    def exceeded(self, completed: int, elapsed_s: float) -> Optional[str]:
        """Return the stop reason, or None while within budget."""
        if self.max_workloads is not None and completed >= self.max_workloads:
            return "workload-budget"
        if self.max_wall_s is not None and elapsed_s >= self.max_wall_s:
            return "wall-budget"
        return None


@dataclass
class UnitOutcome:
    """One unit's sealed result, in plan order."""

    unit: str
    status: str  # "ok" | "failed"
    record: dict
    reused: bool


@dataclass
class RuntimeSummary:
    """What one :func:`run_units` invocation did, and why it stopped."""

    outcomes: List[UnitOutcome] = field(default_factory=list)
    reused: int = 0
    executed: int = 0
    #: None when the plan ran to completion, else "drain" /
    #: "wall-budget" / "workload-budget".
    stopped: Optional[str] = None
    #: Signal number when ``stopped == "drain"``, else 0.
    signum: int = 0
    #: Unit ids the stop left unexecuted, plan order.
    remaining: List[str] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.outcomes)

    @property
    def partial(self) -> bool:
        return self.stopped is not None


def run_units(
    units: List[str],
    execute: Callable[[str], Tuple[str, dict]],
    journal: Optional[CampaignJournal] = None,
    budget: Optional[CampaignBudget] = None,
    log: Optional[Callable[[str], None]] = None,
    clock: Callable[[], float] = time.monotonic,
    now: Callable[[], float] = time.time,
) -> RuntimeSummary:
    """Execute-or-reuse every unit in plan order (see module docstring).

    ``execute(unit)`` returns ``(status, record)`` with status ``"ok"``
    or ``"failed"`` — per-unit casualties are *data*, handled by the
    driver's fault domain, never exceptions here.  Exceptions that do
    escape ``execute`` are campaign-fatal and propagate, except
    :class:`~repro.exceptions.ShutdownRequested`, which becomes a clean
    ``stopped="drain"``.

    ``journal=None`` runs the same loop without persistence (drain and
    budgets still apply; nothing is reused, nothing recorded).
    """
    budget = budget or CampaignBudget()
    summary = RuntimeSummary()
    started = clock()
    say = log or (lambda message: None)
    for index, unit in enumerate(units):
        sealed = journal.completed.get(unit) if journal else None
        stop = budget.exceeded(summary.completed, clock() - started)
        if stop is not None and (sealed is None or stop == "workload-budget"):
            # Wall budget never drops already-sealed units: reusing them
            # is free and keeps resumed runs converging on the full
            # artifact.  The workload cap applies to sealed units too,
            # so budgeted runs stop at a plan-determined point.
            summary.stopped = stop
            summary.remaining = units[index:]
            break
        if sealed is not None:
            summary.outcomes.append(
                UnitOutcome(unit, sealed["status"], sealed["record"], True)
            )
            summary.reused += 1
            continue
        try:
            from repro.resilience import get_coordinator

            get_coordinator().check()
            status, record = execute(unit)
        except ShutdownRequested as exc:
            summary.stopped = "drain"
            summary.signum = exc.signum
            summary.remaining = units[index:]
            break
        if journal is not None:
            journal.record(unit, status, record, recorded_unix=now())
        summary.outcomes.append(UnitOutcome(unit, status, record, False))
        summary.executed += 1
    else:
        if journal is not None:
            journal.mark_complete(summary.completed, recorded_unix=now())
    if summary.reused and journal is not None:
        say(
            f"resume: reused {summary.reused} of {len(units)} workload(s) "
            f"from journal {journal.digest}"
        )
    if summary.stopped:
        say(
            f"campaign stopped early ({summary.stopped}): "
            f"{summary.completed} completed, "
            f"{len(summary.remaining)} remaining"
        )
    return summary

"""Exception hierarchy for the repro package.

Every error raised deliberately by this code base derives from
:class:`ReproError`, so callers can catch package failures without
swallowing genuine bugs (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A system configuration is inconsistent or cannot be derived."""


class SimulationError(ReproError):
    """The timing simulator reached an invalid state."""


class TraceError(ReproError):
    """A workload trace is malformed or cannot be generated."""


class PredictionError(ReproError):
    """The scale-model predictor received inputs it cannot use."""


class WorkloadError(ReproError):
    """An unknown benchmark or an unsupported workload configuration."""


class CheckpointError(ReproError):
    """A simulation checkpoint cannot be written, read or applied.

    Raised only for programming errors (snapshotting mid-kernel) —
    corrupt or version-drifted checkpoint *files* never raise; they are
    quarantined and resume degrades to an older snapshot or a cold
    start (see :mod:`repro.checkpoint`).
    """


class InvariantError(ReproError):
    """A paranoia-mode invariant check failed: simulator state is
    internally inconsistent.

    Raised only while :mod:`repro.verify` is installed (``REPRO_VERIFY=1``
    / ``--verify``).  Deliberately *not* retried by the execution layer's
    fault handling in spirit — an invariant violation is a model bug, not
    a transient fault — but it derives from :class:`ReproError` so
    keep-going campaigns record it in the failure manifest like any other
    casualty instead of dying mid-batch.
    """


class CampaignError(ReproError):
    """A campaign-level orchestration failure (journal, plan, resume).

    Raised by :mod:`repro.campaign` for conditions the operator must
    resolve — a journal sealed for a *different* plan, an unreadable
    header — never for per-workload casualties, which campaigns record
    in their artifact and press on from.
    """


class CampaignIncomplete(CampaignError):
    """A campaign stopped (drain or budget) before any unit completed.

    There is no artifact to write — not even a partial one — but the
    situation is resumable: the journal holds whatever was sealed, and
    rerunning the same command continues the sweep.  CLI boundaries map
    this to :data:`repro.resilience.EXIT_INTERRUPTED` (75).
    """

    def __init__(self, message: str, reason: str = "interrupted"):
        super().__init__(message)
        self.reason = reason


class ExecutionError(ReproError):
    """A batch execution finished with runs that failed despite retries.

    Raised by :class:`repro.analysis.parallel.ParallelRunner` *after* all
    completed results have been merged into the result store, so catching
    it never costs finished work; the failed runs are described in the
    failure manifest (``results/failures/``).
    """


class ShutdownRequested(BaseException):
    """A graceful shutdown (SIGINT/SIGTERM) drained the current campaign.

    Deliberately *not* a :class:`ReproError`: ``--keep-going`` handlers
    catch :class:`ReproError` to skip one failed experiment and press on,
    and a shutdown must never be swallowed that way.  Like
    :class:`KeyboardInterrupt` it derives from :class:`BaseException`
    and is raised only after the partial-progress contract has been
    honoured — completed results merged, the failure manifest written —
    so catching it at the CLI boundary and exiting with
    :data:`repro.resilience.EXIT_INTERRUPTED` loses nothing.
    """

    def __init__(self, message: str = "shutdown requested", signum: int = 0):
        super().__init__(message)
        self.signum = signum

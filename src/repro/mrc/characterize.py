"""Workload characterization from reuse behaviour.

Table II of the paper characterizes each benchmark by its memory footprint
and (implicitly, via Section IV) its data reuse; this module measures both
from a trace, closing the loop between the catalog's *declared* properties
and what the generated streams actually do:

* :func:`footprint_lines` — distinct lines touched (the footprint column);
* :func:`reuse_factor` — mean touches per distinct line (the "high data
  reuse" property that separates super-linear dct from zero-reuse ht);
* :func:`working_set_knees` — capacities where the miss ratio improves
  fastest, i.e. the working-set hierarchy visible in the stack-distance
  histogram.

Used by the Table II verification harness and available to users
characterizing their own workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import TraceError
from repro.memory_regions import BYPASS_BASE
from repro.mrc.stack_distance import StackDistanceProfiler
from repro.trace.kernel import WorkloadTrace
from repro.units import MB


@dataclass(frozen=True)
class WorkloadCharacter:
    """Measured reuse characterization of one workload trace."""

    workload: str
    accesses: int
    footprint_lines: int
    bypass_lines: int            # one-shot streaming (no-allocate) lines
    reuse_factor: float          # accesses per distinct (cacheable) line
    knees_lines: Tuple[int, ...]  # working-set knees, ascending

    def footprint_mb(self, line_size: int = 128, capacity_scale: float = 0.125) -> float:
        """Footprint in nominal (paper-scale) megabytes."""
        return self.footprint_lines * line_size / capacity_scale / MB

    def knees_mb(self, line_size: int = 128, capacity_scale: float = 0.125) -> List[float]:
        return [k * line_size / capacity_scale / MB for k in self.knees_lines]


def characterize(workload: WorkloadTrace, max_accesses: Optional[int] = None) -> WorkloadCharacter:
    """Measure footprint, reuse and working-set knees of a trace.

    Walks the raw (unshuffled) access stream once; ``max_accesses`` caps
    the walk for very large traces (a documented sampling of the prefix).
    """
    profiler = StackDistanceProfiler()
    bypass: set = set()
    seen = 0
    for line in workload.iter_accesses():
        if max_accesses is not None and seen >= max_accesses:
            break
        seen += 1
        if line >= BYPASS_BASE:
            bypass.add(line)
        else:
            profiler.access(line)
    if seen == 0:
        raise TraceError(f"{workload.name}: empty access stream")
    knees = working_set_knees(profiler)
    cacheable = profiler.accesses
    return WorkloadCharacter(
        workload=workload.name,
        accesses=seen,
        footprint_lines=profiler.distinct_lines + len(bypass),
        bypass_lines=len(bypass),
        reuse_factor=(cacheable / profiler.distinct_lines
                      if profiler.distinct_lines else 0.0),
        knees_lines=tuple(knees),
    )


def working_set_knees(
    profiler: StackDistanceProfiler,
    capacities: Optional[Sequence[int]] = None,
    min_gain: float = 0.08,
) -> List[int]:
    """Capacities (in lines) where hit ratio jumps by >= ``min_gain``.

    Capacities default to a geometric ladder up to the footprint; a knee at
    capacity ``c`` means the working set between the previous ladder point
    and ``c`` is heavily reused — the discrete analogue of the miss-rate
    cliff the predictor exploits.
    """
    if profiler.accesses == 0:
        return []
    if capacities is None:
        top = max(2, profiler.distinct_lines)
        ladder = []
        c = 16
        while c < top:
            ladder.append(c)
            c *= 2
        ladder.append(top)
        capacities = ladder
    knees = []
    prev_hit = 0.0
    for capacity in capacities:
        hit = 1.0 - profiler.miss_ratio_at(capacity)
        if hit - prev_hit >= min_gain:
            knees.append(capacity)
        prev_hit = hit
    return knees


def characterize_catalog(
    specs: Dict[str, "object"],
    build,
    max_accesses: int = 60000,
) -> Dict[str, WorkloadCharacter]:
    """Characterize every benchmark in a catalog (prefix-sampled)."""
    out = {}
    for abbr, spec in specs.items():
        out[abbr] = characterize(build(spec), max_accesses=max_accesses)
    return out

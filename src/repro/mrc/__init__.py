"""Miss-rate-curve machinery (Section V-A of the paper).

The strong-scaling workflow needs MPKI as a function of LLC capacity.
Collecting it through detailed timing simulation would defeat the purpose,
so — following the literature the paper builds on — this package provides

* :mod:`repro.mrc.stack_distance` — an exact single-pass reuse/stack
  distance histogram (Conte et al. [20]) using a Fenwick tree, evaluated
  at every capacity of interest in one pass;
* :mod:`repro.mrc.statstack` — a StatStack-flavoured statistical
  approximation (Eklov and Hagersten [23]) built from forward reuse
  distances, much cheaper than exact stack distances;
* :mod:`repro.mrc.interleave` — a GPU-aware interleaving model in the
  spirit of Nugteren et al. [49]: per-warp streams are merged round-robin
  across warps, CTAs and SMs and filtered through functional L1s to form
  the LLC reference stream;
* :mod:`repro.mrc.collector` — the end-to-end collector: workload trace →
  LLC stream → :class:`~repro.mrc.curve.MissRateCurve`;
* :mod:`repro.mrc.cliff` — region analysis (pre-cliff / cliff /
  post-cliff) used by the predictor.
"""

from repro.mrc.curve import MissRateCurve
from repro.mrc.cliff import CliffAnalysis, Region, analyze_regions
from repro.mrc.collector import collect_miss_rate_curve
from repro.mrc.stack_distance import StackDistanceProfiler
from repro.mrc.statstack import statstack_miss_ratios

__all__ = [
    "MissRateCurve",
    "CliffAnalysis",
    "Region",
    "analyze_regions",
    "collect_miss_rate_curve",
    "StackDistanceProfiler",
    "statstack_miss_ratios",
]

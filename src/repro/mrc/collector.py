"""End-to-end miss-rate-curve collection from a workload trace.

Pipeline (Section V-A of the paper): functional trace → GPU-aware
interleaving (:mod:`repro.mrc.interleave`) → per-virtual-SM functional L1
filtering → LLC reference stream → stack-distance profiling → MPKI at
every LLC capacity of interest, all in a single pass over the trace.

This path involves no timing simulation, which is what makes miss-rate
curves orders of magnitude cheaper to collect than scale-model
performance profiles.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Sequence

from repro.exceptions import PredictionError
from repro.gpu.cache import SetAssocCache
from repro.gpu.config import GPUConfig
from repro.memory_regions import BYPASS_BASE
from repro.mrc.curve import MissRateCurve
from repro.mrc.interleave import StreamStats, iter_interleaved
from repro.mrc.stack_distance import MultiCapacityLRU, StackDistanceProfiler
from repro.mrc.statstack import ReuseDistanceSampler, statstack_miss_ratios
from repro.trace.kernel import WorkloadTrace


def paper_capacity_points(
    baseline: Optional[GPUConfig] = None,
    sizes: Sequence[int] = (8, 16, 32, 64, 128),
) -> List[int]:
    """Nominal LLC capacities of the paper's systems (2.125 ... 34 MB)."""
    base = baseline if baseline is not None else GPUConfig.paper_baseline()
    return [base.scaled(n).llc_size for n in sizes]


def collect_miss_rate_curve(
    workload: WorkloadTrace,
    capacities_bytes: Optional[Sequence[int]] = None,
    config: Optional[GPUConfig] = None,
    method: str = "stack",
    num_virtual_sms: int = 16,
) -> MissRateCurve:
    """Collect the LLC miss-rate curve of ``workload``.

    ``capacities_bytes`` are nominal capacities (default: the paper's five
    system points); the configured ``capacity_scale`` converts them to
    simulated lines.  ``method`` selects the profiler:

    * ``"stack"`` — exact single-pass stack distances (default);
    * ``"lru"`` — exact multi-capacity LRU simulation;
    * ``"statstack"`` — statistical estimate from reuse distances.
    """
    cfg = config if config is not None else GPUConfig.paper_baseline()
    caps = list(capacities_bytes) if capacities_bytes else paper_capacity_points(cfg)
    if any(c <= 0 for c in caps):
        raise PredictionError(f"capacities must be positive: {caps}")
    cap_lines = [
        max(1, int(c * cfg.capacity_scale) // cfg.line_size) for c in caps
    ]

    start = _time.perf_counter()
    l1s = [
        SetAssocCache(cfg.l1_sets, cfg.l1_assoc, name=f"mrc-l1-{i}")
        for i in range(num_virtual_sms)
    ]
    if method == "stack":
        profiler = StackDistanceProfiler()
    elif method == "lru":
        profiler = MultiCapacityLRU(cap_lines)
    elif method == "statstack":
        profiler = ReuseDistanceSampler()
    else:
        raise PredictionError(
            f"unknown MRC method {method!r}; use stack, lru or statstack"
        )

    ctas_per_sm = 6
    llc_accesses = 0
    l1_accesses = 0
    bypass_misses = 0
    stream_stats = StreamStats()
    for vsm, chunk in iter_interleaved(
        workload, num_virtual_sms, ctas_per_sm, stats=stream_stats
    ):
        l1 = l1s[vsm]
        l1_access = l1.access
        profile = profiler.access
        for line in chunk.tolist():
            l1_accesses += 1
            if not l1_access(line):
                llc_accesses += 1
                if line >= BYPASS_BASE:
                    # No-allocate streaming hint: misses at every capacity.
                    bypass_misses += 1
                else:
                    profile(line)

    if llc_accesses == 0:
        raise PredictionError(
            f"{workload.name}: no LLC accesses reached the profiler"
        )
    profiled = llc_accesses - bypass_misses
    if method == "statstack":
        ratios = statstack_miss_ratios(profiler, cap_lines)
        misses = [r * profiled + bypass_misses for r in ratios]
    else:
        misses = [float(m) + bypass_misses for m in profiler.miss_curve(cap_lines)]
    ratios = [m / llc_accesses for m in misses]

    # Thread instructions were accumulated during the interleaving pass.
    thread_instructions = stream_stats.thread_instructions(32)
    kilo_instructions = thread_instructions / 1000.0
    mpki = [m / kilo_instructions for m in misses]
    elapsed = _time.perf_counter() - start
    return MissRateCurve(
        workload=workload.name,
        capacities_bytes=tuple(caps),
        mpki=tuple(mpki),
        miss_ratio=tuple(ratios),
        metadata={
            "method_stack": 1.0 if method == "stack" else 0.0,
            "l1_accesses": float(l1_accesses),
            "llc_accesses": float(llc_accesses),
            "thread_instructions": float(thread_instructions),
            "collection_seconds": elapsed,
        },
    )

"""Exact single-pass stack-distance (reuse-distance) profiling.

Implements the classic single-pass algorithm (Conte et al. [20], Mattson's
stack algorithm): one traversal of the reference stream yields a stack
distance histogram from which the miss count of *every* fully-associative
LRU capacity can be read — the property that makes miss-rate-curve
collection two orders of magnitude cheaper than timing simulation.

The distinct-lines-since-last-access count is maintained with a Fenwick
(binary indexed) tree over stream positions holding a 1 at the last
occurrence of each line.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.exceptions import PredictionError

#: Histogram bucket index used for cold (first-reference) accesses.
COLD = -1


class FenwickTree:
    """A Fenwick tree over positions 1..n supporting point add and prefix
    sum, growing geometrically as positions beyond ``n`` are touched."""

    def __init__(self, capacity: int = 1024) -> None:
        self._size = max(2, capacity)
        self._tree = np.zeros(self._size + 1, dtype=np.int64)
        self._points = np.zeros(self._size + 1, dtype=np.int64)

    def _grow(self, needed: int) -> None:
        new_size = self._size
        while new_size < needed:
            new_size *= 2
        points = np.zeros(new_size + 1, dtype=np.int64)
        points[: self._size + 1] = self._points
        self._points = points
        self._size = new_size
        # O(n) Fenwick construction from point values.
        tree = points.copy()
        for i in range(1, new_size + 1):
            parent = i + (i & -i)
            if parent <= new_size:
                tree[parent] += tree[i]
        self._tree = tree

    def add(self, index: int, delta: int) -> None:
        if index < 1:
            raise PredictionError(f"Fenwick index must be >= 1, got {index}")
        if index > self._size:
            self._grow(index)
        self._points[index] += delta
        tree = self._tree
        size = self._size
        while index <= size:
            tree[index] += delta
            index += index & -index

    def prefix_sum(self, index: int) -> int:
        """Sum of values at positions 1..index."""
        if index < 0:
            raise PredictionError(f"Fenwick index must be >= 0, got {index}")
        index = min(index, self._size)
        total = 0
        tree = self._tree
        while index > 0:
            total += tree[index]
            index -= index & -index
        return int(total)

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of values at positions lo..hi inclusive."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)


class StackDistanceProfiler:
    """Single-pass exact stack-distance histogram.

    Feed line addresses with :meth:`access` (or :meth:`consume`); read
    misses for any capacity with :meth:`misses_at` once done.
    """

    def __init__(self, expected_length: int = 1 << 16) -> None:
        self._fenwick = FenwickTree(expected_length)
        self._last_pos: Dict[int, int] = {}
        self._pos = 0
        self._histogram: Dict[int, int] = {}
        self.cold_misses = 0
        self.accesses = 0

    def access(self, line: int) -> int:
        """Record one access; returns its stack distance (or ``COLD``)."""
        self._pos += 1
        pos = self._pos
        self.accesses += 1
        last = self._last_pos.get(line)
        if last is None:
            distance = COLD
            self.cold_misses += 1
        else:
            # Distinct lines touched strictly between the two accesses:
            # count of "last occurrence" markers in (last, pos).
            distance = self._fenwick.range_sum(last + 1, pos - 1)
            self._histogram[distance] = self._histogram.get(distance, 0) + 1
            self._fenwick.add(last, -1)
        self._fenwick.add(pos, 1)
        self._last_pos[line] = pos
        return distance

    def consume(self, lines: Iterable[int]) -> None:
        for line in lines:
            self.access(line)

    @property
    def distinct_lines(self) -> int:
        return len(self._last_pos)

    def histogram(self) -> Dict[int, int]:
        """Stack-distance histogram (cold misses excluded)."""
        return dict(self._histogram)

    def misses_at(self, capacity_lines: int) -> int:
        """Misses of a fully-associative LRU cache of ``capacity_lines``.

        An access with stack distance d hits iff d < capacity; cold
        accesses always miss.
        """
        if capacity_lines < 0:
            raise PredictionError(
                f"capacity must be non-negative, got {capacity_lines}"
            )
        conflict = sum(
            count
            for distance, count in self._histogram.items()
            if distance >= capacity_lines
        )
        return conflict + self.cold_misses

    def miss_curve(self, capacities_lines: Sequence[int]) -> List[int]:
        """Miss counts at several capacities — still from the single pass."""
        return [self.misses_at(c) for c in capacities_lines]

    def miss_ratio_at(self, capacity_lines: int) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses_at(capacity_lines) / self.accesses


class MultiCapacityLRU:
    """Exact fully-associative LRU miss counting at a fixed set of
    capacities, in one pass.

    Functionally a restriction of :class:`StackDistanceProfiler` to known
    capacities; kept because one dict operation per capacity is faster in
    CPython than Fenwick bookkeeping on long streams.
    """

    def __init__(self, capacities_lines: Sequence[int]) -> None:
        if not capacities_lines:
            raise PredictionError("need at least one capacity")
        if any(c < 1 for c in capacities_lines):
            raise PredictionError(f"capacities must be >= 1: {capacities_lines}")
        self.capacities = list(capacities_lines)
        self._lru: List[Dict[int, None]] = [dict() for __ in self.capacities]
        self.misses = [0] * len(self.capacities)
        self.accesses = 0

    def access(self, line: int) -> None:
        self.accesses += 1
        for i, cache in enumerate(self._lru):
            if line in cache:
                del cache[line]
            else:
                self.misses[i] += 1
                if len(cache) >= self.capacities[i]:
                    del cache[next(iter(cache))]
            cache[line] = None

    def consume(self, lines: Iterable[int]) -> None:
        for line in lines:
            self.access(line)

    def miss_curve(self, capacities_lines: Sequence[int]) -> List[int]:
        if list(capacities_lines) != self.capacities:
            raise PredictionError(
                "MultiCapacityLRU can only report its configured capacities"
            )
        return list(self.misses)
